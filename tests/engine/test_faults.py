"""The fault-tolerant execution plane (PR 9).

What is pinned here:

* the **error taxonomy** and :func:`classify_error` — adapters raise
  typed failures, arbitrary exceptions map onto the taxonomy, and only
  :class:`PermanentModelError` is non-retryable;
* :class:`RetryPolicy` — exponential backoff whose jitter is a pure
  function of ``(key, attempt)``, so retried runs stay reproducible;
* :class:`CircuitBreaker` state transitions (closed → open → half-open
  → closed) driven by an injected clock, no sleeping;
* :class:`RunJournal` durability: atomic create, fsync'd appends, and
  damage-tolerant loads (truncated tails, garbage lines);
* the headline chaos guarantee: with ``retries`` enabled, a run under
  deterministic fault injection (:class:`ChaosAdapter`) is
  **bit-identical** to the fault-free run on every executor backend;
* graceful degradation: exhausted retries yield positional
  ``failed=True`` results (never an abort), open breakers short-circuit
  to failed results or reroute to the cascade's cheap tier;
* journal resume: a re-run with the same journal replays finished work
  without invoking the model at all;
* the executor/coalescer seams the retry plane stands on —
  ``SubmitStream`` never cancels unrelated futures, and the coalescer
  bisects a failed merged flush to isolate the poisoned waiter.
"""

import asyncio
import threading
import time

import pytest

from repro.engine import CascadePolicy, ExecutionEngine, build_requests, confusion_from_results
from repro.engine.coalesce import MicroBatchCoalescer
from repro.engine.executors import create_executor
from repro.engine.faults import (
    BreakerBoard,
    CircuitBreaker,
    MalformedResponseError,
    ModelError,
    PermanentModelError,
    RetryPolicy,
    RunJournal,
    TransientModelError,
    chunk_journal_key,
    classify_error,
    is_retryable,
    request_key,
)
from repro.engine.requests import FAILED_RESPONSE
from repro.eval.experiments import default_subset
from repro.eval.metrics import ConfusionCounts
from repro.llm.adapters import ChaosAdapter, reset_chaos_attempts
from repro.llm.base import LanguageModel
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy


@pytest.fixture(scope="module")
def subset():
    return default_subset()


@pytest.fixture(scope="module")
def records(subset):
    return subset.records[:40]


@pytest.fixture(scope="module")
def clean_counts(records):
    """Fault-free reference confusion over the test slice."""
    requests = build_requests(
        create_model("gpt-4"), PromptStrategy.BP1, records, scoring="detection"
    )
    with ExecutionEngine(jobs=1) as engine:
        return engine.run_counts(requests)


# -- error taxonomy ---------------------------------------------------------------


class TestTaxonomy:
    def test_taxonomy_subclasses_runtime_error(self):
        # Pre-taxonomy call sites assert RuntimeError; the taxonomy must
        # keep satisfying them.
        for cls in (TransientModelError, PermanentModelError, MalformedResponseError):
            assert issubclass(cls, ModelError)
            assert issubclass(cls, RuntimeError)

    def test_classified_errors_pass_through(self):
        assert classify_error(PermanentModelError("401")) is PermanentModelError
        assert classify_error(MalformedResponseError("short")) is MalformedResponseError
        assert classify_error(TransientModelError("429")) is TransientModelError

    def test_network_errors_classify_transient(self):
        for exc in (ConnectionError("reset"), TimeoutError("slow"), OSError("io")):
            assert classify_error(exc) is TransientModelError

    def test_unknown_errors_default_transient(self):
        assert classify_error(ValueError("odd")) is TransientModelError

    def test_only_permanent_is_non_retryable(self):
        assert not is_retryable(PermanentModelError("bad key"))
        assert is_retryable(TransientModelError("429"))
        assert is_retryable(MalformedResponseError("short batch"))
        assert is_retryable(ConnectionError("reset"))
        assert is_retryable(ValueError("odd"))


# -- retry policy -----------------------------------------------------------------


class TestRetryPolicy:
    def test_disabled_by_default(self):
        policy = RetryPolicy()
        assert not policy.enabled
        assert not policy.allows(0)

    def test_allows_counts_attempts(self):
        policy = RetryPolicy(retries=2)
        assert policy.enabled
        assert policy.allows(0) and policy.allows(1)
        assert not policy.allows(2)

    def test_delay_is_deterministic(self):
        policy = RetryPolicy(retries=3, base_ms=50.0)
        assert policy.delay_s(1, "chunk-7") == policy.delay_s(1, "chunk-7")
        assert policy.delay_s(1, "chunk-7") != policy.delay_s(1, "chunk-8")
        assert policy.delay_s(0, "chunk-7") != policy.delay_s(1, "chunk-7")

    def test_delay_grows_exponentially_within_jitter_band(self):
        policy = RetryPolicy(retries=8, base_ms=50.0, max_ms=10**9)
        for attempt in range(6):
            backoff_s = 50.0 * (2.0 ** attempt) / 1000.0
            delay = policy.delay_s(attempt, "key")
            assert 0.5 * backoff_s <= delay < backoff_s

    def test_delay_caps_at_max_ms(self):
        policy = RetryPolicy(retries=32, base_ms=50.0, max_ms=200.0)
        assert policy.delay_s(30, "key") < 0.2


# -- circuit breakers -------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker("m", threshold=3, cooldown_s=10.0, clock=FakeClock())
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state == "closed" and breaker.allow()
        assert breaker.record_failure() is True  # third consecutive: opens
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.open_events == 1

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker("m", threshold=2, cooldown_s=10.0, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # run broken by the success

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker("m", threshold=1, cooldown_s=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # a second caller waits on the probe

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker("m", threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker("m", threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert breaker.record_failure() is True  # probe failed: re-open
        assert breaker.open_events == 2
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # next probe after the fresh cooldown

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker("m", threshold=0)

    def test_board_registers_one_breaker_per_identity(self):
        board = BreakerBoard(threshold=1, cooldown_s=10.0, clock=FakeClock())
        assert board.breaker("gpt-4") is board.breaker("gpt-4")
        assert board.breaker("gpt-4") is not board.breaker("bard")
        board.breaker("gpt-4").record_failure()
        board.breaker("bard").record_failure()
        assert board.open_events() == 2


# -- run journal ------------------------------------------------------------------


class TestRunJournal:
    def entries(self, *names):
        return {
            request_key("gpt-4", "bp1", "detection", name): {
                "response": f"yes ({name})",
                "skipped": False,
            }
            for name in names
        }

    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = RunJournal(path)
        assert len(journal) == 0 and journal.appends == 0
        entries = self.entries("DRB001", "DRB002")
        journal.record(chunk_journal_key(sorted(entries)), entries)
        assert len(journal) == 2 and journal.appends == 1
        key = request_key("gpt-4", "bp1", "detection", "DRB001")
        assert key in journal
        assert journal.get(key)["response"] == "yes (DRB001)"
        # A fresh instance reloads the same state from disk.
        assert len(RunJournal(path)) == 2

    def test_missing_file_is_an_empty_journal(self, tmp_path):
        journal = RunJournal(tmp_path / "absent.journal")
        assert len(journal) == 0

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = RunJournal(path)
        journal.record("c1", self.entries("DRB001"))
        journal.record("c2", self.entries("DRB002"))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 12])  # crash mid-append
        assert len(RunJournal(path)) == 1

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = RunJournal(path)
        journal.record("c1", self.entries("DRB001"))
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b"123\n")
            handle.write(b'{"chunk": "c2", "entries": "not-a-dict"}\n')
        assert len(RunJournal(path)) == 1

    def test_empty_record_is_a_noop(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = RunJournal(path)
        journal.record("c1", {})
        assert journal.appends == 0
        assert not path.exists()

    def test_keys_are_stable_and_distinct(self):
        assert request_key("m", "bp1", "detection", "r") == request_key(
            "m", "bp1", "detection", "r"
        )
        assert request_key("m", "bp1", "detection", "r1") != request_key(
            "m", "bp1", "detection", "r2"
        )
        assert chunk_journal_key(["a", "b"]) == chunk_journal_key(["a", "b"])
        assert chunk_journal_key(["a", "b"]) != chunk_journal_key(["a", "c"])


# -- chaos equivalence ------------------------------------------------------------

# Per the ChaosAdapter pigeonhole guarantee, ``retries >= jobs *
# fail_attempts`` suffices for recovery; every config here keeps
# jobs * fail_attempts <= 3 for the process pool (single-process
# backends share one attempt registry, so fail_attempts alone bounds
# them).  The async+coalesce config additionally exercises layered
# recovery: the coalescer's bisect retry absorbs most faults before the
# engine-level retry plane ever sees them.
CHAOS_CONFIGS = [
    pytest.param(dict(jobs=1, batch_size=5), id="serial"),
    pytest.param(dict(jobs=3, batch_size=7), id="thread-pool"),
    pytest.param(dict(jobs=3, executor_kind="process", batch_size=8), id="process-pool"),
    pytest.param(dict(jobs=4, executor_kind="async", batch_size=5), id="async-coalesce"),
    pytest.param(
        dict(jobs=4, executor_kind="async", batch_size=5, coalesce=False),
        id="async-no-coalesce",
    ),
]


class TestChaosEquivalence:
    @pytest.mark.parametrize("config", CHAOS_CONFIGS)
    def test_chaotic_run_is_bit_identical_to_fault_free(
        self, config, records, clean_counts, request
    ):
        reset_chaos_attempts()
        model = ChaosAdapter(
            create_model("gpt-4"),
            transient_ratio=0.2,
            malformed_ratio=0.1,
            hang_ratio=0.1,
            hang_s=0.001,
            fail_attempts=1,
            salt=f"equiv-{request.node.callspec.id}",
        )
        requests = build_requests(model, PromptStrategy.BP1, records, scoring="detection")
        with ExecutionEngine(retries=3, **config) as engine:
            counts = engine.run_counts(requests)
            snap = engine.telemetry.snapshot()
        assert counts.as_row() == clean_counts.as_row()
        assert snap["failed_requests"] == 0

    def test_zero_retries_keeps_the_fail_fast_contract(self, records):
        reset_chaos_attempts()
        model = ChaosAdapter(
            create_model("gpt-4"),
            transient_ratio=1.0,
            fail_attempts=1,
            salt="fail-fast",
        )
        requests = build_requests(model, PromptStrategy.BP1, records, scoring="detection")
        with ExecutionEngine(jobs=1, batch_size=8) as engine:
            with pytest.raises(TransientModelError):
                engine.run_counts(requests)


# -- graceful degradation ---------------------------------------------------------


class TestExhaustedRetries:
    def test_exhaustion_yields_positional_failed_results(self, records):
        reset_chaos_attempts()
        # Every prompt chaotic, schedule effectively never drains: retries
        # must exhaust and every request must come back failed-in-place.
        model = ChaosAdapter(
            create_model("gpt-4"),
            transient_ratio=1.0,
            fail_attempts=10**6,
            salt="exhaustion",
        )
        requests = build_requests(model, PromptStrategy.BP1, records, scoring="detection")
        with ExecutionEngine(
            jobs=2, batch_size=8, retries=2, retry_base_ms=1.0, breaker_threshold=10**6
        ) as engine:
            store = engine.run(requests)
            snap = engine.telemetry.snapshot()
        assert len(store.results) == len(records)
        assert [r.record_name for r in store.results] == [r.name for r in records]
        assert all(r.failed for r in store.results)
        assert all(r.response.startswith(FAILED_RESPONSE[:-1]) for r in store.results)
        assert all(r.prediction is False for r in store.results)
        # Failed results never contaminate the confusion counts.
        assert confusion_from_results(store.results).as_row() == ConfusionCounts().as_row()
        assert snap["failed_requests"] == len(records)
        assert snap["retry_giveups"] > 0
        assert snap["retries"] > 0


class PermanentlyDownModel(LanguageModel):
    """A backend whose credentials are bad: every call fails permanently."""

    def __init__(self):
        self.name = "permanently-down"
        self.context_window = 8192

    def generate(self, prompt: str) -> str:
        raise PermanentModelError("401 unauthorized")


class TestCircuitBreakerInTheEngine:
    def test_open_breaker_short_circuits_without_cascade(self, records):
        requests = build_requests(
            PermanentlyDownModel(), PromptStrategy.BP1, records[:12], scoring="detection"
        )
        with ExecutionEngine(
            jobs=2,
            batch_size=3,
            retries=1,
            retry_base_ms=1.0,
            breaker_threshold=1,
            breaker_cooldown_s=300.0,
        ) as engine:
            store = engine.run(requests)
            snap = engine.telemetry.snapshot()
        assert len(store.results) == 12
        assert all(r.failed for r in store.results)
        assert snap["breaker_opens"] >= 1
        assert snap["breaker_short_circuits"] >= 1
        assert snap["retries"] == 0  # permanent errors are never retried

    def test_open_breaker_reroutes_to_the_cascade_tier(self, records):
        requests = build_requests(
            PermanentlyDownModel(), PromptStrategy.BP1, records[:12], scoring="detection"
        )
        cascade = CascadePolicy.from_spec("static", escalate_below=1.0)
        with ExecutionEngine(
            jobs=2,
            batch_size=3,
            retries=1,
            retry_base_ms=1.0,
            breaker_threshold=1,
            breaker_cooldown_s=300.0,
            cascade=cascade,
        ) as engine:
            store = engine.run(requests)
            snap = engine.telemetry.snapshot()
        assert len(store.results) == 12
        assert snap["breaker_opens"] >= 1
        assert snap["breaker_reroutes"] >= 1
        # Rerouted chunks are answered by the static tier instead of
        # failing: strictly fewer failures than the no-cascade run.
        failed = [r for r in store.results if r.failed]
        assert len(failed) < 12


# -- journal resume ---------------------------------------------------------------


class PoisonedModel(LanguageModel):
    """Asserts the resume contract: any model call is a test failure."""

    def __init__(self, inner: LanguageModel):
        self.inner = inner
        self.name = inner.name
        self.context_window = inner.context_window

    @property
    def cache_identity(self) -> str:
        return self.inner.cache_identity

    def generate(self, prompt: str) -> str:
        raise AssertionError("model invoked during a fully-journaled resume")


class CountingModel(LanguageModel):
    def __init__(self, inner: LanguageModel):
        self.inner = inner
        self.name = inner.name
        self.context_window = inner.context_window
        self.calls = 0

    @property
    def cache_identity(self) -> str:
        return self.inner.cache_identity

    def generate(self, prompt: str) -> str:
        self.calls += 1
        return self.inner.generate(prompt)


class TestJournalResume:
    def first_run(self, path, records):
        requests = build_requests(
            create_model("gpt-4"), PromptStrategy.BP1, records, scoring="detection"
        )
        with ExecutionEngine(jobs=1, batch_size=5, journal=str(path)) as engine:
            store = engine.run(requests)
            snap = engine.telemetry.snapshot()
        return store, snap

    def test_resume_replays_without_model_calls(self, tmp_path, records):
        path = tmp_path / "run.journal"
        slice_ = records[:30]
        first_store, first_snap = self.first_run(path, slice_)
        assert first_snap["journal_appends"] > 0
        assert first_snap["journal_hits"] == 0

        poisoned = PoisonedModel(create_model("gpt-4"))
        requests = build_requests(poisoned, PromptStrategy.BP1, slice_, scoring="detection")
        with ExecutionEngine(jobs=1, batch_size=5, journal=str(path)) as engine:
            store = engine.run(requests)
            snap = engine.telemetry.snapshot()
        assert snap["journal_hits"] == 30
        assert [r.response for r in store.results] == [
            r.response for r in first_store.results
        ]
        assert [r.prediction for r in store.results] == [
            r.prediction for r in first_store.results
        ]

    def test_partial_journal_reinvokes_only_missing_work(self, tmp_path, records):
        path = tmp_path / "run.journal"
        slice_ = records[:30]
        first_store, _ = self.first_run(path, slice_)

        # Keep the header and the first half of the chunk lines — as if
        # the first run died mid-way.
        lines = path.read_bytes().splitlines(keepends=True)
        header, chunks = lines[0], lines[1:]
        kept = chunks[: len(chunks) // 2]
        path.write_bytes(b"".join([header] + kept))
        journaled = len(RunJournal(path))
        assert 0 < journaled < 30

        counting = CountingModel(create_model("gpt-4"))
        requests = build_requests(counting, PromptStrategy.BP1, slice_, scoring="detection")
        with ExecutionEngine(jobs=1, batch_size=5, journal=str(path)) as engine:
            store = engine.run(requests)
            snap = engine.telemetry.snapshot()
        assert snap["journal_hits"] == journaled
        assert counting.calls == 30 - journaled
        assert [r.response for r in store.results] == [
            r.response for r in first_store.results
        ]

    def test_failed_results_are_not_journaled(self, tmp_path, records):
        reset_chaos_attempts()
        path = tmp_path / "run.journal"
        slice_ = records[:10]
        model = ChaosAdapter(
            create_model("gpt-4"),
            transient_ratio=1.0,
            fail_attempts=10**6,
            salt="journal-failed",
        )
        requests = build_requests(model, PromptStrategy.BP1, slice_, scoring="detection")
        with ExecutionEngine(
            jobs=1,
            batch_size=5,
            retries=1,
            retry_base_ms=1.0,
            breaker_threshold=10**6,
            journal=str(path),
        ) as engine:
            store = engine.run(requests)
        assert all(r.failed for r in store.results)
        # Nothing journaled: a resume must retry the failed work, not
        # replay the failure.
        assert len(RunJournal(path)) == 0


# -- the seams the retry plane stands on ------------------------------------------


class TestSubmitStream:
    def test_failure_cancels_nothing(self):
        executor = create_executor(jobs=2, kind="thread")
        release = threading.Event()

        def work(item):
            if item == "boom":
                raise TransientModelError("boom")
            release.wait(5.0)
            return "slow-done"

        try:
            stream = executor.submit_stream(work)
            stream.submit("boom", tag="boom")
            stream.submit("slow", tag="slow")
            settled = {}
            deadline = time.monotonic() + 5.0
            while "boom" not in settled and time.monotonic() < deadline:
                for tag, future in stream.wait(0.05):
                    settled[tag] = future
            assert isinstance(settled["boom"].exception(), TransientModelError)
            # The unrelated slow item is still running, not cancelled.
            release.set()
            while "slow" not in settled and time.monotonic() < deadline:
                for tag, future in stream.wait(0.05):
                    settled[tag] = future
            assert settled["slow"].result() == "slow-done"
        finally:
            stream.close()
            executor.close()


class TestCoalescerBisect:
    def test_flush_failure_isolates_the_poisoned_waiter(self):
        calls = []

        async def generate_batch(prompts):
            calls.append(list(prompts))
            if "poison" in prompts:
                raise TransientModelError("poisoned batch")
            return [f"ok:{p}" for p in prompts]

        async def scenario():
            coalescer = MicroBatchCoalescer(window_s=0.005, max_batch=64)
            return await asyncio.gather(
                coalescer.generate("k", generate_batch, ["a"]),
                coalescer.generate("k", generate_batch, ["poison"]),
                coalescer.generate("k", generate_batch, ["b"]),
                coalescer.generate("k", generate_batch, ["c"]),
                return_exceptions=True,
            )

        results = asyncio.run(scenario())
        assert results[0] == ["ok:a"]
        assert results[2] == ["ok:b"]
        assert results[3] == ["ok:c"]
        assert isinstance(results[1], TransientModelError)
        # The bisect narrowed the failure down to the poisoned waiter alone.
        assert ["poison"] in calls
        assert len(calls) > 1

    def test_single_waiter_failure_does_not_bisect(self):
        calls = []

        async def generate_batch(prompts):
            calls.append(list(prompts))
            raise TransientModelError("down")

        async def scenario():
            coalescer = MicroBatchCoalescer(window_s=0.001, max_batch=64)
            with pytest.raises(TransientModelError):
                await coalescer.generate("k", generate_batch, ["a"])

        asyncio.run(scenario())
        assert calls == [["a"]]
