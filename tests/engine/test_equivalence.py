"""The engine is a pure execution refactor: every executor/cache/batch
configuration must reproduce the seed's sequential loop bit-for-bit."""

from types import SimpleNamespace

import pytest

from repro.core import DataRacePipeline, PipelineConfig
from repro.dataset.drbml import DRBMLDataset
from repro.engine import (
    CascadePolicy,
    ExecutionEngine,
    ResponseCache,
    build_requests,
    confusion_from_results,
    iter_requests,
    results_fingerprint,
    run_plans,
    run_plans_sequential,
    run_plans_streaming,
)
from repro.eval.experiments import (
    default_subset,
    plan_table2,
    plan_table3,
    plan_table4,
    plan_table5,
    plan_table6,
    run_table2,
    run_table3,
    run_table5,
)
from repro.eval.matching import pairs_correct
from repro.eval.metrics import ConfusionCounts
from repro.llm.zoo import create_model
from repro.prompting.chains import run_strategy
from repro.prompting.parsing import parse_pairs_response, parse_yes_no
from repro.prompting.strategy import PromptStrategy


@pytest.fixture(scope="module")
def subset():
    return default_subset()


def seed_detection_loop(model, strategy, records) -> ConfusionCounts:
    """The seed's one-record-at-a-time scoring loop, kept as the reference."""
    counts = ConfusionCounts()
    for record in records:
        response = run_strategy(model.generate, strategy, record.trimmed_code)
        verdict = parse_yes_no(response)
        counts.add(record.has_race, bool(verdict) if verdict is not None else False)
    return counts


def seed_pairs_loop(model, records) -> ConfusionCounts:
    counts = ConfusionCounts()
    for record in records:
        response = run_strategy(model.generate, PromptStrategy.ADVANCED, record.trimmed_code)
        parsed = parse_pairs_response(response)
        prediction = bool(parsed.race) if parsed.race is not None else parsed.has_pairs
        counts.add(record.has_race, prediction, correct_positive=pairs_correct(parsed, record))
    return counts


ENGINE_CONFIGS = [
    pytest.param(dict(jobs=1), id="serial"),
    pytest.param(dict(jobs=1, batch_size=5), id="serial-small-batches"),
    pytest.param(dict(jobs=6, batch_size=7), id="thread-pool"),
    pytest.param(dict(jobs=4, cache=ResponseCache()), id="thread-pool-cached"),
    pytest.param(dict(jobs=3, executor_kind="process", batch_size=8), id="process-pool"),
    pytest.param(
        dict(jobs=3, executor_kind="process", cache=ResponseCache(), batch_size=8),
        id="process-pool-cached",
    ),
    # The two snapshot transports must be interchangeable: the default shm
    # broadcast (process-pool-cached above) and the temp-file pickle path
    # pinned here both reproduce the seed loop exactly.
    pytest.param(
        dict(
            jobs=3,
            executor_kind="process",
            cache=ResponseCache(),
            batch_size=8,
            snapshot_transport="file",
        ),
        id="process-pool-file-snapshot",
    ),
    # A byte budget tight enough to evict constantly mid-run, plus a TTL:
    # the size/TTL eviction tiers may only ever cost extra model calls,
    # never change a response.
    pytest.param(
        dict(
            jobs=4,
            cache=ResponseCache(max_entries=16, max_bytes=4096, ttl_s=60.0),
            batch_size=5,
        ),
        id="thread-pool-tiered-eviction",
    ),
    # The async configs all take the async-native path: chunk coroutines
    # awaiting generate_batch_async on the executor's event loop, with the
    # micro-batch coalescer merging concurrent same-model calls by default.
    pytest.param(dict(jobs=8, executor_kind="async", batch_size=7), id="async"),
    pytest.param(dict(jobs=8, executor_kind="async", cache=ResponseCache()), id="async-cached"),
    pytest.param(
        dict(jobs=4, executor_kind="async", max_inflight=32, batch_size=3),
        id="async-native-high-inflight",
    ),
    pytest.param(
        dict(jobs=4, executor_kind="async", batch_size=5, coalesce=False),
        id="async-native-no-coalesce",
    ),
    pytest.param(
        dict(
            jobs=4,
            executor_kind="async",
            max_inflight=16,
            batch_size=4,
            coalesce_window_s=0.0,
            coalesce_max_batch=8,
        ),
        id="async-native-zero-window-small-flush",
    ),
    pytest.param(
        dict(jobs=4, executor_kind="async", max_inflight=12, cache=ResponseCache(), batch_size=3),
        id="async-native-cached-coalesced",
    ),
    # The default configs above all run dispatch="dynamic"; pin the ordered
    # reference path and the no-LPT/no-adaptive combinations explicitly so
    # a default change can never silently drop coverage of either mode.
    pytest.param(
        dict(jobs=6, batch_size=7, dispatch="ordered", lpt=False, adaptive_batching=False),
        id="thread-pool-ordered-static",
    ),
    pytest.param(
        dict(
            jobs=3,
            executor_kind="process",
            cache=ResponseCache(),
            batch_size=8,
            dispatch="ordered",
        ),
        id="process-pool-ordered-cached",
    ),
    pytest.param(
        dict(jobs=8, executor_kind="async", batch_size=7, dispatch="dynamic", lpt=False),
        id="async-dynamic-no-lpt",
    ),
    # Full escalation through the detection cascade: no cheap-tier verdict
    # can reach the 1.0 threshold, so the request's own model answers every
    # record and the run must reproduce the seed loop bit for bit.
    pytest.param(
        dict(
            jobs=4,
            batch_size=6,
            cascade=CascadePolicy.from_spec("static", escalate_below=1.0),
        ),
        id="cascade-full-escalation",
    ),
]


class TestEngineMatchesSeedLoop:
    @pytest.mark.parametrize("config", ENGINE_CONFIGS)
    @pytest.mark.parametrize(
        "strategy", [PromptStrategy.BP1, PromptStrategy.BP2, PromptStrategy.AP2]
    )
    def test_detection_scoring(self, subset, config, strategy):
        records = subset.records[:40]
        reference = seed_detection_loop(create_model("gpt-4"), strategy, records)
        with ExecutionEngine(**config) as engine:
            counts = engine.run_counts(
                build_requests(create_model("gpt-4"), strategy, records, scoring="detection")
            )
        assert counts.as_row() == reference.as_row()

    @pytest.mark.parametrize("config", ENGINE_CONFIGS)
    def test_pairs_scoring(self, subset, config):
        records = subset.records[:40]
        reference = seed_pairs_loop(create_model("gpt-3.5-turbo"), records)
        with ExecutionEngine(**config) as engine:
            counts = engine.run_counts(
                build_requests(
                    create_model("gpt-3.5-turbo"), PromptStrategy.ADVANCED, records, scoring="pairs"
                )
            )
        assert counts.as_row() == reference.as_row()

    def test_cached_rerun_is_identical(self, subset):
        """Cache hits must return byte-identical responses, not just counts."""
        records = subset.records[:20]
        engine = ExecutionEngine(cache=ResponseCache())
        model = create_model("gpt-4")
        first = engine.run(build_requests(model, PromptStrategy.BP1, records))
        second = engine.run(build_requests(model, PromptStrategy.BP1, records))
        assert first.responses() == second.responses()
        assert engine.telemetry.cache_hits == len(records)


class TestCachePlaneEquivalence:
    """The cache plane is invisible to scoring: serving responses out of
    the host-wide mmap store must equal a private in-memory load of the
    same segment directory, which must equal the seed loop."""

    def test_shared_store_matches_private_load(self, subset, tmp_path):
        records = subset.records[:30]
        target = tmp_path / "segments"

        def requests():
            return build_requests(
                create_model("gpt-4"), PromptStrategy.BP1, records, scoring="detection"
            )

        warm = ResponseCache(path=target)
        with ExecutionEngine(cache=warm) as engine:
            reference = engine.run_counts(requests())
        warm.save()

        private = ResponseCache(path=target)
        with ExecutionEngine(jobs=4, cache=private, batch_size=6) as engine:
            private_counts = engine.run_counts(requests())

        shared = ResponseCache(path=target, shared_read=True)
        with ExecutionEngine(jobs=4, cache=shared, batch_size=6) as engine:
            shared_counts = engine.run_counts(requests())

        assert private_counts.as_row() == reference.as_row()
        assert shared_counts.as_row() == reference.as_row()
        # Shared-read served every hit straight off the mmap; nothing was
        # promoted into the in-memory tier.
        assert len(shared) == 0


class TestCascadeEquivalence:
    """``--no-cascade`` must be the untouched reference path, and a cascade
    whose threshold no tier can reach must reproduce the LLM-only run byte
    for byte — the cascade may only ever remove expensive calls, never
    change what the final tier would have answered."""

    def test_no_cascade_config_builds_no_router(self):
        with DataRacePipeline(PipelineConfig(cascade=False)) as pipeline:
            assert pipeline.engine.cascade_router is None

    def test_full_escalation_responses_bit_identical(self, subset):
        records = subset.records[:25]
        policy = CascadePolicy.from_spec("static,gpt-3.5-turbo", escalate_below=1.0)
        model = create_model("gpt-4")
        with ExecutionEngine(jobs=4, batch_size=6, cascade=policy) as engine:
            cascaded = engine.run(build_requests(model, PromptStrategy.BP1, records))
        with ExecutionEngine(jobs=4, batch_size=6) as engine:
            reference = engine.run(build_requests(model, PromptStrategy.BP1, records))
        assert cascaded.responses() == reference.responses()
        assert cascaded.confusion().as_row() == reference.confusion().as_row()

    def test_pipeline_cascade_full_escalation_matches_reference(self, subset):
        records = subset.records[:30]
        with DataRacePipeline(PipelineConfig()) as pipeline:
            reference = pipeline.score_model(records=records)
        with DataRacePipeline(
            PipelineConfig(cascade=True, escalate_below=1.0)
        ) as pipeline:
            cascaded = pipeline.score_model(records=records)
        assert cascaded.as_row() == reference.as_row()


class TestDriverEquivalence:
    def test_run_table2_thread_pool_vs_serial(self, subset):
        """Satellite requirement: table 2 identical under both executors."""
        dataset = SimpleNamespace(records=subset.records[:60])
        serial_rows = run_table2(dataset, engine=ExecutionEngine())
        threaded_rows = run_table2(
            dataset, engine=ExecutionEngine(jobs=6, cache=ResponseCache(), batch_size=8)
        )
        assert [(r.model, r.prompt, r.counts.as_row()) for r in serial_rows] == [
            (r.model, r.prompt, r.counts.as_row()) for r in threaded_rows
        ]

    def test_pipeline_score_model_matches_seed_semantics(self, subset):
        """score_model through the engine equals the seed's detect() loop."""
        records = subset.records[:30]
        pipeline = DataRacePipeline(PipelineConfig(jobs=4))
        engine_counts = pipeline.score_model(
            model="gpt-4", strategy=PromptStrategy.ADVANCED, records=records
        )
        reference = ConfusionCounts()
        for record in records:
            outcome = pipeline.detect(
                record.trimmed_code, model="gpt-4", strategy=PromptStrategy.ADVANCED
            )
            correct = pairs_correct(outcome.pairs, record)
            reference.add(record.has_race, outcome.says_race, correct_positive=correct)
        assert engine_counts.as_row() == reference.as_row()

    def test_run_table3_same_rows_on_every_backend(self, subset):
        """Table 3 rows (Inspector + LLM grid) identical across backends."""
        dataset = DRBMLDataset(records=subset.records[:24])
        reference = run_table3(dataset, include_inspector=False, engine=ExecutionEngine())
        for config in (
            dict(jobs=4),
            dict(jobs=3, executor_kind="process"),
            dict(jobs=8, executor_kind="async"),
        ):
            with ExecutionEngine(**config) as engine:
                rows = run_table3(dataset, include_inspector=False, engine=engine)
            assert [(r.model, r.prompt, r.counts.as_row()) for r in rows] == [
                (r.model, r.prompt, r.counts.as_row()) for r in reference
            ]

    def test_pipeline_score_inspector_matches_seed_loop(self):
        pipeline = DataRacePipeline(PipelineConfig(jobs=4))
        engine_counts = pipeline.score_inspector()
        subset_names = {r.name for r in pipeline.evaluation_subset().records}
        benchmarks = [b for b in pipeline.registry if b.name in subset_names]
        detector = pipeline.inspector()
        reference = ConfusionCounts()
        for bench in benchmarks:
            reference.add(bench.has_race, detector.predict(bench))
        assert engine_counts.as_row() == reference.as_row()


def _mini_all_table_plans(records):
    """Plans for all five tables, shrunk for test speed."""
    dataset = DRBMLDataset(records=list(records))
    return [
        plan_table2(dataset),
        plan_table3(dataset, include_inspector=False, models=("gpt-4", "llama2-7b")),
        plan_table4(dataset, models=("starchat-beta",), n_folds=2),
        plan_table5(dataset, models=("gpt-4", "gpt-3.5-turbo")),
        plan_table6(dataset, models=("llama2-7b",), n_folds=2),
    ]


class TestSchedulerEquivalence:
    """run_all_tables (one interleaved engine run) is a pure scheduling
    refactor: table rows are bit-identical to the five sequential drivers,
    under every executor backend and cache state."""

    @pytest.fixture(scope="class")
    def mini_records(self, subset):
        return subset.records[:24]

    @pytest.fixture(scope="class")
    def sequential_reference(self, mini_records):
        plans = _mini_all_table_plans(mini_records)
        return results_fingerprint(run_plans_sequential(plans, engine=ExecutionEngine()))

    @pytest.mark.parametrize(
        "config",
        [
            pytest.param(dict(jobs=1), id="serial"),
            pytest.param(dict(jobs=6, batch_size=5), id="thread-pool"),
            pytest.param(dict(jobs=6, cache=ResponseCache(), batch_size=5), id="thread-cached"),
            pytest.param(dict(jobs=3, executor_kind="process", batch_size=8), id="process-pool"),
            pytest.param(dict(jobs=8, executor_kind="async", batch_size=8), id="async"),
            pytest.param(
                dict(jobs=4, executor_kind="async", max_inflight=24, batch_size=5),
                id="async-native-high-inflight",
            ),
            pytest.param(
                dict(jobs=6, batch_size=5, dispatch="ordered", lpt=False),
                id="thread-ordered-no-lpt",
            ),
            pytest.param(
                dict(jobs=3, executor_kind="process", batch_size=8, dispatch="ordered"),
                id="process-ordered",
            ),
        ],
    )
    def test_interleaved_matches_sequential(self, mini_records, sequential_reference, config):
        plans = _mini_all_table_plans(mini_records)
        with ExecutionEngine(**config) as engine:
            interleaved = run_plans(plans, engine=engine)
        assert results_fingerprint(interleaved) == sequential_reference

    @pytest.mark.parametrize(
        "config",
        [
            pytest.param(dict(jobs=1), id="serial"),
            pytest.param(dict(jobs=6, batch_size=5), id="thread-pool"),
            pytest.param(
                dict(jobs=3, executor_kind="process", batch_size=8), id="process-pool"
            ),
            pytest.param(dict(jobs=8, executor_kind="async", batch_size=8), id="async"),
        ],
    )
    def test_streaming_scheduler_matches_sequential(
        self, mini_records, sequential_reference, config
    ):
        """run_plans_streaming — all five tables through one windowed
        streaming run, results reduced per plan as each completes — is
        bit-identical to the sequential reference on every backend.  The
        small window forces many windows per plan and windows straddling
        plan boundaries."""
        plans = _mini_all_table_plans(mini_records)
        with ExecutionEngine(**config) as engine:
            streamed = run_plans_streaming(plans, engine=engine, window=17)
        assert results_fingerprint(streamed) == sequential_reference

    def test_interleaved_matches_sequential_warm_cache(self, mini_records, sequential_reference):
        """Runs 2+ reuse the cache AND a warmed cost model: dynamic dispatch
        with live LPT ordering and adaptive chunk sizes must still be exact."""
        cache = ResponseCache()
        plans = _mini_all_table_plans(mini_records)
        with ExecutionEngine(jobs=4, cache=cache, batch_size=6) as engine:
            first = run_plans(plans, engine=engine)
            second = run_plans(_mini_all_table_plans(mini_records), engine=engine)
        assert len(engine.cost_model) > 0  # LPT had estimates for run two
        assert results_fingerprint(first) == sequential_reference
        assert results_fingerprint(second) == sequential_reference


STREAMING_BACKENDS = [
    pytest.param(lambda: dict(jobs=1), id="serial"),
    pytest.param(lambda: dict(jobs=1, batch_size=5), id="serial-small-batches"),
    pytest.param(lambda: dict(jobs=6, batch_size=7), id="thread-pool"),
    pytest.param(lambda: dict(jobs=4, cache=ResponseCache()), id="thread-pool-cached"),
    pytest.param(
        lambda: dict(jobs=3, executor_kind="process", batch_size=8), id="process-pool"
    ),
    pytest.param(
        lambda: dict(jobs=3, executor_kind="process", cache=ResponseCache(), batch_size=8),
        id="process-pool-cached",
    ),
    pytest.param(lambda: dict(jobs=8, executor_kind="async", batch_size=7), id="async"),
    pytest.param(
        lambda: dict(jobs=8, executor_kind="async", cache=ResponseCache()),
        id="async-cached",
    ),
]


class TestStreamingEquivalence:
    """run_streaming is a pure execution-shape change: the windowed lazy
    path must reproduce ``run()`` — responses *and* scores, bit for bit —
    on every executor backend, with and without a cache, and through the
    pipeline's ``stream`` flag.  Configs are factories so the cached
    variants get a fresh cache per engine (no cross-contamination)."""

    @pytest.mark.parametrize("make_config", STREAMING_BACKENDS)
    def test_streamed_matches_materialised(self, subset, make_config):
        records = subset.records[:40]
        model = create_model("gpt-4")
        with ExecutionEngine(**make_config()) as engine:
            reference = engine.run(
                build_requests(model, PromptStrategy.BP1, records, scoring="detection")
            )
        with ExecutionEngine(**make_config()) as engine:
            # window=7 does not divide 40: exercises the trailing partial
            # window as well as full ones.
            streamed = list(
                engine.run_streaming(
                    iter_requests(model, PromptStrategy.BP1, records, scoring="detection"),
                    window=7,
                )
            )
        assert [result.response for result in streamed] == reference.responses()
        assert (
            confusion_from_results(streamed).as_row() == reference.confusion().as_row()
        )

    def test_pipeline_stream_flag_matches_materialised(self, subset):
        """PipelineConfig(stream=True) — the CLI's ``--stream`` — scores
        identically to the eager path."""
        records = subset.records[:30]
        eager = DataRacePipeline(PipelineConfig(jobs=4)).score_model(
            model="gpt-4", records=records
        )
        streamed = DataRacePipeline(
            PipelineConfig(jobs=4, stream=True, stream_window=11)
        ).score_model(model="gpt-4", records=records)
        assert streamed.as_row() == eager.as_row()

    def test_streamed_pairs_scoring_matches_seed_loop(self, subset):
        """The pairs scoring modes stream identically too (Tables 5–6)."""
        records = subset.records[:30]
        model = create_model("gpt-3.5-turbo")
        reference = seed_pairs_loop(model, records)
        with ExecutionEngine(jobs=4, batch_size=6) as engine:
            counts = engine.run_streaming_counts(
                iter_requests(model, PromptStrategy.ADVANCED, records, scoring="pairs"),
                window=9,
            )
        assert counts.as_row() == reference.as_row()

    def test_later_windows_reuse_earlier_windows_cache(self, subset):
        """One streaming run shares its cache across windows: duplicated
        requests in a later window hit instead of re-calling the model."""
        records = subset.records[:12]
        model = create_model("gpt-4")

        def twice():
            yield from iter_requests(model, PromptStrategy.BP1, records)
            yield from iter_requests(model, PromptStrategy.BP1, records)

        with ExecutionEngine(cache=ResponseCache(), batch_size=4) as engine:
            results = list(engine.run_streaming(twice(), window=6))
        assert len(results) == 2 * len(records)
        first, second = results[: len(records)], results[len(records) :]
        assert [r.response for r in first] == [r.response for r in second]
        assert engine.telemetry.cache_hits == len(records)
