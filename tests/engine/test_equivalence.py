"""The engine is a pure execution refactor: every executor/cache/batch
configuration must reproduce the seed's sequential loop bit-for-bit."""

from types import SimpleNamespace

import pytest

from repro.core import DataRacePipeline, PipelineConfig
from repro.engine import ExecutionEngine, ResponseCache, build_requests
from repro.eval.experiments import default_subset, run_table2
from repro.eval.matching import pairs_correct
from repro.eval.metrics import ConfusionCounts
from repro.llm.zoo import create_model
from repro.prompting.chains import run_strategy
from repro.prompting.parsing import parse_pairs_response, parse_yes_no
from repro.prompting.strategy import PromptStrategy


@pytest.fixture(scope="module")
def subset():
    return default_subset()


def seed_detection_loop(model, strategy, records) -> ConfusionCounts:
    """The seed's one-record-at-a-time scoring loop, kept as the reference."""
    counts = ConfusionCounts()
    for record in records:
        response = run_strategy(model.generate, strategy, record.trimmed_code)
        verdict = parse_yes_no(response)
        counts.add(record.has_race, bool(verdict) if verdict is not None else False)
    return counts


def seed_pairs_loop(model, records) -> ConfusionCounts:
    counts = ConfusionCounts()
    for record in records:
        response = run_strategy(model.generate, PromptStrategy.ADVANCED, record.trimmed_code)
        parsed = parse_pairs_response(response)
        prediction = bool(parsed.race) if parsed.race is not None else parsed.has_pairs
        counts.add(record.has_race, prediction, correct_positive=pairs_correct(parsed, record))
    return counts


ENGINE_CONFIGS = [
    pytest.param(dict(jobs=1), id="serial"),
    pytest.param(dict(jobs=1, batch_size=5), id="serial-small-batches"),
    pytest.param(dict(jobs=6, batch_size=7), id="thread-pool"),
    pytest.param(dict(jobs=4, cache=ResponseCache()), id="thread-pool-cached"),
]


class TestEngineMatchesSeedLoop:
    @pytest.mark.parametrize("config", ENGINE_CONFIGS)
    @pytest.mark.parametrize(
        "strategy", [PromptStrategy.BP1, PromptStrategy.BP2, PromptStrategy.AP2]
    )
    def test_detection_scoring(self, subset, config, strategy):
        records = subset.records[:40]
        reference = seed_detection_loop(create_model("gpt-4"), strategy, records)
        engine = ExecutionEngine(**config)
        counts = engine.run_counts(
            build_requests(create_model("gpt-4"), strategy, records, scoring="detection")
        )
        assert counts.as_row() == reference.as_row()

    @pytest.mark.parametrize("config", ENGINE_CONFIGS)
    def test_pairs_scoring(self, subset, config):
        records = subset.records[:40]
        reference = seed_pairs_loop(create_model("gpt-3.5-turbo"), records)
        engine = ExecutionEngine(**config)
        counts = engine.run_counts(
            build_requests(
                create_model("gpt-3.5-turbo"), PromptStrategy.ADVANCED, records, scoring="pairs"
            )
        )
        assert counts.as_row() == reference.as_row()

    def test_cached_rerun_is_identical(self, subset):
        """Cache hits must return byte-identical responses, not just counts."""
        records = subset.records[:20]
        engine = ExecutionEngine(cache=ResponseCache())
        model = create_model("gpt-4")
        first = engine.run(build_requests(model, PromptStrategy.BP1, records))
        second = engine.run(build_requests(model, PromptStrategy.BP1, records))
        assert first.responses() == second.responses()
        assert engine.telemetry.cache_hits == len(records)


class TestDriverEquivalence:
    def test_run_table2_thread_pool_vs_serial(self, subset):
        """Satellite requirement: table 2 identical under both executors."""
        dataset = SimpleNamespace(records=subset.records[:60])
        serial_rows = run_table2(dataset, engine=ExecutionEngine())
        threaded_rows = run_table2(
            dataset, engine=ExecutionEngine(jobs=6, cache=ResponseCache(), batch_size=8)
        )
        assert [(r.model, r.prompt, r.counts.as_row()) for r in serial_rows] == [
            (r.model, r.prompt, r.counts.as_row()) for r in threaded_rows
        ]

    def test_pipeline_score_model_matches_seed_semantics(self, subset):
        """score_model through the engine equals the seed's detect() loop."""
        records = subset.records[:30]
        pipeline = DataRacePipeline(PipelineConfig(jobs=4))
        engine_counts = pipeline.score_model(
            model="gpt-4", strategy=PromptStrategy.ADVANCED, records=records
        )
        reference = ConfusionCounts()
        for record in records:
            outcome = pipeline.detect(
                record.trimmed_code, model="gpt-4", strategy=PromptStrategy.ADVANCED
            )
            correct = pairs_correct(outcome.pairs, record)
            reference.add(record.has_race, outcome.says_race, correct_positive=correct)
        assert engine_counts.as_row() == reference.as_row()

    def test_pipeline_score_inspector_matches_seed_loop(self):
        pipeline = DataRacePipeline(PipelineConfig(jobs=4))
        engine_counts = pipeline.score_inspector()
        subset_names = {r.name for r in pipeline.evaluation_subset().records}
        benchmarks = [b for b in pipeline.registry if b.name in subset_names]
        detector = pipeline.inspector()
        reference = ConfusionCounts()
        for bench in benchmarks:
            reference.add(bench.has_race, detector.predict(bench))
        assert engine_counts.as_row() == reference.as_row()
