"""Engine mechanics: batching, cache accounting, telemetry, generate_batch."""

import asyncio

import pytest

from repro.engine import (
    EXECUTOR_KINDS,
    AsyncExecutor,
    DetectionRequest,
    ExecutionEngine,
    ProcessPoolExecutor,
    ResponseCache,
    SerialExecutor,
    ThreadPoolExecutor,
    available_executors,
    build_requests,
    create_executor,
    register_executor,
)
from repro.eval.experiments import default_subset
from repro.llm.finetune import FineTuneConfig, FineTuner
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy
from repro.prompting.templates import render_prompt


@pytest.fixture(scope="module")
def records():
    return default_subset().records[:16]


class TestGenerateBatch:
    def test_default_implementation_matches_generate(self, records):
        """The LanguageModel default must equal a per-prompt generate loop."""
        model = create_model("starchat-beta")
        prompts = [render_prompt(PromptStrategy.BP1, r.trimmed_code) for r in records[:6]]
        reference = [create_model("starchat-beta").generate(p) for p in prompts]
        assert model.generate_batch(prompts) == reference

    def test_empty_batch(self):
        assert create_model("gpt-4").generate_batch([]) == []


def _square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


class TestExecutors:
    def test_create_executor_selects_backend(self):
        assert isinstance(create_executor(1), SerialExecutor)
        pool = create_executor(6)
        assert isinstance(pool, ThreadPoolExecutor)
        assert pool.jobs == 6

    def test_create_executor_by_kind(self):
        assert isinstance(create_executor(4, kind="serial"), SerialExecutor)
        assert isinstance(create_executor(4, kind="thread"), ThreadPoolExecutor)
        with create_executor(2, kind="process") as process:
            assert isinstance(process, ProcessPoolExecutor)
            assert process.jobs == 2
        with create_executor(4, kind="async") as async_:
            assert isinstance(async_, AsyncExecutor)

    def test_registry_lists_builtin_kinds(self):
        assert set(EXECUTOR_KINDS) <= set(available_executors())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            create_executor(2, kind="quantum")

    def test_register_custom_backend(self):
        register_executor("test-custom", lambda jobs: SerialExecutor())
        try:
            assert isinstance(create_executor(3, kind="test-custom"), SerialExecutor)
        finally:
            from repro.engine import executors

            executors._EXECUTOR_FACTORIES.pop("test-custom", None)

    def test_map_preserves_order(self):
        items = list(range(40))
        with ThreadPoolExecutor(jobs=4) as pool:
            assert pool.map(lambda x: x * x, items) == [x * x for x in items]

    def test_process_map_preserves_order(self):
        items = list(range(40))
        with ProcessPoolExecutor(jobs=3) as pool:
            assert pool.distributed
            assert pool.map(_square, items) == [x * x for x in items]

    def test_async_map_preserves_order(self):
        items = list(range(40))
        with AsyncExecutor(jobs=8) as pool:
            assert pool.map(lambda x: x * x, items) == [x * x for x in items]

    def test_async_map_awaits_coroutine_functions(self):
        """async def work items run natively — the real-API adapter seam."""

        async def slow_square(x):
            await asyncio.sleep(0)
            return x * x

        with AsyncExecutor(jobs=4) as pool:
            assert pool.map(slow_square, list(range(10))) == [x * x for x in range(10)]

    def test_thread_pool_is_persistent_across_maps(self):
        pool = ThreadPoolExecutor(jobs=2)
        try:
            pool.map(lambda x: x, [1, 2, 3])
            first = pool._pool
            assert first is not None
            pool.map(lambda x: x, [4, 5, 6])
            assert pool._pool is first
        finally:
            pool.close()
        assert pool._pool is None

    def test_closed_executor_rejects_map(self):
        for executor in (
            SerialExecutor(),
            ThreadPoolExecutor(jobs=2),
            ProcessPoolExecutor(jobs=2),
            AsyncExecutor(jobs=2),
        ):
            executor.close()
            assert executor.closed
            with pytest.raises(RuntimeError):
                executor.map(_square, [1, 2])
            executor.close()  # idempotent

    def test_executors_propagate_exceptions(self):
        def boom(x):
            raise RuntimeError("boom")

        for executor in (SerialExecutor(), ThreadPoolExecutor(jobs=2), AsyncExecutor(jobs=2)):
            with executor, pytest.raises(RuntimeError, match="boom"):
                executor.map(boom, [1, 2])

    def test_rejects_bad_jobs(self):
        for cls in (ThreadPoolExecutor, ProcessPoolExecutor, AsyncExecutor):
            with pytest.raises(ValueError):
                cls(jobs=0)


class TestEngineLifecycle:
    def test_engine_close_closes_executor(self):
        engine = ExecutionEngine(jobs=4)
        engine.close()
        assert engine.executor.closed

    def test_engine_context_manager(self, records):
        with ExecutionEngine(jobs=2) as engine:
            counts = engine.run_counts(
                build_requests(create_model("gpt-4"), PromptStrategy.BP1, records[:4])
            )
            assert counts.total == 4
        assert engine.executor.closed

    def test_rejects_executor_plus_kind(self):
        with pytest.raises(ValueError):
            ExecutionEngine(executor=SerialExecutor(), executor_kind="thread")
        with pytest.raises(ValueError):
            ExecutionEngine(executor=SerialExecutor(), jobs=4)


class TestEngineRun:
    def test_counts_total_matches_records(self, records):
        engine = ExecutionEngine()
        counts = engine.run_counts(
            build_requests(create_model("gpt-4"), PromptStrategy.BP1, records)
        )
        assert counts.total == len(records)

    def test_cache_hit_miss_accounting(self, records):
        engine = ExecutionEngine(cache=ResponseCache())
        requests = build_requests(create_model("gpt-4"), PromptStrategy.BP1, records)
        engine.run(requests)
        assert engine.telemetry.cache_misses == len(records)
        assert engine.telemetry.cache_hits == 0
        assert engine.telemetry.model_calls == len(records)

        engine.run(requests)
        assert engine.telemetry.cache_hits == len(records)
        assert engine.telemetry.model_calls == len(records)  # no new calls
        assert engine.telemetry.cache_hit_rate == 0.5

    def test_results_preserve_request_order(self, records):
        model = create_model("gpt-4")
        requests = build_requests(model, PromptStrategy.BP1, records)
        store = ExecutionEngine(jobs=4, batch_size=3).run(requests)
        assert [r.record_name for r in store] == [r.name for r in records]

    def test_mixed_strategy_batch(self, records):
        model = create_model("gpt-3.5-turbo")
        requests = build_requests(model, PromptStrategy.BP1, records[:4]) + build_requests(
            model, PromptStrategy.ADVANCED, records[:4], scoring="pairs"
        )
        store = ExecutionEngine(batch_size=2).run(requests)
        assert len(store) == 8
        assert [r.strategy for r in store] == ["BP1"] * 4 + ["ADVANCED"] * 4
        assert all(r.pairs is not None for r in list(store)[4:])

    def test_generic_map_counts_requests(self, records):
        engine = ExecutionEngine(jobs=2)
        assert engine.map(lambda r: r.has_race, records) == [r.has_race for r in records]
        assert engine.telemetry.requests == len(records)

    def test_rejects_unknown_scoring(self, records):
        with pytest.raises(ValueError):
            DetectionRequest(
                model=create_model("gpt-4"),
                strategy=PromptStrategy.BP1,
                record=records[0],
                scoring="nope",
            )


class TestCacheIdentity:
    def test_uncalibrated_model_does_not_share_cache(self):
        calibrated = create_model("gpt-4")
        uncalibrated = create_model("gpt-4", calibrated=False)
        assert calibrated.cache_identity != uncalibrated.cache_identity

    def test_finetuned_models_have_distinct_identities(self, records):
        """Two adapters trained on different folds must never share entries."""
        from repro.dataset.pairs import build_basic_pairs

        tuner = FineTuner(
            base=create_model("llama2-7b"), config=FineTuneConfig.for_model("llama2-7b")
        )
        tuned_a = tuner.fit(build_basic_pairs(records[:8]))
        tuned_b = tuner.fit(build_basic_pairs(records[8:16]))
        assert tuned_a.name == tuned_b.name
        assert tuned_a.cache_identity != tuned_b.cache_identity
        assert tuned_a.cache_identity != tuned_a.base.cache_identity


class _WrongLengthModel:
    """A misbehaving adapter whose batch call drops the last response.

    Module-level and stateless so the process pool can pickle it — the
    wrong-length guard must fire identically in worker processes.
    """

    name = "wrong-length"
    context_window = 4096
    cache_identity = "wrong-length"
    has_native_async = True

    def generate(self, prompt):
        return "yes"

    def generate_batch(self, prompts):
        return ["yes"] * (len(prompts) - 1)  # silently short

    async def generate_async(self, prompt):
        return "yes"

    async def generate_batch_async(self, prompts):
        return ["yes"] * (len(prompts) - 1)


class TestWrongLengthBatchGuard:
    """A wrong-count generate_batch must raise, never zip-truncate.

    Before the guard, the short response list zipped against the miss
    positions and the unfilled slots kept ``None`` — scored as garbage
    downstream instead of failing at the wire.
    """

    def _requests(self, records):
        return build_requests(_WrongLengthModel(), PromptStrategy.BP1, records[:8])

    def test_cached_serial_path_raises(self, records):
        engine = ExecutionEngine(batch_size=4, cache=ResponseCache(64))
        with pytest.raises(RuntimeError, match="returned 3 responses for 4 prompts"):
            engine.run(self._requests(records))

    def test_uncached_serial_path_raises(self, records):
        engine = ExecutionEngine(batch_size=4, cache=None)
        with pytest.raises(RuntimeError, match="generate_batch returned"):
            engine.run(self._requests(records))

    def test_process_worker_path_raises(self, records):
        with ExecutionEngine(
            jobs=2, executor_kind="process", batch_size=4, cache=ResponseCache(64)
        ) as engine:
            with pytest.raises(RuntimeError, match="generate_batch returned"):
                engine.run(self._requests(records))

    def test_async_native_path_raises(self, records):
        # --no-coalesce exercises the direct generate_batch_async site (the
        # coalesced site is guarded by the coalescer's own _call).
        with ExecutionEngine(
            jobs=2, executor_kind="async", batch_size=4, coalesce=False
        ) as engine:
            with pytest.raises(RuntimeError, match="generate_batch_async returned"):
                engine.run(self._requests(records))

    def test_async_coalesced_path_raises(self, records):
        with ExecutionEngine(jobs=2, executor_kind="async", batch_size=4) as engine:
            with pytest.raises(RuntimeError, match="generate_batch_async returned"):
                engine.run(self._requests(records))


class TestWireCallCounter:
    def test_serial_wire_calls_count_batch_invocations(self, records):
        """One wire call per chunk's generate_batch, not one per prompt."""
        model = create_model("gpt-4")
        engine = ExecutionEngine(batch_size=4, cache=ResponseCache(1024))
        engine.run(build_requests(model, PromptStrategy.BP1, records))
        snap = engine.telemetry.snapshot()
        assert snap["model_calls"] == len(records)
        assert snap["wire_calls"] == len(records) // 4  # one per chunk
        # A warm rerun touches the wire zero times.
        engine.run(build_requests(model, PromptStrategy.BP1, records))
        snap = engine.telemetry.snapshot()
        assert snap["wire_calls"] == len(records) // 4
        assert "wire_calls=" in engine.telemetry.format_stats()
