"""The zero-copy cache plane: snapshot broadcast, tiered eviction, shared store.

Three layers under test, matching :mod:`repro.engine`'s cache plane:

* :mod:`repro.engine.snapshot` — the columnar broadcast encoding, the
  shared-memory publish/attach/retire lifecycle and its temp-file
  fallback;
* :class:`repro.engine.cache.ResponseCache` — the size- and TTL-tiered
  eviction policy layered over the existing LRU/cost-aware tiers, and
  ``shared_read`` mode;
* :class:`repro.engine.sharedstore.SharedSegmentStore` — the mmap-backed
  multi-reader segment view, including the compaction race it must never
  lose, and the ``repro cache`` CLI over it.
"""

import json
import warnings
import threading

import pytest

import repro.engine.snapshot as engine_snapshot
from repro.__main__ import main
from repro.engine import CostModel, ResponseCache, cache_key
from repro.engine.sharedstore import SharedSegmentStore
from repro.engine.snapshot import (
    SharedSnapshotView,
    encode_snapshot,
    load_snapshot,
    publish_snapshot,
    retire_snapshot,
)


@pytest.fixture(autouse=True)
def _clean_worker_memo():
    yield
    engine_snapshot._discard_memo()


class TestSnapshotEncoding:
    def test_empty_snapshot(self):
        view = SharedSnapshotView(encode_snapshot([]))
        assert len(view) == 0
        assert view.get("anything", "default") == "default"
        assert view.identity("anything") is None

    def test_roundtrip_values_and_identities(self):
        records = [
            ("kb", "resp-β with ünïcode", None),
            ("ka", "first", "model-α"),
            ("kc", "", "m"),
        ]
        view = SharedSnapshotView(encode_snapshot(records))
        assert len(view) == 3
        assert view.get("ka") == "first"
        assert view.identity("ka") == "model-α"
        assert view.get("kb") == "resp-β with ünïcode"
        assert view.identity("kb") is None  # None identity round-trips as absent
        assert view.get("kc") == ""
        assert view.identity("kc") == "m"
        assert view.get("missing") is None

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            SharedSnapshotView(b"not-a-snapshot-buffer-at-all")

    @staticmethod
    def _hash_records(count):
        return [
            (cache_key("m", f"prompt {i}"), f"response {i}", "m") for i in range(count)
        ]

    def test_vectorised_and_fallback_encoders_agree(self, monkeypatch):
        """The numpy argsort/cumsum path and the stdlib path must produce
        byte-identical buffers — the layout is the contract, not the code."""
        records = self._hash_records(engine_snapshot._VECTOR_SORT_MIN + 100)
        vectorised = encode_snapshot(records)
        monkeypatch.setattr(engine_snapshot, "_np", None)
        assert encode_snapshot(records) == vectorised
        view = SharedSnapshotView(vectorised)
        assert all(view.get(key) == response for key, response, _ in records[:200])

    def test_variable_width_keys_fall_back_to_sorted(self):
        """Mixed-length keys can't take the fixed-width argsort; the sorted
        fallback must still produce a searchable buffer at any size."""
        records = self._hash_records(engine_snapshot._VECTOR_SORT_MIN + 10)
        records.append(("short-key", "short response", None))
        view = SharedSnapshotView(encode_snapshot(records))
        assert view.get("short-key") == "short response"
        assert view.get(records[0][0]) == records[0][1]

    def test_non_ascii_columns_use_byte_lengths(self):
        records = [(f"k{i}", "ω" * (i + 1), "idé") for i in range(10)]
        view = SharedSnapshotView(encode_snapshot(records))
        for key, response, identity in records:
            assert view.get(key) == response
            assert view.identity(key) == identity


class TestShmBroadcastLifecycle:
    def test_publish_attach_memo_retire(self):
        records = [(cache_key("m", f"p{i}"), f"r{i}", "m") for i in range(64)]
        published = publish_snapshot(records, transport="shm")
        if published.kind != "shm":
            pytest.skip("shared memory unavailable on this platform")
        try:
            view, loaded_kind = load_snapshot(published.payload)
            assert loaded_kind == "shm"
            assert view.get(records[3][0]) == "r3"
            # Second resolve of the same token is a memo hit, not a load.
            again, memo_kind = load_snapshot(published.payload)
            assert again is view and memo_kind is None
        finally:
            retire_snapshot(published)
        # The block is unlinked: late attaches fail, but the view already
        # attached keeps working (POSIX keeps the mapping alive).
        with pytest.raises((FileNotFoundError, OSError)):
            engine_snapshot._attach_shm(published.payload[1])
        assert view.get(records[3][0]) == "r3"
        assert retire_snapshot(published) is None  # idempotent

    def test_shm_failure_falls_back_to_file(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("no shared memory here")

        monkeypatch.setattr("multiprocessing.shared_memory.SharedMemory", refuse)
        records = [(cache_key("m", "p"), "r", "m")]
        published = publish_snapshot(records, transport="shm")
        try:
            assert published.kind == "file"
            view, loaded_kind = load_snapshot(published.payload)
            assert loaded_kind == "file"
            assert view.get(cache_key("m", "p")) == "r"
        finally:
            retire_snapshot(published)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            publish_snapshot([], transport="carrier-pigeon")


class TestTieredEviction:
    @staticmethod
    def _fill(cache, identity, prompt, size):
        cache.put(identity, prompt, "x" * size)

    def test_byte_budget_evicts_until_fit(self):
        cache = ResponseCache(max_entries=100, max_bytes=300)
        self._fill(cache, "m", "p1", 80)  # 64-byte key + 80 = 144
        self._fill(cache, "m", "p2", 80)
        assert cache.total_bytes == 288
        self._fill(cache, "m", "p3", 80)  # 432 > 300: evict down to budget
        assert cache.total_bytes <= 300
        assert cache.stats.evictions == 1
        assert cache.get("m", "p1") is None  # equal sizes degrade to LRU

    def test_largest_entry_goes_first_under_byte_budget(self):
        cache = ResponseCache(max_entries=100, max_bytes=400)
        self._fill(cache, "m", "small-1", 10)  # 74 bytes
        self._fill(cache, "m", "huge", 200)  # 264 bytes
        self._fill(cache, "m", "small-2", 10)  # 412 > 400
        assert cache.get("m", "huge") is None  # not the LRU-oldest, but biggest
        assert cache.get("m", "small-1") == "x" * 10
        assert cache.get("m", "small-2") == "x" * 10

    def test_size_cost_tier_weighs_bytes_per_second(self):
        """A huge cheap response must not outlive tiny expensive ones."""
        cost_model = CostModel()
        cost_model.observe("cheap", "BP1", 0.001)
        cost_model.observe("slow", "BP1", 0.5)
        cache = ResponseCache(
            max_entries=100,
            max_bytes=400,
            cost_aware_eviction=True,
            cost_model=cost_model,
        )
        self._fill(cache, "slow", "tiny-expensive", 10)  # 74 bytes, 0.5 s
        self._fill(cache, "cheap", "huge-cheap", 200)  # 264 bytes, 1 ms
        self._fill(cache, "slow", "tiny-2", 10)  # over budget
        assert cache.get("cheap", "huge-cheap") is None
        assert cache.get("slow", "tiny-expensive") == "x" * 10

    def test_ttl_expires_on_lookup(self):
        now = [100.0]
        cache = ResponseCache(max_entries=10, ttl_s=5.0, clock=lambda: now[0])
        cache.put("m", "p", "r")
        assert cache.get("m", "p") == "r"
        now[0] += 5.1
        assert cache.get("m", "p") is None
        assert cache.stats.expirations == 1
        assert cache.stats.misses == 1
        assert len(cache) == 0

    def test_expired_entries_evict_before_live_ones(self):
        now = [0.0]
        cache = ResponseCache(max_entries=2, ttl_s=5.0, clock=lambda: now[0])
        cache.put("m", "old", "r-old")  # inserted at t=0
        now[0] = 4.0
        cache.put("m", "fresh", "r-fresh")  # inserted at t=4
        assert cache.get("m", "old") == "r-old"  # touch: old is now MRU
        now[0] = 5.5  # old (age 5.5) expired, fresh (age 1.5) live
        cache.put("m", "new", "r-new")
        # Plain LRU would evict "fresh" (the LRU slot); the expiry tier
        # reclaims the expired "old" instead even though it was just used.
        assert cache.get("m", "fresh") == "r-fresh"
        assert cache.get("m", "new") == "r-new"
        assert cache.stats.evictions == 1

    def test_snapshot_records_carry_identities(self):
        cache = ResponseCache()
        cache.put("model-a", "p", "r")
        cache.put_key("bare-key", "r2")
        records = dict(
            (key, (response, identity))
            for key, response, identity in cache.snapshot_records()
        )
        assert records[cache_key("model-a", "p")] == ("r", "model-a")
        assert records["bare-key"] == ("r2", None)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResponseCache(max_bytes=0)
        with pytest.raises(ValueError):
            ResponseCache(ttl_s=0)
        with pytest.raises(ValueError):
            ResponseCache(shared_read=True)  # no path to share


class TestSharedSegmentStore:
    @staticmethod
    def _write_store(path, entries, **kwargs):
        cache = ResponseCache(path=path, auto_compact_ratio=None, **kwargs)
        for identity, prompt, response in entries:
            cache.put(identity, prompt, response)
        cache.save()
        return cache

    def test_get_and_default(self, tmp_path):
        target = tmp_path / "store"
        self._write_store(target, [("m", "p", "the response")])
        store = SharedSegmentStore(target)
        assert store.get(cache_key("m", "p")) == "the response"
        assert store.get("0" * 64, "fallback") == "fallback"
        assert len(store) == 1

    def test_identity_round_trips(self, tmp_path):
        target = tmp_path / "store"
        self._write_store(target, [("model-x", "p", "r")])
        store = SharedSegmentStore(target)
        assert store.identity(cache_key("model-x", "p")) == "model-x"

    def test_open_returns_one_store_per_directory(self, tmp_path):
        target = tmp_path / "store"
        self._write_store(target, [("m", "p", "r")])
        first = SharedSegmentStore.open(target)
        second = SharedSegmentStore.open(tmp_path / "." / "store")
        assert first is second

    def test_later_segments_win_after_refresh(self, tmp_path):
        target = tmp_path / "store"
        cache = self._write_store(target, [("m", "p", "version 1")])
        store = SharedSegmentStore(target)
        key = cache_key("m", "p")
        assert store.get(key) == "version 1"
        cache.put("m", "p", "version 2")
        cache.save()  # appends a later segment superseding the first line
        store.refresh()
        assert store.get(key) == "version 2"

    def test_auto_refresh_on_miss_picks_up_new_segments(self, tmp_path):
        target = tmp_path / "store"
        store = SharedSegmentStore(target)  # opened before anything exists
        assert len(store) == 0
        self._write_store(target, [("m", "p", "r")])
        # No explicit refresh: the miss re-checks the directory signature.
        assert store.get(cache_key("m", "p")) == "r"

    def test_stats_shape(self, tmp_path):
        target = tmp_path / "store"
        cache = self._write_store(target, [("m", "p", "r")])
        cache.put("m", "p", "r2")
        cache.save()
        store = SharedSegmentStore(target)
        stats = store.stats()
        assert stats["segments"] == 2
        assert stats["live_entries"] == 1
        assert stats["entry_lines"] == 2
        assert stats["dead_entries"] == 1
        assert 0.0 < stats["dead_ratio"] <= 0.5
        assert stats["total_bytes"] > 0

    def test_compaction_never_starves_a_concurrent_reader(self, tmp_path):
        """The satellite guarantee: ``compact()`` racing an open reader must
        never serve a torn or missing entry.  New segments are written
        before old ones are unlinked, and unlinked mmaps stay valid, so
        every ``get`` sees complete data no matter when it lands."""
        target = tmp_path / "store"
        stable = [("m", f"stable {i}", f"response {i}") for i in range(24)]
        cache = self._write_store(target, stable)
        expected = {cache_key("m", f"stable {i}"): f"response {i}" for i in range(24)}
        store = SharedSegmentStore(target)
        stop = threading.Event()
        writer_errors = []

        def churn():
            try:
                for round_no in range(30):
                    cache.put("m", f"churn {round_no}", "x" * 64)
                    cache.save()
                    cache.compact()
            except Exception as exc:  # pragma: no cover - the assertion
                writer_errors.append(exc)
            finally:
                stop.set()

        writer = threading.Thread(target=churn)
        writer.start()
        reads = 0
        try:
            while not stop.is_set():
                for key, response in expected.items():
                    got = store.get(key)
                    assert got == response, f"torn/missing read after {reads} reads"
                    reads += 1
                store.refresh()  # pick up post-compaction views mid-race too
        finally:
            writer.join()
        assert not writer_errors
        assert reads > 0
        store.refresh()
        assert all(store.get(key) == response for key, response in expected.items())


class TestSegmentManifest:
    """The writer-side segment manifest and the incremental reader rebuild.

    Every committed cache write (incremental save, compaction, legacy
    migration) rewrites ``manifest.json`` attesting the segment set, so
    :class:`SharedSegmentStore` can (a) answer the miss-path "did anything
    change?" probe with one stat of the manifest instead of a sweep of
    every segment, and (b) on an actual change, re-scan only the new or
    changed segments, reusing the folded ones' mmaps and sub-indexes.
    The manifest is advisory: corrupt, stale or missing manifests only
    disable the fast-path, never correctness.
    """

    @staticmethod
    def _write_store(path, entries):
        cache = ResponseCache(path=path, auto_compact_ratio=None)
        for identity, prompt, response in entries:
            cache.put(identity, prompt, response)
        cache.save()
        return cache

    @staticmethod
    def _manifest(path):
        return json.loads((path / "manifest.json").read_text(encoding="utf-8"))

    def test_save_writes_manifest_matching_segments(self, tmp_path):
        target = tmp_path / "store"
        self._write_store(target, [("m", "p", "r")])
        manifest = self._manifest(target)
        assert manifest["format"] == "repro-response-cache-manifest"
        assert manifest["generation"] == 1
        names = sorted(p.name for p in target.glob("segment-*.jsonl"))
        assert sorted(manifest["segments"]) == names
        for name, record in manifest["segments"].items():
            stat = (target / name).stat()
            assert record["size"] == stat.st_size
            assert record["mtime_ns"] == stat.st_mtime_ns

    def test_generation_increments_per_commit(self, tmp_path):
        target = tmp_path / "store"
        cache = self._write_store(target, [("m", "p1", "r1")])
        cache.put("m", "p2", "r2")
        cache.save()
        assert self._manifest(target)["generation"] == 2
        cache.compact()
        assert self._manifest(target)["generation"] == 3
        names = sorted(p.name for p in target.glob("segment-*.jsonl"))
        assert sorted(self._manifest(target)["segments"]) == names

    def test_legacy_migration_writes_manifest(self, tmp_path):
        target = tmp_path / "cache"
        legacy = {
            "format": "repro-response-cache",
            "version": 1,
            "entries": {"a" * 64: "legacy response"},
        }
        target.write_text(json.dumps(legacy), encoding="utf-8")
        cache = ResponseCache(path=target)
        cache.put("m", "p", "r")
        cache.save()
        assert target.is_dir()
        names = sorted(p.name for p in target.glob("segment-*.jsonl"))
        assert sorted(self._manifest(target)["segments"]) == names

    def test_refresh_reuses_unchanged_segments(self, tmp_path):
        target = tmp_path / "store"
        cache = self._write_store(target, [("m", f"p{i}", f"r{i}") for i in range(8)])
        store = SharedSegmentStore(target)
        assert store.stats()["segments_rescanned"] == 1
        assert store.stats()["segments_reused"] == 0
        cache.put("m", "extra", "extra response")
        cache.save()  # appends a second segment; the first is untouched
        store.refresh()
        stats = store.stats()
        assert stats["segments"] == 2
        assert stats["segments_reused"] == 1  # folded segment: no rescan
        assert stats["segments_rescanned"] == 2  # only the new one scanned
        assert store.get(cache_key("m", "extra")) == "extra response"
        assert store.get(cache_key("m", "p3")) == "r3"

    def test_miss_with_current_manifest_skips_the_sweep(self, tmp_path):
        target = tmp_path / "store"
        self._write_store(target, [("m", "p", "r")])
        store = SharedSegmentStore(target)
        assert store._view.manifest_sig is not None
        view_before = store._view
        assert store.get("0" * 64) is None  # miss probes for external writes
        assert store._view is view_before  # manifest unchanged: view kept

    def test_miss_sees_new_segment_after_manifest_update(self, tmp_path):
        target = tmp_path / "store"
        cache = self._write_store(target, [("m", "p", "r")])
        store = SharedSegmentStore(target)
        cache.put("m", "late", "late response")
        cache.save()  # bumps the manifest along with the new segment
        # No explicit refresh: the miss path must notice the manifest moved.
        assert store.get(cache_key("m", "late")) == "late response"

    def test_corrupt_manifest_disables_fast_path_only(self, tmp_path):
        target = tmp_path / "store"
        self._write_store(target, [("m", "p", "r")])
        (target / "manifest.json").write_text("{not json", encoding="utf-8")
        store = SharedSegmentStore(target)
        assert store._view.manifest_sig is None
        assert store.get(cache_key("m", "p")) == "r"

    def test_stale_manifest_from_foreign_writer_is_ignored(self, tmp_path):
        """A writer that appends segments without updating the manifest
        (pre-manifest version, foreign tool) must not be masked by the
        fast-path: at view build the manifest's segment list disagrees
        with the directory, so the fast-path never arms."""
        target = tmp_path / "store"
        self._write_store(target, [("m", "p", "r")])
        foreign = target / "segment-000099.jsonl"
        foreign.write_text(
            '{"format": "repro-response-cache", "version": 2}\n'
            + json.dumps({"k": "f" * 64, "r": "foreign"})
            + "\n",
            encoding="utf-8",
        )
        store = SharedSegmentStore(target)
        assert store._view.manifest_sig is None  # manifest != directory
        assert store.get("f" * 64) == "foreign"

    def test_explicit_refresh_never_uses_the_manifest_shortcut(self, tmp_path):
        target = tmp_path / "store"
        self._write_store(target, [("m", "p", "r")])
        store = SharedSegmentStore(target)
        foreign = target / "segment-000099.jsonl"
        foreign.write_text(
            '{"format": "repro-response-cache", "version": 2}\n'
            + json.dumps({"k": "e" * 64, "r": "external"})
            + "\n",
            encoding="utf-8",
        )
        store.refresh()  # full sweep despite the now-stale (valid) manifest
        assert store.get("e" * 64) == "external"


class TestSharedReadCache:
    def test_serves_store_hits_without_loading_segments(self, tmp_path):
        target = tmp_path / "store"
        writer = ResponseCache(path=target)
        writer.put("m", "p", "warm response")
        writer.save()
        reader = ResponseCache(path=target, shared_read=True)
        assert len(reader) == 0  # nothing loaded into the private tier
        assert reader.shared_store is not None
        assert reader.get("m", "p") == "warm response"
        assert len(reader) == 0  # hits are not promoted into memory
        assert reader.stats.hits == 1
        assert reader.get("m", "cold prompt") is None
        assert reader.stats.misses == 1

    def test_merge_of_store_held_response_is_not_repersisted(self, tmp_path):
        target = tmp_path / "store"
        writer = ResponseCache(path=target)
        writer.put("m", "p", "same response")
        writer.save()
        reader = ResponseCache(path=target, shared_read=True)
        reader.put("m", "p", "same response")
        assert reader.pending_count == 0  # identical to the store: no dead line
        reader.put("m", "p2", "genuinely new")
        assert reader.pending_count == 1

    def test_rejects_legacy_single_file_store(self, tmp_path):
        legacy = tmp_path / "cache.json"
        legacy.write_text('{"version": 1, "entries": {}}', encoding="utf-8")
        with pytest.raises(ValueError):
            ResponseCache(path=legacy, shared_read=True)


class TestHotHitPromotion:
    """Hot shared-store entries graduate into the in-memory tier.

    A key served repeatedly off the mmap pays the store lookup every time;
    after ``shared_promote_after`` hits it is promoted into the private
    LRU (still under the entry/byte budgets), so the hottest keys become
    plain memory hits while cold keys keep costing nothing resident."""

    @staticmethod
    def _store_with(tmp_path, entries):
        target = tmp_path / "store"
        writer = ResponseCache(path=target)
        for prompt, response in entries:
            writer.put("m", prompt, response)
        writer.save()
        return target

    def test_promotes_after_threshold_store_hits(self, tmp_path):
        target = self._store_with(tmp_path, [("hot", "hot response"), ("cold", "x")])
        reader = ResponseCache(path=target, shared_read=True)
        assert reader.get("m", "hot") == "hot response"
        assert len(reader) == 0 and reader.stats.promotions == 0
        assert reader.get("m", "hot") == "hot response"
        assert len(reader) == 1 and reader.stats.promotions == 1
        assert reader.shared_store.stats()["promotions"] == 1
        # The third hit is a plain memory hit; cold keys stay on disk only.
        assert reader.get("m", "hot") == "hot response"
        assert reader.get("m", "cold") == "x"
        assert len(reader) == 1 and reader.stats.promotions == 1
        assert reader.stats.snapshot()["promotions"] == 1

    def test_promotion_threshold_is_configurable_and_validated(self, tmp_path):
        target = self._store_with(tmp_path, [("p", "r")])
        eager = ResponseCache(path=target, shared_read=True, shared_promote_after=1)
        assert eager.get("m", "p") == "r"
        assert len(eager) == 1 and eager.stats.promotions == 1
        with pytest.raises(ValueError):
            ResponseCache(path=target, shared_read=True, shared_promote_after=0)

    def test_promoted_entries_respect_byte_budget(self, tmp_path):
        big_a, big_b = "a" * 3000, "b" * 3000
        target = self._store_with(tmp_path, [("pa", big_a), ("pb", big_b)])
        reader = ResponseCache(
            path=target, shared_read=True, max_bytes=5000, shared_promote_after=1
        )
        assert reader.get("m", "pa") == big_a
        assert reader.get("m", "pb") == big_b
        # Both promoted, but the byte budget holds only one resident.
        assert reader.stats.promotions == 2
        assert len(reader) == 1
        # Responses are still served correctly either way.
        assert reader.get("m", "pa") == big_a
        assert reader.get("m", "pb") == big_b

    def test_promoted_then_evicted_key_is_not_repersisted(self, tmp_path):
        big = "a" * 3000
        target = self._store_with(tmp_path, [("p", big), ("q", "b" * 3000)])
        reader = ResponseCache(
            path=target, shared_read=True, max_bytes=5000, shared_promote_after=1
        )
        assert reader.get("m", "p") == big
        assert reader.get("m", "q") == "b" * 3000  # evicts one promoted entry
        # Re-putting the store-held response must not queue a dead line.
        reader.put("m", "p", big)
        reader.put("m", "q", "b" * 3000)
        assert reader.pending_count == 0

    def test_cache_stats_cli_reports_promotions(self, tmp_path, capsys):
        target = self._store_with(tmp_path, [("p", "r")])
        assert main(["cache", "stats", "--cache", str(target)]) == 0
        out = capsys.readouterr().out
        assert "promotions=0" in out


class TestCacheCLI:
    @staticmethod
    def _build_store(target, rounds=3):
        cache = ResponseCache(path=target, auto_compact_ratio=None)
        for round_no in range(rounds):
            cache.put("m", "shared prompt", f"version {round_no}")
            cache.put("m", f"prompt {round_no}", f"response {round_no}")
            cache.save()
        return cache

    def test_cache_stats_command(self, tmp_path, capsys):
        target = tmp_path / "store"
        self._build_store(target)
        assert main(["cache", "stats", "--cache", str(target)]) == 0
        out = capsys.readouterr().out
        assert "[cache]" in out
        assert "segments=3" in out
        assert "live_entries=4" in out

    def test_cache_compact_command_folds_segments(self, tmp_path, capsys):
        target = tmp_path / "store"
        self._build_store(target)
        assert len(list(target.glob("segment-*.jsonl"))) == 3
        assert main(["cache", "compact", "--cache", str(target)]) == 0
        out = capsys.readouterr().out
        assert "[cache]" in out
        assert len(list(target.glob("segment-*.jsonl"))) == 1
        store = SharedSegmentStore(target)
        assert store.get(cache_key("m", "shared prompt")) == "version 2"

    def test_cache_command_validations(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache"])  # missing subcommand
        with pytest.raises(SystemExit):
            main(["cache", "stats"])  # missing --cache
        with pytest.raises(SystemExit):
            main(["cache", "defragment", "--cache", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["table2", "stats"])  # subcommands belong to 'cache' only

    def test_eviction_flags_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["table2", "--cache-max-bytes", "0"])
        with pytest.raises(SystemExit):
            main(["table2", "--cache-ttl", "0"])
        with pytest.raises(SystemExit):
            main(["table2", "--cache-entries", "0", "--cache-max-bytes", "1000"])
        with pytest.raises(SystemExit):
            main(["table2", "--shared-cache"])  # needs --cache PATH
        with pytest.raises(SystemExit):
            main(["table2", "--snapshot-transport", "fax"])


class TestPersistenceFaultTolerance:
    """The cache plane under I/O failure and foreign-writer races (PR 9).

    Persistence is an optimisation: a failing save warns once and keeps
    the entries in memory (and pending, so a healthy later save retries
    them); a shared store whose segments vanish mid-open degrades to a
    private load; a segment deleted between the manifest stat and the
    mmap is simply skipped.  None of these may abort a run.
    """

    @staticmethod
    def _write_store(path, entries):
        cache = ResponseCache(path=path, auto_compact_ratio=None)
        for identity, prompt, response in entries:
            cache.put(identity, prompt, response)
        cache.save()
        return cache

    def test_segment_deleted_between_stat_and_mmap_is_skipped(self, tmp_path, monkeypatch):
        target = tmp_path / "store"
        cache = self._write_store(target, [("m", "p1", "r1")])
        cache.put("m", "p2", "r2")
        cache.save()  # second segment; the manifest lists both
        segments = sorted(target.glob("segment-*.jsonl"))
        assert len(segments) == 2
        victim = segments[0]
        original = SharedSegmentStore._map_segment

        def racing_map(segment):
            # A foreign compaction wins the race: the segment the sweep
            # just listed is gone by the time we come to map it.
            if segment.name == victim.name and victim.exists():
                victim.unlink()
            return original(segment)

        monkeypatch.setattr(SharedSegmentStore, "_map_segment", staticmethod(racing_map))
        store = SharedSegmentStore(target)  # must not raise
        assert store.get(cache_key("m", "p2")) == "r2"
        assert store.get(cache_key("m", "p1"), "miss") == "miss"

    def test_shared_read_open_failure_falls_back_to_private_load(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "store"
        self._write_store(target, [("m", "p", "r")])

        def refuse(path):
            raise OSError("directory vanished mid-scan")

        monkeypatch.setattr(SharedSegmentStore, "open", refuse)
        with pytest.warns(RuntimeWarning, match="private load"):
            cache = ResponseCache(path=target, shared_read=True)
        assert cache.shared_read is False
        assert cache.get("m", "p") == "r"  # served from the private load

    def test_save_failure_warns_once_and_keeps_entries(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache directory must go")
        cache = ResponseCache(path=blocker / "store")
        cache.put("m", "p", "r")
        with pytest.warns(RuntimeWarning, match="kept in memory"):
            cache.save()
        assert cache.get("m", "p") == "r"  # nothing lost
        # One warning per instance: the second failing save is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache.save()
        # The unsaved entries stayed pending, so a healthy path gets them.
        good = tmp_path / "good"
        cache.save(good)
        assert ResponseCache(path=good).get("m", "p") == "r"

    def test_truncated_manifest_disables_fast_path_only(self, tmp_path):
        target = tmp_path / "store"
        self._write_store(target, [("m", "p", "r")])
        manifest = target / "manifest.json"
        raw = manifest.read_bytes()
        manifest.write_bytes(raw[: len(raw) // 2])  # torn foreign write
        store = SharedSegmentStore(target)
        assert store._view.manifest_sig is None
        assert store.get(cache_key("m", "p")) == "r"
