"""Tail-latency control: speculative re-execution + deadline-aware scheduling.

Pinned contracts:

* speculation is a pure execution optimisation — confusion counts and
  responses are bit-identical with ``speculate`` on or off, across the
  thread, process and async backends, under a heavy-tail flaky adapter;
* a won race is merged exactly once: the loser's result is dropped, so
  cost-model observations and telemetry counters are never double-fed;
* the deadline planner sheds work *explicitly*: every shed request comes
  back as a ``skipped`` :class:`RunResult` in its original position, and
  telemetry reports predicted-vs-actual makespan;
* :class:`FlakyTailAdapter` is deterministic in everything but the
  first-attempt hang it simulates.
"""

import threading
import time

import pytest

from repro.engine import ExecutionEngine, SHED_RESPONSE, build_requests
from repro.eval.experiments import default_subset
from repro.llm.adapters import FlakyTailAdapter
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy


@pytest.fixture(scope="module")
def records():
    return default_subset().records[:16]


def _flaky_model(**overrides):
    settings = dict(latency_s=0.002, tail_latency_s=0.25, tail_ratio=0.15)
    settings.update(overrides)
    return FlakyTailAdapter(create_model("gpt-4"), **settings)


def _fingerprint(store):
    return [
        (r.model, r.strategy, r.record_name, r.response, r.prediction, r.skipped)
        for r in store
    ]


def _warm_cost_model(engine, model, strategy="BP1", seconds=0.003, n=3):
    for _ in range(n):
        engine.cost_model.observe(model.cache_identity, strategy, seconds)


class TestFlakyTailAdapter:
    def test_responses_match_inner_model(self):
        inner = create_model("gpt-4")
        adapter = _flaky_model(latency_s=0.0, tail_latency_s=0.0)
        prompt = "Is there a data race?\n```c\nint x;\n```"
        assert adapter.generate(prompt) == inner.generate(prompt)
        assert adapter.cache_identity == inner.cache_identity

    def test_tail_selection_is_deterministic(self):
        a, b = _flaky_model(), _flaky_model()
        prompts = [f"prompt-{i}" for i in range(50)]
        assert [a.is_tail_prompt(p) for p in prompts] == [
            b.is_tail_prompt(p) for p in prompts
        ]
        assert any(a.is_tail_prompt(p) for p in prompts)
        assert not all(a.is_tail_prompt(p) for p in prompts)

    def test_first_attempt_hangs_retries_do_not(self):
        adapter = _flaky_model(latency_s=0.0, tail_latency_s=0.05, tail_ratio=1.0)
        prompt = "always-a-tail-prompt"
        start = time.perf_counter()
        adapter.generate(prompt)
        first = time.perf_counter() - start
        start = time.perf_counter()
        adapter.generate(prompt)
        second = time.perf_counter() - start
        assert first >= 0.05
        assert second < 0.05

    def test_pickles_without_lock_state(self):
        import pickle

        adapter = _flaky_model(tail_ratio=1.0)
        adapter.generate("warm the attempt counter")
        clone = pickle.loads(pickle.dumps(adapter))
        # The clone starts its own attempt history but answers identically.
        assert clone._attempts == {}
        assert clone.generate("other") == adapter.inner.generate("other")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            _flaky_model(latency_s=-1)
        with pytest.raises(ValueError):
            _flaky_model(tail_ratio=1.5)


class TestSpeculationEquivalence:
    @pytest.mark.parametrize("executor_kind", ["thread", "process", "async"])
    def test_counts_bit_identical_with_and_without_speculation(
        self, records, executor_kind
    ):
        fingerprints = {}
        counts = {}
        for speculate in (False, True):
            model = _flaky_model()
            engine = ExecutionEngine(
                jobs=4,
                executor_kind=executor_kind,
                batch_size=4,
                speculate=speculate,
                speculate_after=1.2,
            )
            engine.speculation_poll_s = 0.002
            _warm_cost_model(engine, model)
            with engine:
                store = engine.run(build_requests(model, PromptStrategy.BP1, records))
            fingerprints[speculate] = _fingerprint(store)
            counts[speculate] = store.confusion()
        assert fingerprints[True] == fingerprints[False]
        assert counts[True] == counts[False]

    def test_speculation_races_and_wins_on_thread_backend(self, records):
        model = _flaky_model(tail_latency_s=0.3)
        engine = ExecutionEngine(
            jobs=8, executor_kind="thread", batch_size=4, speculate=True,
            speculate_after=1.2,
        )
        engine.speculation_poll_s = 0.002
        _warm_cost_model(engine, model)
        with engine:
            engine.run(build_requests(model, PromptStrategy.BP1, records))
        snap = engine.telemetry.snapshot()
        assert snap["speculation_launched"] >= 1
        assert snap["speculation_won"] >= 1
        assert (
            snap["speculation_won"] + snap["speculation_wasted"]
            <= snap["speculation_launched"]
        )

    def test_won_race_feeds_cost_model_exactly_once(self, records):
        """The loser's duplicate observations must never reach the EWMA."""
        model = _flaky_model(tail_latency_s=0.3)
        engine = ExecutionEngine(
            jobs=8, executor_kind="thread", batch_size=4, speculate=True,
            speculate_after=1.2,
        )
        engine.speculation_poll_s = 0.002
        warm_observations = 3
        _warm_cost_model(engine, model, n=warm_observations)
        with engine:
            store = engine.run(build_requests(model, PromptStrategy.BP1, records))
        assert len(store) == len(records)
        assert engine.telemetry.snapshot()["speculation_won"] >= 1
        # One observation per merged chunk (4 chunks of 4), one per warm-up
        # call — a double-merged race would show up as an extra count.
        n_chunks = len(records) // 4
        group = next(
            g
            for g in engine.cost_model.snapshot()
            if g["model"] == model.cache_identity and g["strategy"] == "BP1"
        )
        assert group["observations"] == warm_observations + n_chunks

    def test_no_speculation_without_estimates(self, records):
        """A cold cost model cannot declare a chunk overdue."""
        model = _flaky_model()
        engine = ExecutionEngine(
            jobs=4, executor_kind="thread", batch_size=4, speculate=True
        )
        engine.speculation_poll_s = 0.002
        with engine:
            engine.run(build_requests(model, PromptStrategy.BP1, records))
        assert engine.telemetry.snapshot()["speculation_launched"] == 0

    def test_serial_executor_ignores_speculation(self, records):
        model = _flaky_model(tail_latency_s=0.02)
        engine = ExecutionEngine(batch_size=4, speculate=True)
        _warm_cost_model(engine, model)
        with engine:
            store = engine.run(build_requests(model, PromptStrategy.BP1, records))
        assert len(store) == len(records)
        assert engine.telemetry.snapshot()["speculation_launched"] == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ExecutionEngine(speculate_after=0)
        with pytest.raises(ValueError):
            ExecutionEngine(deadline=-1.0)


class _RetryPoisonModel:
    """Hangs on the first attempt at the first prompt; *raises* on retries.

    The regime where a naive racer is worse than no racer: the duplicate
    always errors, so the run must survive on the original copy alone.
    """

    name = "retry-poison"
    context_window = 4096
    cache_identity = "retry-poison"
    has_native_async = False

    def __init__(self, hang_s=0.3, fail_first_too=False):
        self.hang_s = hang_s
        self.fail_first_too = fail_first_too
        self._attempts = {}
        self._first_prompt = None
        self._lock = threading.Lock()

    def generate(self, prompt):
        with self._lock:
            attempt = self._attempts.get(prompt, 0)
            self._attempts[prompt] = attempt + 1
            if self._first_prompt is None:
                self._first_prompt = prompt
        if attempt > 0:
            raise ConnectionError("flaky retry")
        if prompt == self._first_prompt:
            time.sleep(self.hang_s)
            if self.fail_first_too:
                raise ConnectionError("flaky first attempt")
        return "yes"

    def generate_batch(self, prompts):
        return [self.generate(prompt) for prompt in prompts]


class TestSpeculationFailureIsolation:
    def _engine(self):
        engine = ExecutionEngine(
            jobs=4, executor_kind="thread", batch_size=4, speculate=True,
            speculate_after=1.2,
        )
        engine.speculation_poll_s = 0.002
        return engine

    def test_failing_duplicate_does_not_abort_run(self, records):
        """A duplicate that errors while the original is still running must
        be dropped — speculation must never *add* a failure mode."""
        model = _RetryPoisonModel()
        engine = self._engine()
        _warm_cost_model(engine, model, seconds=0.002)
        with engine:
            store = engine.run(build_requests(model, PromptStrategy.BP1, records[:4]))
        assert len(store) == 4
        assert all(r.response == "yes" for r in store)
        snap = engine.telemetry.snapshot()
        assert snap["speculation_launched"] >= 1
        assert snap["speculation_won"] == 0
        assert snap["speculation_wasted"] == snap["speculation_launched"]

    def test_error_propagates_when_every_copy_fails(self, records):
        model = _RetryPoisonModel(fail_first_too=True)
        engine = self._engine()
        _warm_cost_model(engine, model, seconds=0.002)
        with engine:
            with pytest.raises(ConnectionError):
                engine.run(build_requests(model, PromptStrategy.BP1, records[:4]))

    def test_duplicates_never_preempt_pending_originals(self, records):
        """Queued first-copy chunks take freed slots before any duplicate."""
        model = _flaky_model(tail_latency_s=0.2, tail_ratio=0.0)
        engine = ExecutionEngine(
            jobs=2, executor_kind="thread", batch_size=2, speculate=True,
            speculate_after=0.001,  # everything is instantly "overdue"
        )
        engine.speculation_poll_s = 0.001
        _warm_cost_model(engine, model, seconds=0.002)
        with engine:
            store = engine.run(build_requests(model, PromptStrategy.BP1, records))
        assert len(store) == len(records)
        # With every chunk overdue from the start and the queue never
        # empty until the end, duplicates may only launch for the chunks
        # still running after the last original was submitted.
        snap = engine.telemetry.snapshot()
        assert snap["speculation_launched"] <= 2  # jobs slots at the tail


class TestDeadlineScheduling:
    def _engine(self, deadline, seconds_per_request=0.05, jobs=2):
        engine = ExecutionEngine(
            jobs=jobs, executor_kind="thread", batch_size=4, deadline=deadline,
            adaptive_batching=False,
        )
        return engine

    def test_tight_deadline_sheds_explicit_skips(self, records):
        fast = create_model("gpt-4")
        slow = create_model("llama2-7b")
        engine = self._engine(deadline=0.05)
        engine.cost_model.observe(fast.cache_identity, "BP1", 0.001)
        engine.cost_model.observe(slow.cache_identity, "BP1", 0.5)
        requests = build_requests(fast, PromptStrategy.BP1, records) + build_requests(
            slow, PromptStrategy.BP1, records
        )
        with engine:
            store = engine.run(requests)
        # Every request has a result in its original position; the slow
        # (cheapest-value) group was shed, the fast one evaluated.
        assert len(store) == len(requests)
        shed = [r for r in store if r.skipped]
        kept = [r for r in store if not r.skipped]
        assert shed and kept
        assert all(r.model == "llama2-7b" for r in shed)
        assert all(r.response == SHED_RESPONSE for r in shed)
        assert all(r.prediction is False for r in shed)
        snap = engine.telemetry.snapshot()
        assert snap["deadline_shed"] == len(shed)
        assert snap["deadline_budget_s"] == 0.05
        assert snap["deadline_predicted_s"] <= 0.05
        assert snap["deadline_actual_s"] > 0
        # Shed work must not masquerade as genuine "no race" verdicts:
        # confusion counts cover only what was actually evaluated.
        assert store.confusion().total == len(kept)

    def test_shedding_skips_chunks_that_buy_no_makespan(self, records):
        """Greedy shedding must not discard work that cannot help.

        The expensive-per-request group (A) does not bound the makespan —
        the long cheap chunk (B) does — so shedding A first would discard
        its answers for zero gain and then shed B anyway.  The planner
        must keep A and shed only B.
        """
        model_a = create_model("llama2-7b")  # 4 reqs x 1.0 s/req  = 4 s chunk
        model_b = create_model("gpt-4")      # 80 reqs x 0.2 s/req = 16 s chunk
        engine = ExecutionEngine(
            jobs=2, executor_kind="thread", batch_size=100, deadline=10.0,
            adaptive_batching=False,
        )
        engine.cost_model.observe(model_a.cache_identity, "BP1", 1.0)
        engine.cost_model.observe(model_b.cache_identity, "BP1", 0.2)
        requests = build_requests(model_a, PromptStrategy.BP1, records[:4]) + build_requests(
            model_b, PromptStrategy.BP1, list(records) * 5
        )
        # Prediction: max((4 + 16) / 2, 16) = 16 > 10.  Shedding A alone
        # leaves max(8, 16) = 16 — useless; shedding only B leaves
        # max(2, 4) = 4 <= 10.
        with engine:
            store = engine.run(requests)
        assert all(not r.skipped for r in store if r.model == "llama2-7b")
        assert all(r.skipped for r in store if r.model == "gpt-4")
        assert engine.telemetry.snapshot()["deadline_predicted_s"] <= 10.0

    def test_loose_deadline_sheds_nothing(self, records):
        model = create_model("gpt-4")
        engine = self._engine(deadline=120.0)
        engine.cost_model.observe(model.cache_identity, "BP1", 0.001)
        with engine:
            store = engine.run(build_requests(model, PromptStrategy.BP1, records))
        assert not any(r.skipped for r in store)
        assert engine.telemetry.snapshot()["deadline_shed"] == 0
        assert engine.telemetry.snapshot()["deadline_predicted_s"] > 0

    def test_cold_cost_model_never_sheds(self, records):
        """No estimates -> no evidence -> a deadline cannot shed anything."""
        model = create_model("gpt-4")
        engine = self._engine(deadline=0.0001)
        with engine:
            store = engine.run(build_requests(model, PromptStrategy.BP1, records))
        assert not any(r.skipped for r in store)

    def test_no_deadline_records_no_telemetry(self, records):
        model = create_model("gpt-4")
        with ExecutionEngine(batch_size=4) as engine:
            engine.run(build_requests(model, PromptStrategy.BP1, records))
        snap = engine.telemetry.snapshot()
        assert snap["deadline_budget_s"] == 0.0
        assert snap["deadline_shed"] == 0

    def test_stats_line_mentions_speculation_and_deadline(self, records):
        model = _flaky_model(tail_latency_s=0.2)
        engine = ExecutionEngine(
            jobs=8, executor_kind="thread", batch_size=4, speculate=True,
            speculate_after=1.2, deadline=60.0,
        )
        engine.speculation_poll_s = 0.002
        _warm_cost_model(engine, model)
        with engine:
            engine.run(build_requests(model, PromptStrategy.BP1, records))
        line = engine.telemetry.format_stats(executor_name="thread")
        assert "deadline=" in line and "predicted=" in line
        if engine.telemetry.snapshot()["speculation_launched"]:
            assert "speculation=" in line
