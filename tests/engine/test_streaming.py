"""The bounded-memory streaming path: laziness, run-ahead, windows, gauges.

Equivalence of streamed vs materialised *results* lives in
test_equivalence.py; this file pins the memory-shape guarantees that make
streaming worth having — the producer is pulled at most one window ahead
of consumption, nothing is generated before the first result is asked
for, and the telemetry gauges report O(window) residency.
"""

import pytest

from repro.engine import (
    DEFAULT_STREAM_WINDOW,
    ExecutionEngine,
    iter_requests,
)
from repro.eval.experiments import default_subset, iter_detection_requests
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy


@pytest.fixture(scope="module")
def subset():
    return default_subset()


class _CountingProducer:
    """Wrap an iterable, counting how many items have been pulled."""

    def __init__(self, iterable):
        self._iterator = iter(iterable)
        self.produced = 0

    def __iter__(self):
        return self

    def __next__(self):
        item = next(self._iterator)
        self.produced += 1
        return item


class TestStreamingWindows:
    def test_nothing_is_pulled_before_first_result(self, subset):
        producer = _CountingProducer(
            iter_requests(create_model("gpt-4"), PromptStrategy.BP1, subset.records[:20])
        )
        with ExecutionEngine() as engine:
            stream = engine.run_streaming(producer, window=8)
            assert producer.produced == 0  # generator: no work until iterated
            next(iter(stream))
            assert producer.produced == 8  # exactly one window

    def test_producer_runahead_is_bounded_by_the_window(self, subset):
        """The O(window) claim at the request level: at any point during
        consumption the producer has been pulled at most ``window`` items
        past what the consumer has taken."""
        window = 8
        records = subset.records[:30]
        producer = _CountingProducer(
            iter_requests(create_model("gpt-4"), PromptStrategy.BP1, records)
        )
        consumed = 0
        with ExecutionEngine() as engine:
            for _ in engine.run_streaming(producer, window=window):
                consumed += 1
                assert producer.produced <= consumed + window
        assert consumed == len(records)
        assert producer.produced == len(records)

    def test_results_arrive_in_request_order(self, subset):
        records = subset.records[:20]
        with ExecutionEngine(jobs=4, batch_size=3) as engine:
            results = list(
                engine.run_streaming(
                    iter_requests(create_model("gpt-4"), PromptStrategy.BP1, records),
                    window=6,
                )
            )
        assert [r.record_name for r in results] == [r.name for r in records]

    def test_empty_stream_yields_nothing(self):
        with ExecutionEngine() as engine:
            assert list(engine.run_streaming(iter(()))) == []

    def test_window_defaults_to_engine_stream_window(self, subset):
        records = subset.records[:10]
        with ExecutionEngine(stream_window=4) as engine:
            results = list(
                engine.run_streaming(
                    iter_requests(create_model("gpt-4"), PromptStrategy.BP1, records)
                )
            )
            assert len(results) == len(records)
            # The gauge proves the constructor window was the one used.
            assert engine.telemetry.snapshot()["resident_requests_peak"] == 4

    def test_default_stream_window_is_sane(self):
        assert ExecutionEngine().stream_window == DEFAULT_STREAM_WINDOW
        assert DEFAULT_STREAM_WINDOW >= 1

    def test_rejects_bad_windows(self, subset):
        with pytest.raises(ValueError):
            ExecutionEngine(stream_window=0)
        with ExecutionEngine() as engine:
            with pytest.raises(ValueError):
                engine.run_streaming(iter(()), window=0)

    def test_resident_gauge_tracks_window_not_corpus(self, subset):
        """Streaming twenty requests through windows of five peaks the
        residency gauge at five; the materialised run peaks at twenty."""
        records = subset.records[:20]
        model = create_model("gpt-4")
        with ExecutionEngine() as engine:
            list(
                engine.run_streaming(
                    iter_requests(model, PromptStrategy.BP1, records), window=5
                )
            )
            assert engine.telemetry.snapshot()["resident_requests_peak"] == 5
        with ExecutionEngine() as engine:
            engine.run_counts(
                list(iter_requests(model, PromptStrategy.BP1, records))
            )
            assert engine.telemetry.snapshot()["resident_requests_peak"] == 20


class TestLazyRequestConstruction:
    def test_iter_requests_is_lazy(self, subset):
        producer = _CountingProducer(subset.records[:10])
        requests = iter_requests(create_model("gpt-4"), PromptStrategy.BP1, producer)
        assert producer.produced == 0
        first = next(iter(requests))
        assert producer.produced == 1
        assert first.record is subset.records[0]

    def test_iter_detection_requests_streams_the_default_corpus(self):
        """The experiments-level entry point: corpus generation, record
        featurisation and request construction all lazy, first request
        available without touching the rest of the corpus."""
        requests = iter_detection_requests(
            create_model("gpt-4"), PromptStrategy.BP1
        )
        first = next(iter(requests))
        assert first.record.name.startswith("DRB001-")
        assert first.scoring == "detection"
