"""CostModel behaviour: EWMA math, resilient persistence, engine feeding."""

import json

import pytest

from repro.engine import CostModel


class TestEwma:
    def test_first_observation_sets_estimate(self):
        model = CostModel(alpha=0.25)
        model.observe("gpt-4", "BP1", 0.04)
        assert model.estimate("gpt-4", "BP1") == pytest.approx(0.04)

    def test_later_observations_blend(self):
        model = CostModel(alpha=0.25)
        model.observe("gpt-4", "BP1", 0.04)
        model.observe("gpt-4", "BP1", 0.08)
        assert model.estimate("gpt-4", "BP1") == pytest.approx(0.25 * 0.08 + 0.75 * 0.04)

    def test_unobserved_group_returns_default(self):
        model = CostModel()
        assert model.estimate("gpt-4", "BP1") is None
        assert model.estimate("gpt-4", "BP1", default=1.5) == 1.5

    def test_groups_are_independent(self):
        model = CostModel()
        model.observe("gpt-4", "BP1", 0.01)
        model.observe("gpt-4", "ADVANCED", 0.09)
        model.observe("llama2-7b", "BP1", 0.5)
        assert len(model) == 3
        assert model.estimate("gpt-4", "BP1") == pytest.approx(0.01)
        assert model.estimate("llama2-7b", "BP1") == pytest.approx(0.5)

    def test_negative_observations_ignored(self):
        model = CostModel()
        model.observe("gpt-4", "BP1", -1.0)
        assert model.estimate("gpt-4", "BP1") is None

    def test_snapshot_sorted_slowest_first(self):
        model = CostModel()
        model.observe("fast", "BP1", 0.001)
        model.observe("slow", "BP1", 0.1)
        snapshot = model.snapshot()
        assert [g["model"] for g in snapshot] == ["slow", "fast"]
        assert snapshot[0]["observations"] == 1

    def test_rejects_bad_alpha(self):
        for alpha in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                CostModel(alpha=alpha)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "costmodel.json"
        model = CostModel(path=path)
        model.observe("gpt-4", "BP1", 0.04)
        model.observe("llama2-7b", "ADVANCED", 0.2)
        model.save()

        reloaded = CostModel(path=path)
        assert len(reloaded) == 2
        assert reloaded.estimate("gpt-4", "BP1") == pytest.approx(0.04)
        assert reloaded.estimate("llama2-7b", "ADVANCED") == pytest.approx(0.2)

    def test_save_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "cache-dir" / "costmodel.json"
        model = CostModel(path=path)
        model.observe("gpt-4", "BP1", 0.04)
        assert model.save() == path
        assert path.exists()

    def test_corrupt_store_loads_as_empty(self, tmp_path):
        path = tmp_path / "costmodel.json"
        path.write_text("{definitely not json", encoding="utf-8")
        model = CostModel(path=path)
        assert len(model) == 0

    def test_wrong_version_store_is_skipped(self, tmp_path):
        path = tmp_path / "costmodel.json"
        payload = {
            "format": "repro-cost-model",
            "version": 99,
            "groups": [{"model": "gpt-4", "strategy": "BP1", "seconds_per_request": 1.0}],
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert len(CostModel(path=path)) == 0

    def test_damaged_groups_are_skipped(self, tmp_path):
        path = tmp_path / "costmodel.json"
        payload = {
            "format": "repro-cost-model",
            "version": 1,
            "groups": [
                "not a dict",
                {"model": "gpt-4"},  # missing fields
                {"model": "gpt-4", "strategy": "BP1", "seconds_per_request": -2},
                {"model": "gpt-4", "strategy": "BP1", "seconds_per_request": 0.03},
            ],
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        model = CostModel(path=path)
        assert len(model) == 1
        assert model.estimate("gpt-4", "BP1") == pytest.approx(0.03)

    def test_missing_path_raises_on_save(self):
        with pytest.raises(ValueError):
            CostModel().save()

    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "costmodel.json"
        model = CostModel(path=path)
        model.observe("gpt-4", "BP1", 0.04)
        model.save()
        assert [f.name for f in tmp_path.iterdir()] == ["costmodel.json"]
