"""CostModel behaviour: EWMA math, resilient persistence, engine feeding."""

import json
import warnings

import pytest

from repro.engine import CostModel


class TestEwma:
    def test_first_observation_sets_estimate(self):
        model = CostModel(alpha=0.25)
        model.observe("gpt-4", "BP1", 0.04)
        assert model.estimate("gpt-4", "BP1") == pytest.approx(0.04)

    def test_later_observations_blend(self):
        model = CostModel(alpha=0.25)
        model.observe("gpt-4", "BP1", 0.04)
        model.observe("gpt-4", "BP1", 0.08)
        assert model.estimate("gpt-4", "BP1") == pytest.approx(0.25 * 0.08 + 0.75 * 0.04)

    def test_unobserved_group_returns_default(self):
        model = CostModel()
        assert model.estimate("gpt-4", "BP1") is None
        assert model.estimate("gpt-4", "BP1", default=1.5) == 1.5

    def test_groups_are_independent(self):
        model = CostModel()
        model.observe("gpt-4", "BP1", 0.01)
        model.observe("gpt-4", "ADVANCED", 0.09)
        model.observe("llama2-7b", "BP1", 0.5)
        assert len(model) == 3
        assert model.estimate("gpt-4", "BP1") == pytest.approx(0.01)
        assert model.estimate("llama2-7b", "BP1") == pytest.approx(0.5)

    def test_negative_observations_ignored(self):
        model = CostModel()
        model.observe("gpt-4", "BP1", -1.0)
        assert model.estimate("gpt-4", "BP1") is None

    def test_snapshot_sorted_slowest_first(self):
        model = CostModel()
        model.observe("fast", "BP1", 0.001)
        model.observe("slow", "BP1", 0.1)
        snapshot = model.snapshot()
        assert [g["model"] for g in snapshot] == ["slow", "fast"]
        assert snapshot[0]["observations"] == 1

    def test_rejects_bad_alpha(self):
        for alpha in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                CostModel(alpha=alpha)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "costmodel.json"
        model = CostModel(path=path)
        model.observe("gpt-4", "BP1", 0.04)
        model.observe("llama2-7b", "ADVANCED", 0.2)
        model.save()

        reloaded = CostModel(path=path)
        assert len(reloaded) == 2
        assert reloaded.estimate("gpt-4", "BP1") == pytest.approx(0.04)
        assert reloaded.estimate("llama2-7b", "ADVANCED") == pytest.approx(0.2)

    def test_save_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "cache-dir" / "costmodel.json"
        model = CostModel(path=path)
        model.observe("gpt-4", "BP1", 0.04)
        assert model.save() == path
        assert path.exists()

    def test_corrupt_store_loads_as_empty(self, tmp_path):
        path = tmp_path / "costmodel.json"
        path.write_text("{definitely not json", encoding="utf-8")
        model = CostModel(path=path)
        assert len(model) == 0

    def test_wrong_version_store_is_skipped(self, tmp_path):
        path = tmp_path / "costmodel.json"
        payload = {
            "format": "repro-cost-model",
            "version": 99,
            "groups": [{"model": "gpt-4", "strategy": "BP1", "seconds_per_request": 1.0}],
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert len(CostModel(path=path)) == 0

    def test_damaged_groups_are_skipped(self, tmp_path):
        path = tmp_path / "costmodel.json"
        payload = {
            "format": "repro-cost-model",
            "version": 1,
            "groups": [
                "not a dict",
                {"model": "gpt-4"},  # missing fields
                {"model": "gpt-4", "strategy": "BP1", "seconds_per_request": -2},
                {"model": "gpt-4", "strategy": "BP1", "seconds_per_request": 0.03},
            ],
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        model = CostModel(path=path)
        assert len(model) == 1
        assert model.estimate("gpt-4", "BP1") == pytest.approx(0.03)

    def test_missing_path_raises_on_save(self):
        with pytest.raises(ValueError):
            CostModel().save()

    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "costmodel.json"
        model = CostModel(path=path)
        model.observe("gpt-4", "BP1", 0.04)
        model.save()
        assert [f.name for f in tmp_path.iterdir()] == ["costmodel.json"]


class TestNonFiniteRejection:
    """NaN/inf observations must never poison the EWMA or the store.

    ``nan < 0`` is False, so before the isfinite guard a single NaN
    observation slid straight into the EWMA, broke identity_estimate's
    max(), snapshot()'s sort and LPT ordering — and persisted forever via
    costmodel.json.
    """

    def test_observe_rejects_nan_and_inf(self):
        model = CostModel()
        model.observe("gpt-4", "BP1", 0.05)
        for bad in (float("nan"), float("inf"), float("-inf")):
            model.observe("gpt-4", "BP1", bad)
        assert model.estimate("gpt-4", "BP1") == pytest.approx(0.05)
        assert model.identity_estimate("gpt-4") == pytest.approx(0.05)

    def test_nan_never_becomes_first_observation(self):
        model = CostModel()
        model.observe("gpt-4", "BP1", float("nan"))
        assert model.estimate("gpt-4", "BP1") is None
        assert len(model) == 0

    def test_load_rejects_poisoned_store(self, tmp_path):
        """Round-trip a store containing NaN: the bad group must not load."""
        path = tmp_path / "costmodel.json"
        model = CostModel()
        model.observe("gpt-4", "BP1", 0.05)
        model.observe("llama2-7b", "BP1", 0.2)
        model.save(path)
        # Poison the store the way a pre-guard writer would have: json
        # emits NaN/Infinity literals that json.loads happily reads back.
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["groups"][0]["seconds_per_request"] = float("nan")
        payload["groups"].append(
            {"model": "starchat-beta", "strategy": "BP1", "seconds_per_request": float("inf")}
        )
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert "NaN" in path.read_text(encoding="utf-8")

        loaded = CostModel(path=path)
        assert len(loaded) == 1  # only the finite group survives
        assert loaded.estimate("gpt-4", "BP1") == pytest.approx(0.05)
        assert loaded.estimate("llama2-7b", "BP1") is None
        assert loaded.estimate("starchat-beta", "BP1") is None
        # And the sanitised model saves a clean store.
        loaded.save(path)
        assert "NaN" not in path.read_text(encoding="utf-8")

    def test_load_rejects_non_finite_deviation(self, tmp_path):
        path = tmp_path / "costmodel.json"
        model = CostModel()
        model.observe("gpt-4", "BP1", 0.05)
        model.save(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["groups"][0]["seconds_dev"] = float("nan")
        path.write_text(json.dumps(payload), encoding="utf-8")
        loaded = CostModel(path=path)
        assert loaded.estimate("gpt-4", "BP1") == pytest.approx(0.05)
        assert loaded.quantile_estimate("gpt-4", "BP1", 0.95) == pytest.approx(0.05)


class TestQuantileEstimate:
    def test_degrades_to_mean_with_no_spread(self):
        model = CostModel()
        model.observe("gpt-4", "BP1", 0.05)
        assert model.quantile_estimate("gpt-4", "BP1", 0.95) == pytest.approx(0.05)

    def test_spread_pushes_quantile_above_mean(self):
        model = CostModel(alpha=0.5)
        for value in (0.01, 0.09, 0.01, 0.09, 0.01, 0.09):
            model.observe("gpt-4", "BP1", value)
        mean = model.estimate("gpt-4", "BP1")
        p95 = model.quantile_estimate("gpt-4", "BP1", 0.95)
        assert p95 > mean
        assert model.quantile_estimate("gpt-4", "BP1", 0.5) >= mean * 0.99

    def test_unobserved_returns_default(self):
        model = CostModel()
        assert model.quantile_estimate("gpt-4", "BP1") is None
        assert model.quantile_estimate("gpt-4", "BP1", default=1.0) == 1.0

    def test_rejects_bad_quantile(self):
        model = CostModel()
        with pytest.raises(ValueError):
            model.quantile_estimate("gpt-4", "BP1", quantile=1.0)

    def test_deviation_round_trips_through_store(self, tmp_path):
        path = tmp_path / "costmodel.json"
        model = CostModel(alpha=0.5)
        for value in (0.01, 0.09, 0.01, 0.09):
            model.observe("gpt-4", "BP1", value)
        model.save(path)
        loaded = CostModel(path=path)
        assert loaded.quantile_estimate("gpt-4", "BP1", 0.95) == pytest.approx(
            model.quantile_estimate("gpt-4", "BP1", 0.95)
        )


class TestSaveFaultTolerance:
    """Persistence I/O failure degrades to in-memory estimates (PR 9).

    The store is an optimisation: a full disk or read-only directory at
    the finish line warns once per instance and never aborts the run
    whose estimates it would have primed.
    """

    def test_truncated_store_loads_as_empty(self, tmp_path):
        path = tmp_path / "costmodel.json"
        model = CostModel(path=path)
        model.observe("gpt-4", "BP1", 0.04)
        model.save()
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # crash mid-copy / torn write
        fresh = CostModel()
        assert fresh.load(path) == 0
        assert fresh.estimate("gpt-4", "BP1", default=1.5) == 1.5

    def test_save_failure_warns_once_and_keeps_estimates(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the store's parent directory must go")
        model = CostModel(path=blocker / "costmodel.json")
        model.observe("gpt-4", "BP1", 0.04)
        with pytest.warns(RuntimeWarning, match="kept in memory"):
            assert model.save() == blocker / "costmodel.json"
        # The estimates survive in memory...
        assert model.estimate("gpt-4", "BP1") == pytest.approx(0.04)
        # ...and the second failing save is silent (one warning per instance).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            model.save()
        # A later save to a healthy path still persists everything.
        good = tmp_path / "good" / "costmodel.json"
        model.save(good)
        assert CostModel(path=good).estimate("gpt-4", "BP1") == pytest.approx(0.04)

    def test_failed_save_leaves_no_temp_files(self, tmp_path, monkeypatch):
        path = tmp_path / "costmodel.json"
        model = CostModel(path=path)
        model.observe("gpt-4", "BP1", 0.04)
        monkeypatch.setattr(
            "repro.engine.costmodel.os.replace",
            lambda *a, **k: (_ for _ in ()).throw(OSError(28, "No space left on device")),
        )
        with pytest.warns(RuntimeWarning, match="kept in memory"):
            model.save()
        assert list(tmp_path.iterdir()) == []  # the temp file was reaped
