"""Response-cache behaviour: accounting, LRU eviction, file persistence."""

from repro.engine import ResponseCache


class TestCacheAccounting:
    def test_miss_then_hit(self):
        cache = ResponseCache()
        assert cache.get("gpt-4", "prompt A") is None
        cache.put("gpt-4", "prompt A", "response A")
        assert cache.get("gpt-4", "prompt A") == "response A"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_identity_separates_models(self):
        cache = ResponseCache()
        cache.put("gpt-4", "same prompt", "gpt-4 says yes")
        cache.put("llama2-7b", "same prompt", "llama says no")
        assert cache.get("gpt-4", "same prompt") == "gpt-4 says yes"
        assert cache.get("llama2-7b", "same prompt") == "llama says no"

    def test_lru_evicts_oldest(self):
        cache = ResponseCache(max_entries=2)
        cache.put("m", "p1", "r1")
        cache.put("m", "p2", "r2")
        assert cache.get("m", "p1") == "r1"  # p1 is now most recently used
        cache.put("m", "p3", "r3")  # evicts p2
        assert cache.get("m", "p2") is None
        assert cache.get("m", "p1") == "r1"
        assert cache.get("m", "p3") == "r3"
        assert cache.stats.evictions == 1


class TestCachePersistence:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResponseCache(path=path)
        cache.put("gpt-4", "prompt A", "response A")
        cache.put("gpt-4", "prompt B", "response B")
        cache.save()

        reloaded = ResponseCache(path=path)
        assert len(reloaded) == 2
        assert reloaded.get("gpt-4", "prompt A") == "response A"
        assert reloaded.get("gpt-4", "prompt B") == "response B"

    def test_corrupt_file_loads_as_empty(self, tmp_path):
        """A damaged cache file must never crash a run — it is only a cache."""
        path = tmp_path / "cache.json"
        path.write_text("{not valid json", encoding="utf-8")
        cache = ResponseCache(path=path)
        assert len(cache) == 0
        path.write_text('{"version": 99, "entries": {"k": "v"}}', encoding="utf-8")
        assert ResponseCache(path=path).get("m", "p") is None

    def test_load_respects_capacity(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResponseCache(path=path)
        for i in range(10):
            cache.put("m", f"p{i}", f"r{i}")
        cache.save()

        small = ResponseCache(max_entries=3, path=path)
        assert len(small) == 3
