"""Response-cache behaviour: accounting, LRU eviction, segmented persistence."""

import json

import pytest

from repro.engine import CostModel, ResponseCache, cache_key


class TestCacheAccounting:
    def test_miss_then_hit(self):
        cache = ResponseCache()
        assert cache.get("gpt-4", "prompt A") is None
        cache.put("gpt-4", "prompt A", "response A")
        assert cache.get("gpt-4", "prompt A") == "response A"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_identity_separates_models(self):
        cache = ResponseCache()
        cache.put("gpt-4", "same prompt", "gpt-4 says yes")
        cache.put("llama2-7b", "same prompt", "llama says no")
        assert cache.get("gpt-4", "same prompt") == "gpt-4 says yes"
        assert cache.get("llama2-7b", "same prompt") == "llama says no"

    def test_lru_evicts_oldest(self):
        cache = ResponseCache(max_entries=2)
        cache.put("m", "p1", "r1")
        cache.put("m", "p2", "r2")
        assert cache.get("m", "p1") == "r1"  # p1 is now most recently used
        cache.put("m", "p3", "r3")  # evicts p2
        assert cache.get("m", "p2") is None
        assert cache.get("m", "p1") == "r1"
        assert cache.get("m", "p3") == "r3"
        assert cache.stats.evictions == 1


class TestCostAwareEviction:
    """With ``cost_aware_eviction`` the LRU weighs entries by how expensive
    their model is to call again: among the oldest entries, the cheapest to
    regenerate goes first, so slow models' responses survive longest."""

    @staticmethod
    def _cost_model(**seconds_per_model):
        cost_model = CostModel()
        for identity, seconds in seconds_per_model.items():
            cost_model.observe(identity, "BP1", seconds)
        return cost_model

    def test_cheap_model_evicted_before_slow_model(self):
        cost_model = self._cost_model(fast=0.001, slow=0.5)
        cache = ResponseCache(
            max_entries=2, cost_aware_eviction=True, cost_model=cost_model
        )
        cache.put("slow", "p-slow", "r-slow")  # oldest, but expensive
        cache.put("fast", "p-fast", "r-fast")
        cache.put("fast", "p-fast2", "r-fast2")  # overflow
        assert cache.get("slow", "p-slow") == "r-slow"  # survived despite age
        assert cache.get("fast", "p-fast") is None  # cheap entry went first
        assert cache.stats.evictions == 1

    def test_equal_costs_degrade_to_plain_lru(self):
        cost_model = self._cost_model(a=0.01, b=0.01)
        cache = ResponseCache(
            max_entries=2, cost_aware_eviction=True, cost_model=cost_model
        )
        cache.put("a", "p1", "r1")
        cache.put("b", "p2", "r2")
        cache.put("a", "p3", "r3")
        assert cache.get("a", "p1") is None  # oldest of the equal-cost pair
        assert cache.get("b", "p2") == "r2"

    def test_unknown_identity_counts_as_free(self):
        """Entries the cost model never saw (or loaded from disk, where the
        identity is unrecoverable from the hashed key) evict first."""
        cost_model = self._cost_model(known=0.2)
        cache = ResponseCache(
            max_entries=2, cost_aware_eviction=True, cost_model=cost_model
        )
        cache.put("known", "p1", "r1")
        cache.put("mystery", "p2", "r2")
        cache.put("known", "p3", "r3")
        assert cache.get("mystery", "p2") is None
        assert cache.get("known", "p1") == "r1"

    def test_flag_off_keeps_plain_lru(self):
        cost_model = self._cost_model(slow=10.0)
        cache = ResponseCache(max_entries=2, cost_model=cost_model)
        cache.put("slow", "p1", "r1")
        cache.put("fast", "p2", "r2")
        cache.put("fast", "p3", "r3")
        assert cache.get("slow", "p1") is None  # pure LRU: oldest out

    def test_no_cost_model_degrades_to_plain_lru(self):
        cache = ResponseCache(max_entries=2, cost_aware_eviction=True)
        cache.put("m", "p1", "r1")
        cache.put("m", "p2", "r2")
        cache.put("m", "p3", "r3")
        assert cache.get("m", "p1") is None

    def test_eviction_sample_bounds_the_scan(self):
        """Only the oldest ``eviction_sample`` entries compete: a cheap entry
        younger than the sample window is not considered."""
        cost_model = self._cost_model(cheap=0.001, slow=1.0)
        cache = ResponseCache(
            max_entries=3,
            cost_aware_eviction=True,
            cost_model=cost_model,
            eviction_sample=2,
        )
        cache.put("slow", "p1", "r1")
        cache.put("slow", "p2", "r2")
        cache.put("cheap", "p3", "r3")  # cheapest, but outside the window
        cache.put("slow", "p4", "r4")
        # Sample = {p1, p2}, both slow: LRU order decides, p1 goes.
        assert cache.get("slow", "p1") is None
        assert cache.get("cheap", "p3") == "r3"

    def test_put_key_with_identity_participates_in_costing(self):
        """The engine's distributed merge path attaches identities too."""
        cost_model = self._cost_model(fast=0.001, slow=0.5)
        cache = ResponseCache(
            max_entries=2, cost_aware_eviction=True, cost_model=cost_model
        )
        cache.put_key(cache_key("slow", "p1"), "r1", identity="slow")
        cache.put_key(cache_key("fast", "p2"), "r2", identity="fast")
        cache.put_key(cache_key("slow", "p3"), "r3", identity="slow")
        assert cache.get("fast", "p2") is None
        assert cache.get("slow", "p1") == "r1"

    def test_identity_estimate_uses_worst_strategy(self):
        cost_model = CostModel()
        cost_model.observe("m", "BP1", 0.01)
        cost_model.observe("m", "ADVANCED", 0.2)
        assert cost_model.identity_estimate("m") == pytest.approx(0.2)
        assert cost_model.identity_estimate("never-seen") is None
        assert cost_model.identity_estimate("never-seen", default=0.0) == 0.0

    def test_rejects_bad_eviction_sample(self):
        with pytest.raises(ValueError):
            ResponseCache(eviction_sample=0)

    def test_identities_survive_save_and_reload(self, tmp_path):
        """Identities persist with the segments, so a reloaded cache keeps
        protecting the slow model's entries — the persistent-cache case the
        feature exists for."""
        path = tmp_path / "cache"
        writer = ResponseCache(path=path)
        writer.put("slow", "p-slow", "r-slow")
        writer.put("fast", "p-fast", "r-fast")
        writer.save()

        cost_model = self._cost_model(fast=0.001, slow=0.5)
        reloaded = ResponseCache(
            max_entries=2, path=path, cost_aware_eviction=True, cost_model=cost_model
        )
        reloaded.put("fast", "p-fast2", "r-fast2")  # overflow after reload
        assert reloaded.get("slow", "p-slow") == "r-slow"  # cost weight kept
        assert reloaded.get("fast", "p-fast") is None

    def test_identities_survive_compaction(self, tmp_path):
        path = tmp_path / "cache"
        cache = ResponseCache(path=path)
        cache.put("slow", "p1", "r1")
        cache.save()
        cache.put("slow", "p2", "r2")
        cache.save()
        cache.compact()

        cost_model = self._cost_model(cheap=0.001, slow=0.5)
        reloaded = ResponseCache(
            max_entries=2, path=path, cost_aware_eviction=True, cost_model=cost_model
        )
        reloaded.put("cheap", "p3", "r3")
        assert reloaded.get("slow", "p1") == "r1"
        assert reloaded.get("cheap", "p3") is None

    def test_pre_identity_segments_still_load(self, tmp_path):
        """Stores written before the identity field existed load fine; their
        entries simply carry no cost weight."""
        import json as json_module

        path = tmp_path / "cache"
        path.mkdir()
        lines = [
            json_module.dumps({"format": "repro-response-cache", "version": 2}),
            json_module.dumps({"k": cache_key("m", "p"), "r": "r-old"}),
        ]
        (path / "segment-000001.jsonl").write_text("\n".join(lines), encoding="utf-8")
        cache = ResponseCache(path=path)
        assert cache.get("m", "p") == "r-old"


class TestCachePersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cache"
        cache = ResponseCache(path=path)
        cache.put("gpt-4", "prompt A", "response A")
        cache.put("gpt-4", "prompt B", "response B")
        cache.save()

        reloaded = ResponseCache(path=path)
        assert len(reloaded) == 2
        assert reloaded.get("gpt-4", "prompt A") == "response A"
        assert reloaded.get("gpt-4", "prompt B") == "response B"

    def test_corrupt_file_loads_as_empty(self, tmp_path):
        """A damaged cache file must never crash a run — it is only a cache."""
        path = tmp_path / "cache.json"
        path.write_text("{not valid json", encoding="utf-8")
        cache = ResponseCache(path=path)
        assert len(cache) == 0
        path.write_text('{"version": 99, "entries": {"k": "v"}}', encoding="utf-8")
        assert ResponseCache(path=path).get("m", "p") is None

    def test_load_respects_capacity(self, tmp_path):
        path = tmp_path / "cache"
        cache = ResponseCache(path=path)
        for i in range(10):
            cache.put("m", f"p{i}", f"r{i}")
        cache.save()

        small = ResponseCache(max_entries=3, path=path)
        assert len(small) == 3


class TestSegmentedPersistence:
    """The on-disk store is a directory of append-only JSONL segments."""

    def test_incremental_save_appends_segments_only(self, tmp_path):
        path = tmp_path / "cache"
        cache = ResponseCache(path=path)
        for i in range(4):
            cache.put("m", f"p{i}", f"r{i}")
        assert cache.pending_count == 4
        cache.save()
        assert cache.pending_count == 0
        first = cache.segment_files()
        assert len(first) == 1
        before = first[0].read_bytes()

        # A second save with nothing new writes nothing at all.
        cache.save()
        assert cache.segment_files() == first
        assert first[0].read_bytes() == before

        # New entries land in a NEW segment; old segments are untouched.
        cache.put("m", "p-new", "r-new")
        cache.save()
        segments = cache.segment_files()
        assert len(segments) == 2
        assert first[0].read_bytes() == before

        reloaded = ResponseCache(path=path)
        assert len(reloaded) == 5
        assert reloaded.get("m", "p-new") == "r-new"

    def test_segments_are_size_bounded(self, tmp_path):
        path = tmp_path / "cache"
        cache = ResponseCache(path=path, segment_max_entries=2)
        for i in range(5):
            cache.put("m", f"p{i}", f"r{i}")
        cache.save()
        assert len(cache.segment_files()) == 3  # 2 + 2 + 1
        assert len(ResponseCache(path=path)) == 5

    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "cache"
        cache = ResponseCache(path=path)
        cache.put("m", "p", "r")
        cache.save()
        expected = {"manifest.json"}  # the writer's segment-set attestation
        leftovers = [
            f
            for f in path.iterdir()
            if not f.name.startswith("segment-") and f.name not in expected
        ]
        assert leftovers == []

    def test_truncated_segment_loads_partially(self, tmp_path):
        """An interrupted write loses at most the torn tail line."""
        path = tmp_path / "cache"
        cache = ResponseCache(path=path)
        for i in range(3):
            cache.put("m", f"p{i}", f"r{i}")
        cache.save()
        segment = cache.segment_files()[0]
        text = segment.read_text(encoding="utf-8")
        segment.write_text(text[: len(text) - 5], encoding="utf-8")  # tear the last entry

        reloaded = ResponseCache(path=path)
        assert len(reloaded) == 2
        assert reloaded.get("m", "p0") == "r0"
        assert reloaded.get("m", "p1") == "r1"

    def test_garbage_segment_loads_as_empty(self, tmp_path):
        path = tmp_path / "cache"
        path.mkdir()
        (path / "segment-000001.jsonl").write_text("not a header\nnot json", encoding="utf-8")
        assert len(ResponseCache(path=path)) == 0

    def test_wrong_version_segment_is_skipped(self, tmp_path):
        path = tmp_path / "cache"
        path.mkdir()
        lines = [
            json.dumps({"format": "repro-response-cache", "version": 99}),
            json.dumps({"k": "some-key", "r": "some-response"}),
        ]
        (path / "segment-000001.jsonl").write_text("\n".join(lines), encoding="utf-8")
        assert len(ResponseCache(path=path)) == 0

    def test_legacy_v1_file_loads_and_migrates(self, tmp_path):
        """Old whole-file JSON caches still load; saving converts in place."""
        path = tmp_path / "cache.json"
        key = cache_key("gpt-4", "prompt A")
        path.write_text(
            json.dumps({"version": 1, "entries": {key: "response A"}}), encoding="utf-8"
        )
        cache = ResponseCache(path=path)
        assert cache.get("gpt-4", "prompt A") == "response A"

        cache.put("gpt-4", "prompt B", "response B")
        cache.save()
        assert path.is_dir()  # migrated to a segment directory
        reloaded = ResponseCache(path=path)
        assert len(reloaded) == 2
        assert reloaded.get("gpt-4", "prompt A") == "response A"
        assert reloaded.get("gpt-4", "prompt B") == "response B"

    def test_compact_folds_segments(self, tmp_path):
        path = tmp_path / "cache"
        cache = ResponseCache(path=path, segment_max_entries=2)
        for i in range(6):
            cache.put("m", f"p{i}", f"r{i}")
            cache.save()  # one tiny segment per save
        assert len(cache.segment_files()) == 6
        cache.compact()
        assert len(cache.segment_files()) == 3  # ceil(6 / 2)
        reloaded = ResponseCache(path=path)
        assert len(reloaded) == 6
        assert reloaded.get("m", "p5") == "r5"

    def test_compact_preserves_entries_evicted_from_memory(self, tmp_path):
        """Compaction must never shrink the persistent store: disk entries
        pushed out of the bounded in-memory LRU survive the rewrite."""
        path = tmp_path / "cache"
        big = ResponseCache(path=path)
        for i in range(10):
            big.put("m", f"p{i}", f"r{i}")
        big.save()

        small = ResponseCache(max_entries=3, path=path)
        assert len(small) == 3  # memory holds only the newest three
        small.compact()
        reloaded = ResponseCache(path=path)
        assert len(reloaded) == 10
        assert reloaded.get("m", "p0") == "r0"

    def test_legacy_migration_preserves_entries_beyond_capacity(self, tmp_path):
        """Migration, like compaction, must never shrink the store: entries
        the bounded LRU could not hold still reach the segment directory."""
        path = tmp_path / "cache.json"
        entries = {cache_key("m", f"p{i}"): f"r{i}" for i in range(10)}
        path.write_text(json.dumps({"version": 1, "entries": entries}), encoding="utf-8")
        small = ResponseCache(max_entries=3, path=path)
        assert len(small) == 3
        small.save()
        assert path.is_dir()
        assert len(ResponseCache(path=path)) == 10

    def test_snapshot_save_to_foreign_path_replaces_not_appends(self, tmp_path):
        backup = tmp_path / "backup"
        cache = ResponseCache()
        cache.put("m", "p0", "r0")
        cache.put("m", "p1", "r1")
        cache.save(backup)
        cache.save(backup)  # a second snapshot must not duplicate entries
        lines = sum(
            len(seg.read_text(encoding="utf-8").splitlines()) - 1  # minus header
            for seg in cache.segment_files(backup)
        )
        assert lines == 2
        assert len(ResponseCache(path=backup)) == 2

    def test_legacy_migration_leaves_no_temp_dirs(self, tmp_path):
        path = tmp_path / "cache.json"
        key = cache_key("m", "p")
        path.write_text(json.dumps({"version": 1, "entries": {key: "r"}}), encoding="utf-8")
        cache = ResponseCache(path=path)
        cache.save()
        assert path.is_dir()
        leftovers = [f for f in tmp_path.iterdir() if f != path]
        assert leftovers == []

    def test_later_segments_win_on_duplicate_keys(self, tmp_path):
        path = tmp_path / "cache"
        cache = ResponseCache(path=path)
        cache.put("m", "p", "old")
        cache.save()
        cache.put("m", "p", "new")  # re-inserted: appended again on next save
        cache.save()
        assert ResponseCache(path=path).get("m", "p") == "new"

    def test_snapshot_and_put_key_round_trip(self):
        """The distributed executor path reads snapshots and merges raw keys."""
        cache = ResponseCache()
        cache.put("m", "p", "r")
        snapshot = cache.snapshot_entries()
        assert snapshot == {cache_key("m", "p"): "r"}
        other = ResponseCache()
        for key, response in snapshot.items():
            other.put_key(key, response)
        assert other.get("m", "p") == "r"


class TestAutoCompact:
    """Saves that push the dead/duplicate ratio past the threshold fold the
    store automatically; compact() stays available for manual use."""

    @staticmethod
    def _churn(cache, rounds, n_keys=4, start=0):
        """Re-insert the same keys with fresh values, saving each round."""
        for round_index in range(start, start + rounds):
            for i in range(n_keys):
                cache.put("m", f"p{i}", f"r{i}@{round_index}")
            cache.save()

    def test_dead_ratio_tracks_duplicates(self, tmp_path):
        cache = ResponseCache(path=tmp_path / "cache", auto_compact_ratio=None)
        self._churn(cache, 1)
        assert cache.dead_entry_ratio == 0.0
        self._churn(cache, 1, start=1)  # 8 lines on disk, 4 live
        assert cache.dead_entry_ratio == pytest.approx(0.5)

    def test_dead_ratio_recomputed_on_load(self, tmp_path):
        path = tmp_path / "cache"
        self._churn(ResponseCache(path=path, auto_compact_ratio=None), 2)
        reloaded = ResponseCache(path=path, auto_compact_ratio=None)
        assert reloaded.dead_entry_ratio == pytest.approx(0.5)

    def test_save_triggers_auto_compact_past_threshold(self, tmp_path):
        path = tmp_path / "cache"
        cache = ResponseCache(
            path=path, auto_compact_ratio=0.5, auto_compact_min_segments=3
        )
        self._churn(cache, 2)  # ratio exactly 0.5: not *past* the threshold
        assert cache.stats.compactions == 0
        assert len(cache.segment_files()) == 2

        self._churn(cache, 1, start=2)  # 12 lines, 4 live -> ratio 2/3, 3 segments
        assert cache.stats.compactions == 1
        assert len(cache.segment_files()) == 1  # folded back down
        assert cache.dead_entry_ratio == 0.0
        reloaded = ResponseCache(path=path)
        assert len(reloaded) == 4
        assert reloaded.get("m", "p0") == "r0@2"  # newest values survive

    def test_min_segments_guard_defers_compaction(self, tmp_path):
        cache = ResponseCache(
            path=tmp_path / "cache", auto_compact_ratio=0.1, auto_compact_min_segments=5
        )
        self._churn(cache, 4)  # ratio 0.75 but only 4 segments
        assert cache.stats.compactions == 0
        self._churn(cache, 1, start=4)
        assert cache.stats.compactions == 1

    def test_none_ratio_disables_auto_compact(self, tmp_path):
        cache = ResponseCache(path=tmp_path / "cache", auto_compact_ratio=None)
        self._churn(cache, 6)
        assert cache.stats.compactions == 0
        assert len(cache.segment_files()) == 6
        # Manual compaction still works and is counted.
        cache.compact()
        assert cache.stats.compactions == 1
        assert len(cache.segment_files()) == 1

    def test_rejects_bad_ratio(self):
        for ratio in (0.0, -0.2, 1.5):
            with pytest.raises(ValueError):
                ResponseCache(auto_compact_ratio=ratio)

    def test_incremental_saves_after_auto_compact_still_load(self, tmp_path):
        path = tmp_path / "cache"
        cache = ResponseCache(path=path, auto_compact_ratio=0.5, auto_compact_min_segments=2)
        self._churn(cache, 3)
        assert cache.stats.compactions >= 1
        cache.put("m", "p-new", "r-new")
        cache.save()
        reloaded = ResponseCache(path=path)
        assert reloaded.get("m", "p-new") == "r-new"
        assert len(reloaded) == 5
