"""Dynamic dispatch, cost-model scheduling and broadcast-once cache shipping.

Three contracts are pinned here:

* the executors' completion-order contract — ``submit`` /
  ``map_unordered`` semantics, including cancellation and close behaviour;
* the engine's dispatch equivalence — dynamic completion-order merging,
  LPT ordering and adaptive chunk sizing never change results, only wall
  time;
* the process-backend snapshot broadcast — the cache crosses the parent
  boundary O(entries) per **run**, not per chunk.
"""

import threading
import time

import pytest

import repro.engine.core as engine_core
import repro.engine.snapshot as engine_snapshot
from repro.engine import (
    AsyncExecutor,
    CostModel,
    ExecutionEngine,
    ProcessPoolExecutor,
    ResponseCache,
    SerialExecutor,
    ThreadPoolExecutor,
    build_requests,
)
from repro.eval.experiments import default_subset
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy


@pytest.fixture(scope="module")
def records():
    return default_subset().records[:16]


def _square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


class TestMapUnordered:
    @pytest.mark.parametrize(
        "make_executor",
        [
            pytest.param(lambda: SerialExecutor(), id="serial"),
            pytest.param(lambda: ThreadPoolExecutor(jobs=4), id="thread"),
            pytest.param(lambda: ProcessPoolExecutor(jobs=2), id="process"),
            pytest.param(lambda: AsyncExecutor(jobs=4), id="async"),
        ],
    )
    def test_yields_every_index_exactly_once(self, make_executor):
        items = list(range(20))
        with make_executor() as executor:
            pairs = list(executor.map_unordered(_square, items))
        assert sorted(index for index, _ in pairs) == items
        assert all(result == index * index for index, result in pairs)

    def test_empty_items(self):
        with ThreadPoolExecutor(jobs=2) as pool:
            assert list(pool.map_unordered(_square, [])) == []

    def test_thread_pool_yields_in_completion_order(self):
        """A fast item submitted after a slow one comes back first."""

        def sleepy(seconds):
            time.sleep(seconds)
            return seconds

        with ThreadPoolExecutor(jobs=2) as pool:
            first_index, _ = next(pool.map_unordered(sleepy, [0.2, 0.0]))
        assert first_index == 1

    def test_serial_streams_lazily_in_order(self):
        calls = []

        def record(x):
            calls.append(x)
            return x

        executor = SerialExecutor()
        stream = executor.map_unordered(record, [1, 2, 3])
        assert calls == []  # nothing runs until the stream is consumed
        assert next(stream) == (0, 1)
        assert calls == [1]
        stream.close()
        assert calls == [1]  # abandoning the stream stops execution

    def test_exception_propagates_and_cancels_rest(self):
        calls = []

        def boom(x):
            calls.append(x)
            time.sleep(0.02)
            if x == 0:
                raise RuntimeError("boom")
            return x

        with ThreadPoolExecutor(jobs=1) as pool:
            with pytest.raises(RuntimeError, match="boom"):
                list(pool.map_unordered(boom, list(range(10))))
        # The single worker ran the failing item (and possibly a successor
        # that started before the cancellation landed); queued futures were
        # cancelled instead of run.
        assert len(calls) < 10

    def test_abandoning_iterator_cancels_pending(self):
        calls = []

        def slow(x):
            calls.append(x)
            time.sleep(0.02)
            return x

        with ThreadPoolExecutor(jobs=1) as pool:
            stream = pool.map_unordered(slow, list(range(10)))
            next(stream)
            stream.close()  # consumer walks away; queued futures cancelled
        assert len(calls) < 10


class TestSubmit:
    def test_submit_returns_future_with_result(self):
        for executor in (SerialExecutor(), ThreadPoolExecutor(jobs=2), AsyncExecutor(jobs=2)):
            with executor:
                assert executor.submit(_square, 7).result(timeout=10) == 49

    def test_process_submit(self):
        with ProcessPoolExecutor(jobs=2) as pool:
            assert pool.submit(_square, 7).result(timeout=30) == 49

    def test_submit_propagates_exception_through_future(self):
        def boom(x):
            raise ValueError("bad item")

        for executor in (SerialExecutor(), ThreadPoolExecutor(jobs=2), AsyncExecutor(jobs=2)):
            with executor:
                with pytest.raises(ValueError, match="bad item"):
                    executor.submit(boom, 1).result(timeout=10)

    def test_closed_executor_rejects_submit_and_map_unordered(self):
        for executor in (
            SerialExecutor(),
            ThreadPoolExecutor(jobs=2),
            ProcessPoolExecutor(jobs=2),
            AsyncExecutor(jobs=2),
        ):
            executor.close()
            with pytest.raises(RuntimeError):
                executor.submit(_square, 1)
            with pytest.raises(RuntimeError):
                executor.map_unordered(_square, [1, 2])

    def test_async_submit_awaits_coroutine_functions(self):
        async def acc(x):
            return x + 1

        with AsyncExecutor(jobs=2) as pool:
            assert pool.submit(acc, 41).result(timeout=10) == 42


def _pending_loop_tasks(pool) -> int:
    """How many tasks (besides the probe itself) are alive on the pool's loop."""
    import asyncio

    async def probe(_item):
        return len([t for t in asyncio.all_tasks() if t is not asyncio.current_task()])

    return pool.submit(probe, None).result(timeout=10)


def _assert_no_leaked_tasks(pool, timeout_s: float = 2.0) -> None:
    """Cancelled tasks need a few loop iterations to unwind; poll briefly."""
    deadline = time.monotonic() + timeout_s
    while True:
        pending = _pending_loop_tasks(pool)
        if pending == 0:
            return
        if time.monotonic() > deadline:
            raise AssertionError(f"{pending} tasks leaked on the executor loop")
        time.sleep(0.02)


class TestAsyncCancellation:
    """The async-native contract: abandoning a stream or a raising coroutine
    cancels queued *and* in-flight coroutines — no tasks leak onto the loop,
    and the loop stays reusable for the next run."""

    def test_abandoned_iterator_cancels_queued_and_inflight(self):
        import asyncio

        started = []

        async def item(x):
            if x == 0:
                return x  # the one fast item the consumer waits for
            started.append(x)
            await asyncio.sleep(30)  # would hang the test if not cancelled
            return x

        with AsyncExecutor(jobs=2, max_inflight=2) as pool:
            stream = pool.map_unordered(item, list(range(10)))
            index, result = next(stream)
            assert (index, result) == (0, 0)
            stream.close()  # consumer walks away
            _assert_no_leaked_tasks(pool)
            # Queued coroutines beyond max_inflight never ran at all.
            assert len(started) < 10

    def test_raising_coroutine_cancels_rest_and_loop_stays_usable(self):
        import asyncio

        async def boom(x):
            if x == 0:
                raise RuntimeError("boom")
            await asyncio.sleep(30)
            return x

        with AsyncExecutor(jobs=2, max_inflight=4) as pool:
            with pytest.raises(RuntimeError, match="boom"):
                list(pool.map_unordered(boom, list(range(8))))
            _assert_no_leaked_tasks(pool)

            # The loop is reusable: a fresh stream on the same executor
            # completes normally after the failed one.
            async def fine(x):
                await asyncio.sleep(0)
                return x * 2

            pairs = sorted(pool.map_unordered(fine, [1, 2, 3]))
            assert pairs == [(0, 2), (1, 4), (2, 6)]

    def test_ordered_map_cancels_siblings_on_error(self):
        """Blocking map: one raising coroutine must cancel the rest — an
        aborted ordered-dispatch run cannot keep calling models behind it."""
        import asyncio

        completed = []

        async def item(x):
            if x == 0:
                raise RuntimeError("boom")
            await asyncio.sleep(0.2)
            completed.append(x)
            return x

        with AsyncExecutor(jobs=4, max_inflight=8) as pool:
            with pytest.raises(RuntimeError, match="boom"):
                pool.map(item, list(range(8)))
            _assert_no_leaked_tasks(pool)
        assert completed == []  # siblings were cancelled, not run to completion

    def test_cancelled_semaphore_waiters_release_their_slot(self):
        """Coroutines cancelled while waiting for an inflight slot must not
        poison the semaphore for later submissions."""
        import asyncio

        async def slow(x):
            await asyncio.sleep(30)
            return x

        with AsyncExecutor(jobs=2, max_inflight=1) as pool:
            stream = pool.map_unordered(slow, list(range(5)))
            stream.close()  # nothing consumed: everything cancels
            _assert_no_leaked_tasks(pool)

            async def quick(x):
                return x + 1

            # max_inflight=1: if a cancelled waiter leaked the slot this
            # submission would never acquire the semaphore.
            assert pool.submit(quick, 1).result(timeout=10) == 2

    def test_engine_async_run_after_failed_run_is_clean(self, records):
        """A raising model aborts the run; the same engine then completes a
        healthy run with bit-identical results to a fresh serial engine."""

        class FlakyModel:
            name = "flaky"
            cache_identity = "flaky"

            def generate(self, prompt):
                raise RuntimeError("model down")

            def generate_batch(self, prompts):
                raise RuntimeError("model down")

            async def generate_batch_async(self, prompts):
                raise RuntimeError("model down")

        from repro.engine.requests import DetectionRequest

        flaky = FlakyModel()
        flaky_requests = [
            DetectionRequest(model=flaky, strategy=PromptStrategy.BP1, record=r)
            for r in records[:6]
        ]
        reference = ExecutionEngine().run(
            build_requests(create_model("gpt-4"), PromptStrategy.BP1, records)
        )
        with ExecutionEngine(
            jobs=4, executor_kind="async", max_inflight=8, batch_size=2
        ) as engine:
            with pytest.raises(RuntimeError, match="model down"):
                engine.run(flaky_requests)
            _assert_no_leaked_tasks(engine.executor)
            store = engine.run(
                build_requests(create_model("gpt-4"), PromptStrategy.BP1, records)
            )
        assert [(r.record_name, r.response) for r in store] == [
            (r.record_name, r.response) for r in reference
        ]


class _MapOnlyExecutor:
    """An executor predating the completion-order contract (map only)."""

    name = "map-only"
    distributed = False

    def map(self, fn, items):
        return [fn(item) for item in items]


class TestEngineDispatch:
    def test_rejects_unknown_dispatch(self):
        with pytest.raises(ValueError):
            ExecutionEngine(dispatch="eventually")

    @pytest.mark.parametrize("config_id,config", [
        ("thread", dict(jobs=4, batch_size=5)),
        ("async", dict(jobs=4, executor_kind="async", batch_size=5)),
        ("process", dict(jobs=2, executor_kind="process", batch_size=5)),
    ])
    def test_dynamic_matches_ordered_responses(self, records, config_id, config):
        """Same store, response for response, under both dispatch modes."""
        model_name = "gpt-4"
        with ExecutionEngine(dispatch="ordered", lpt=False, **config) as ordered_engine:
            ordered = ordered_engine.run(
                build_requests(create_model(model_name), PromptStrategy.BP1, records)
            )
        with ExecutionEngine(dispatch="dynamic", **config) as dynamic_engine:
            dynamic = dynamic_engine.run(
                build_requests(create_model(model_name), PromptStrategy.BP1, records)
            )
        assert [(r.record_name, r.response) for r in dynamic] == [
            (r.record_name, r.response) for r in ordered
        ]

    def test_lpt_and_adaptive_keep_results_after_warmup(self, records):
        """A warmed cost model reorders and resizes chunks; results hold."""
        cost_model = CostModel()
        reference = None
        with ExecutionEngine(
            jobs=4, batch_size=4, cost_model=cost_model, cache=ResponseCache()
        ) as engine:
            for _ in range(3):  # run 1 cold, runs 2-3 LPT + adaptive + cached
                requests = []
                for name in ("gpt-4", "llama2-7b"):
                    requests += build_requests(
                        create_model(name), PromptStrategy.BP1, records
                    )
                    requests += build_requests(
                        create_model(name), PromptStrategy.ADVANCED, records, scoring="pairs"
                    )
                store = engine.run(requests)
                fingerprint = [(r.model, r.strategy, r.record_name, r.response) for r in store]
                if reference is None:
                    reference = fingerprint
                assert fingerprint == reference
        assert len(cost_model) == 4  # every (model, strategy) group observed

    def test_dynamic_falls_back_to_map_without_map_unordered(self, records):
        engine = ExecutionEngine(executor=_MapOnlyExecutor(), dispatch="dynamic")
        counts = engine.run_counts(
            build_requests(create_model("gpt-4"), PromptStrategy.BP1, records)
        )
        assert counts.total == len(records)

    def test_results_preserve_request_order_under_dynamic(self, records):
        model = create_model("gpt-4")
        with ExecutionEngine(jobs=4, batch_size=3, dispatch="dynamic") as engine:
            store = engine.run(build_requests(model, PromptStrategy.BP1, records))
        assert [r.record_name for r in store] == [r.name for r in records]

    def test_group_telemetry_recorded(self, records):
        engine = ExecutionEngine(cache=ResponseCache())
        engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
        groups = engine.telemetry.group_snapshot()
        assert len(groups) == 1
        group = groups[0]
        assert group["model"] == "gpt-4"
        assert group["strategy"] == "BP1"
        assert group["requests"] == len(records)
        assert group["model_calls"] == len(records)
        assert group["cache_hit_rate"] == 0.0
        # A warm rerun flips the hit rate without new model calls.
        engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
        group = engine.telemetry.group_snapshot()[0]
        assert group["requests"] == 2 * len(records)
        assert group["model_calls"] == len(records)
        assert group["cache_hit_rate"] == 0.5
        stats = engine.telemetry.format_group_stats(top_k=3)
        assert "gpt-4/BP1" in stats and "slowest groups" in stats


class TestCostModelScheduling:
    def _requests(self, records, fast, slow):
        return build_requests(fast, PromptStrategy.BP1, records) + build_requests(
            slow, PromptStrategy.BP1, records
        )

    def test_lpt_orders_slow_group_first(self, records):
        fast = create_model("gpt-4")
        slow = create_model("llama2-7b")
        cost_model = CostModel()
        cost_model.observe(fast.cache_identity, "BP1", 0.001)
        cost_model.observe(slow.cache_identity, "BP1", 0.1)
        engine = ExecutionEngine(batch_size=4, cost_model=cost_model, adaptive_batching=False)
        chunks, _shed = engine._chunk(list(enumerate(self._requests(records[:8], fast, slow))))
        # Plan order puts the fast model first; LPT must flip that.
        assert chunks[0][0][1].model is slow
        assert chunks[-1][0][1].model is fast

    def test_adaptive_sizing_shrinks_slow_chunks(self, records):
        fast = create_model("gpt-4")
        slow = create_model("llama2-7b")
        cost_model = CostModel()
        cost_model.observe(fast.cache_identity, "BP1", 0.001)
        cost_model.observe(slow.cache_identity, "BP1", 0.1)
        engine = ExecutionEngine(batch_size=4, cost_model=cost_model, lpt=False)
        chunks, _shed = engine._chunk(list(enumerate(self._requests(records[:8], fast, slow))))
        slow_sizes = {len(c) for c in chunks if c[0][1].model is slow}
        fast_sizes = {len(c) for c in chunks if c[0][1].model is fast}
        assert max(slow_sizes) < 4  # slow group split finer than batch_size
        assert max(fast_sizes) > 4  # fast group batched coarser

    def test_cold_cost_model_keeps_plan_order_and_uniform_chunks(self, records):
        fast = create_model("gpt-4")
        slow = create_model("llama2-7b")
        engine = ExecutionEngine(batch_size=4)
        chunks, _shed = engine._chunk(list(enumerate(self._requests(records[:8], fast, slow))))
        assert [len(c) for c in chunks] == [4, 4, 4, 4]
        assert chunks[0][0][1].model is fast  # plan order untouched


class _RecordingDistributedExecutor(SerialExecutor):
    """In-process stand-in for the process pool: picklable-payload contract
    without the fork, so payloads and worker globals stay inspectable."""

    name = "recording-distributed"
    distributed = True

    def __init__(self):
        super().__init__()
        self.payloads = []

    def map(self, fn, items):
        self.payloads.extend(items)
        return super().map(fn, items)

    def map_unordered(self, fn, items):
        self.payloads.extend(items)
        return super().map_unordered(fn, items)


class TestBroadcastOnceSnapshot:
    @pytest.fixture()
    def publish_counter(self, monkeypatch):
        """Record parent-side snapshot publications (the PublishedSnapshot handles)."""
        published = []
        original = engine_core._publish_snapshot

        def counting_publish(records, **kwargs):
            handle = original(records, **kwargs)
            published.append(handle)
            return handle

        monkeypatch.setattr(engine_core, "_publish_snapshot", counting_publish)
        return published

    def test_snapshot_serialised_once_per_run_not_per_chunk(
        self, records, publish_counter, tmp_path
    ):
        cache = ResponseCache()
        for record in records:  # warm cache: the snapshot is non-trivial
            cache.put("gpt-4", f"warm {record.name}", "yes")
        executor = _RecordingDistributedExecutor()
        engine = ExecutionEngine(executor=executor, cache=cache, batch_size=1)
        engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))

        assert len(executor.payloads) == len(records)  # batch_size=1 -> chunk per record
        assert len(publish_counter) == 1, "snapshot must be published once per run"
        ref = publish_counter[0].payload
        for _, payload_ref in executor.payloads:
            assert payload_ref == ref  # payloads carry only the tiny reference
            assert not isinstance(payload_ref, dict)

        # A second run republishes (entries changed) — still once.
        engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
        assert len(publish_counter) == 2

    @pytest.mark.parametrize("transport", ["shm", "file"])
    def test_snapshot_resource_released_after_run(
        self, records, publish_counter, transport
    ):
        import os

        cache = ResponseCache()
        cache.put("gpt-4", "warm", "yes")
        engine = ExecutionEngine(
            executor=_RecordingDistributedExecutor(),
            cache=cache,
            batch_size=4,
            snapshot_transport=transport,
        )
        engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
        kind, locator, _token = publish_counter[0].payload
        if kind == "file":
            assert not os.path.exists(locator)
        else:
            assert kind == "shm"
            with pytest.raises((FileNotFoundError, OSError)):
                engine_snapshot._attach_shm(locator)

    def test_worker_memo_keeps_only_latest_token(self, records, publish_counter):
        cache = ResponseCache()
        cache.put("gpt-4", "warm", "yes")
        engine = ExecutionEngine(
            executor=_RecordingDistributedExecutor(), cache=cache, batch_size=4
        )
        engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records[:4]))
        engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records[:4]))
        assert len(engine_core._WORKER_SNAPSHOTS) == 1
        (token,) = engine_core._WORKER_SNAPSHOTS
        assert token == publish_counter[-1].payload[2]

    def test_telemetry_counts_publishes_and_attaches(self, records, publish_counter):
        cache = ResponseCache()
        cache.put("gpt-4", "warm", "yes")
        engine = ExecutionEngine(
            executor=_RecordingDistributedExecutor(), cache=cache, batch_size=4
        )
        engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
        snap = engine.telemetry.snapshot()
        assert snap["broadcast_publishes"] == 1
        assert snap["broadcast_bytes"] == publish_counter[0].nbytes > 0
        if publish_counter[0].kind == "shm":
            # One genuine attach (the in-process recording executor is a
            # single "worker"); the memo absorbs the other chunks.
            assert snap["shm_attach"] == 1
        assert "broadcast=1 publishes" in engine.telemetry.format_stats()

    def test_uncached_run_publishes_nothing(self, records, publish_counter):
        engine = ExecutionEngine(executor=_RecordingDistributedExecutor(), batch_size=4)
        counts = engine.run_counts(
            build_requests(create_model("gpt-4"), PromptStrategy.BP1, records)
        )
        assert counts.total == len(records)
        assert publish_counter == []

    def test_distributed_results_match_serial_with_warm_cache(self, records):
        """The broadcast path returns the same store as the in-process path."""
        reference_engine = ExecutionEngine(cache=ResponseCache())
        reference = reference_engine.run(
            build_requests(create_model("gpt-4"), PromptStrategy.BP1, records)
        )
        cache = ResponseCache()
        engine = ExecutionEngine(
            executor=_RecordingDistributedExecutor(), cache=cache, batch_size=3
        )
        first = engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
        second = engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
        assert first.responses() == reference.responses()
        assert second.responses() == reference.responses()
        # The deltas merged back made the second run hit the snapshot.
        assert engine.telemetry.cache_hits == len(records)
