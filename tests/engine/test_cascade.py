"""The tiered detection cascade: routing, escalation and speculation.

Pinned contracts:

* a confident cheap-tier verdict resolves a record without the final
  model ever seeing it; low-confidence or disagreeing verdicts escalate;
* full escalation (``escalate_below=1.0``) is bit-identical to running
  the final model alone — the cascade may only ever *remove* expensive
  calls, never change what the final tier would have answered;
* confidence extraction lives beside parsing: an explicit
  ``[confidence=X]`` marker wins, otherwise parse quality decides;
* tier adapters speak the zoo's response dialect, so the existing
  parsers score them without special cases;
* cross-backend speculation merges exactly one verdict per request, and
  a cheap-tier model advertising ``cost_prior_s`` is priced
  cheap-but-unknown instead of blocking LPT ordering.
"""

import pytest

from repro.analysis.static_race import StaticRaceReport
from repro.dynamic.inspector import InspectorRunResult
from repro.engine import (
    DEFAULT_CASCADE_TIERS,
    CascadePolicy,
    CascadeTier,
    ExecutionEngine,
    build_requests,
    build_tier_model,
    response_confidence,
)
from repro.engine.cascade import FINAL_TIER
from repro.engine.telemetry import EngineTelemetry
from repro.eval.experiments import default_subset
from repro.llm.adapters import FlakyTailAdapter, InspectorTierModel, StaticAnalyzerModel
from repro.llm.base import LanguageModel
from repro.llm.zoo import create_model
from repro.prompting.chains import run_strategy
from repro.prompting.parsing import parse_pairs_response, parse_yes_no
from repro.prompting.strategy import PromptStrategy


@pytest.fixture(scope="module")
def records():
    return default_subset().records[:12]


class StubModel(LanguageModel):
    """A model with one fixed response and a call counter."""

    def __init__(self, name: str, response: str) -> None:
        self.name = name
        self.context_window = 1 << 20
        self.response = response
        self.calls = 0

    @property
    def cache_identity(self) -> str:
        return f"stub:{self.name}"

    def generate(self, prompt: str) -> str:
        self.calls += 1
        return self.response


def _policy(*tiers, escalate_below):
    return CascadePolicy(
        tiers=tuple(CascadeTier(name=m.name, model=m) for m in tiers),
        escalate_below=escalate_below,
    )


class TestResponseConfidence:
    def test_marker_wins_and_is_clamped(self):
        assert response_confidence("detection", "no.\n[confidence=0.42]") == 0.42
        assert response_confidence("detection", "yes.\n[confidence=7.5]") == 1.0

    def test_detection_heuristics(self):
        assert response_confidence("detection", "") == 0.0
        assert response_confidence("detection", "cannot tell") == 0.0
        assert response_confidence("detection", "yes, there is a data race.") == 0.8
        hedged = "yes in one branch, but no race when guarded."
        assert response_confidence("detection", hedged) == 0.6

    def test_pairs_heuristics(self):
        assert response_confidence("pairs", "nothing parseable here") == 0.0
        # A verdict-only answer parses through the fallback path: medium trust.
        assert response_confidence("pairs", 'no.\n{\n"data_race": 0\n}') == 0.6
        full = (
            'yes.\n{\n"name": ["a", "b"],\n"line": [5, 7],\n'
            '"operation": ["W", "R"],\n"data_race": 1\n}'
        )
        assert response_confidence("pairs", full) == 0.85

    def test_deterministic_for_cached_responses(self):
        response = "yes.\n[confidence=0.64]"
        assert response_confidence("detection", response) == response_confidence(
            "detection", response
        )


class TestTierCalibration:
    def test_static_positive_escalates_under_default_threshold(self):
        # The static analyzer over-approximates: its positives must fall
        # below the default threshold so a stronger tier confirms them.
        positive = StaticRaceReport(has_race=True, analyzed_accesses=4)
        clean = StaticRaceReport(has_race=False, analyzed_accesses=4)
        blind = StaticRaceReport(has_race=False, analyzed_accesses=0)
        assert positive.confidence < CascadePolicy.from_spec("static").escalate_below
        assert clean.confidence >= CascadePolicy.from_spec("static").escalate_below
        assert blind.confidence == 0.5

    def test_inspector_witness_beats_clean_run(self):
        witness = InspectorRunResult(name="x", has_race=True, runs=4)
        clean = InspectorRunResult(name="x", has_race=False, runs=4)
        dead = InspectorRunResult(name="x", has_race=False, failed=True, runs=0)
        assert witness.confidence > clean.confidence > dead.confidence
        assert dead.confidence == 0.0


class TestTierAdapters:
    @pytest.mark.parametrize("model", [StaticAnalyzerModel(), InspectorTierModel()])
    def test_detection_response_parses_with_marker(self, model, records):
        response = run_strategy(model.generate, PromptStrategy.BP1, records[0].trimmed_code)
        assert "[confidence=" in response
        assert parse_yes_no(response) is not None
        assert 0.0 <= response_confidence("detection", response) <= 1.0

    def test_pairs_response_speaks_zoo_dialect(self, records):
        model = StaticAnalyzerModel()
        racy = next(r for r in records if r.has_race)
        response = run_strategy(model.generate, PromptStrategy.ADVANCED, racy.trimmed_code)
        parsed = parse_pairs_response(response)
        assert parsed.race is not None or parsed.has_pairs

    def test_adapters_advertise_cost_priors(self):
        assert StaticAnalyzerModel().cost_prior_s < InspectorTierModel().cost_prior_s

    def test_tier_spec_resolution(self):
        assert isinstance(build_tier_model("static"), StaticAnalyzerModel)
        assert isinstance(build_tier_model("inspector"), InspectorTierModel)
        assert isinstance(build_tier_model("dynamic"), InspectorTierModel)
        assert build_tier_model("gpt-4").name == "gpt-4"
        with pytest.raises(KeyError):
            build_tier_model("no-such-model")


class TestCascadePolicy:
    def test_from_spec_parses_default(self):
        policy = CascadePolicy.from_spec(DEFAULT_CASCADE_TIERS)
        assert [tier.name for tier in policy.tiers] == ["static", "gpt-3.5-turbo"]

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            CascadePolicy.from_spec("  ,  ")
        with pytest.raises(ValueError):
            CascadePolicy.from_spec("static,static")
        with pytest.raises(ValueError):
            CascadePolicy.from_spec("static", escalate_below=1.5)

    def test_fallback_model_walks_down_the_ladder(self):
        policy = CascadePolicy.from_spec("static,gpt-3.5-turbo")
        static_model = policy.tiers[0].model
        fast_model = policy.tiers[1].model
        # Tier k races against tier k-1; tier 0 stays same-backend.
        assert policy.fallback_model(fast_model) is static_model
        assert policy.fallback_model(static_model) is None
        # The implicit final tier races against the top cheap tier.
        assert policy.fallback_model(create_model("gpt-4")) is fast_model


class TestCascadeRouting:
    def test_confident_tier_resolves_without_final_calls(self, records):
        tier = StubModel("cheap", "no.\n[confidence=0.95]")
        final = StubModel("final", "yes.\n[confidence=0.99]")
        policy = _policy(tier, escalate_below=0.75)
        with ExecutionEngine(jobs=1, cascade=policy) as engine:
            store = engine.run(build_requests(final, PromptStrategy.BP1, records))
        results = list(store)
        assert final.calls == 0
        assert all(r.model == "cheap" for r in results)
        assert all(r.prediction is False for r in results)
        assert all(r.confidence == 0.95 for r in results)

    def test_full_escalation_is_bit_identical_to_final_alone(self, records):
        tier = StubModel("cheap", "no.\n[confidence=0.95]")
        final = create_model("gpt-4")
        policy = _policy(tier, escalate_below=1.0)
        with ExecutionEngine(jobs=1, cascade=policy) as engine:
            cascaded = engine.run(build_requests(final, PromptStrategy.BP1, records))
        with ExecutionEngine(jobs=1) as engine:
            reference = engine.run(build_requests(final, PromptStrategy.BP1, records))
        assert cascaded.responses() == reference.responses()
        assert cascaded.confusion().as_row() == reference.confusion().as_row()

    def test_disagreement_with_earlier_tier_escalates(self, records):
        # Tier A is unsure but says yes; tier B confidently says no.  The
        # contradiction must push every record to the final model.
        tier_a = StubModel("a", "yes.\n[confidence=0.50]")
        tier_b = StubModel("b", "no.\n[confidence=0.99]")
        final = StubModel("final", "yes.\n[confidence=0.99]")
        policy = _policy(tier_a, tier_b, escalate_below=0.75)
        telemetry = EngineTelemetry()
        with ExecutionEngine(jobs=1, cascade=policy, telemetry=telemetry) as engine:
            store = engine.run(build_requests(final, PromptStrategy.BP1, records))
        assert all(r.model == "final" for r in store)
        assert final.calls == len(records)
        by_tier = {row["tier"]: row for row in telemetry.cascade_snapshot()}
        assert by_tier["b"]["resolved"] == 0
        assert by_tier["b"]["escalated"] == len(records)
        assert by_tier[FINAL_TIER]["requests"] == len(records)

    def test_agreeing_confident_tier_resolves(self, records):
        tier_a = StubModel("a", "yes.\n[confidence=0.50]")
        tier_b = StubModel("b", "yes.\n[confidence=0.99]")
        final = StubModel("final", "no.\n[confidence=0.99]")
        policy = _policy(tier_a, tier_b, escalate_below=0.75)
        with ExecutionEngine(jobs=1, cascade=policy) as engine:
            store = engine.run(build_requests(final, PromptStrategy.BP1, records))
        assert final.calls == 0
        assert all(r.model == "b" for r in store)

    def test_zero_confidence_verdict_is_not_recorded_for_disagreement(self, records):
        # An unparseable tier answer (confidence 0) must not veto a later
        # confident verdict — it carries no information.
        tier_a = StubModel("a", "cannot tell")
        tier_b = StubModel("b", "yes.\n[confidence=0.99]")
        final = StubModel("final", "no.\n[confidence=0.99]")
        policy = _policy(tier_a, tier_b, escalate_below=0.75)
        with ExecutionEngine(jobs=1, cascade=policy) as engine:
            store = engine.run(build_requests(final, PromptStrategy.BP1, records))
        assert final.calls == 0
        assert all(r.model == "b" and r.prediction is True for r in store)

    def test_real_ladder_runs_and_reports_telemetry(self, records):
        policy = CascadePolicy.from_spec(DEFAULT_CASCADE_TIERS)
        telemetry = EngineTelemetry()
        with ExecutionEngine(jobs=1, cascade=policy, telemetry=telemetry) as engine:
            store = engine.run(
                build_requests(create_model("gpt-4"), PromptStrategy.BP1, records)
            )
        assert len(list(store)) == len(records)
        snap = telemetry.snapshot()
        assert snap["cascade_requests"] >= len(records)
        stats_line = telemetry.format_stats(executor_name="serial")
        assert "cascade=" in stats_line
        assert "escalated=" in stats_line

    def test_cascade_composes_with_streaming(self, records):
        tier = StubModel("cheap", "no.\n[confidence=0.95]")
        final = StubModel("final", "yes.\n[confidence=0.99]")
        policy = _policy(tier, escalate_below=0.75)
        with ExecutionEngine(jobs=1, cascade=policy, stream_window=4) as engine:
            counts = engine.run_streaming_counts(
                iter(build_requests(final, PromptStrategy.BP1, records))
            )
        assert final.calls == 0
        assert counts.total == len(records)


class TestCrossBackendSpeculation:
    def test_fallback_race_merges_exactly_once(self, records):
        slow = FlakyTailAdapter(
            create_model("gpt-4"), latency_s=0.002, tail_latency_s=0.15, tail_ratio=1.0
        )
        fallback = create_model("gpt-3.5-turbo")
        engine = ExecutionEngine(
            jobs=6,
            executor_kind="thread",
            batch_size=4,
            speculate=True,
            speculate_after=1.2,
            speculate_fallback=lambda model: fallback,
        )
        engine.speculation_poll_s = 0.002
        for _ in range(3):
            engine.cost_model.observe(slow.cache_identity, "BP1", 0.003)
        with engine:
            store = engine.run(build_requests(slow, PromptStrategy.BP1, records))
        results = list(store)
        assert len(results) == len(records)
        assert all(not r.skipped for r in results)
        # Exactly one verdict per record, answered by either backend.
        assert sorted(r.record_name for r in results) == sorted(r.name for r in records)
        assert {r.model for r in results} <= {"gpt-4", "gpt-3.5-turbo"}
        snap = engine.telemetry.snapshot()
        assert snap["speculation_fallback_launched"] >= 1
        assert snap["speculation_fallback_won"] >= 1
        assert "fallback" in engine.telemetry.format_stats(executor_name="thread")
        # The winner's latency lands under the winning model's identity.
        assert (
            engine.cost_model.planning_estimate(fallback.cache_identity, "BP1")
            is not None
        )

    def test_tier_zero_has_no_fallback_so_speculation_stays_same_backend(self, records):
        policy = CascadePolicy.from_spec("static")
        engine = ExecutionEngine(
            jobs=4,
            executor_kind="thread",
            batch_size=4,
            speculate=True,
            speculate_fallback=policy.fallback_model,
        )
        with engine:
            store = engine.run(
                build_requests(policy.tiers[0].model, PromptStrategy.BP1, records)
            )
        assert len(list(store)) == len(records)
        assert engine.telemetry.snapshot()["speculation_fallback_launched"] == 0


class TestColdStartPriors:
    def test_prior_feeds_planning_but_not_observation_paths(self):
        from repro.engine import CostModel

        cm = CostModel()
        cm.set_prior("tier:static", "BP1", 0.002)
        assert cm.planning_estimate("tier:static", "BP1") == 0.002
        assert cm.estimate("tier:static", "BP1") is None
        assert cm.quantile_estimate("tier:static", "BP1") is None
        assert cm.snapshot() == []
        cm.observe("tier:static", "BP1", 0.1)
        # Observations shadow the prior.
        assert cm.planning_estimate("tier:static", "BP1") == cm.estimate(
            "tier:static", "BP1"
        )
        cm.clear()
        assert cm.planning_estimate("tier:static", "BP1") is None

    def test_prior_ignores_bad_values(self):
        from repro.engine import CostModel

        cm = CostModel()
        cm.set_prior("m", "BP1", -0.1)
        cm.set_prior("m", "BP1", float("nan"))
        assert cm.planning_estimate("m", "BP1") is None

    def test_engine_registers_tier_priors_while_planning(self, records):
        model = StaticAnalyzerModel()
        with ExecutionEngine(jobs=1) as engine:
            indexed = list(
                enumerate(build_requests(model, PromptStrategy.BP1, records[:4]))
            )
            engine._chunk(indexed)
            # Planning alone (no model call yet) priced the unobserved tier.
            assert (
                engine.cost_model.planning_estimate(model.cache_identity, "BP1")
                == model.cost_prior_s
            )
