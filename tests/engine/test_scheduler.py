"""Cross-table scheduler mechanics: plan construction, dispatch, reduction."""

import pytest

from repro.dataset.drbml import DRBMLDataset
from repro.engine import (
    DEFAULT_TABLES,
    ExecutionEngine,
    ResponseCache,
    TablePlan,
    collect_default_plans,
    run_all_tables,
    run_plans,
)
from repro.eval.experiments import (
    default_subset,
    evaluate_inspector,
    plan_table2,
    plan_table3,
    run_table2,
    run_table5,
)
from repro.eval.crossval import plan_finetune_crossval, run_finetune_crossval
from repro.llm.zoo import create_model


@pytest.fixture(scope="module")
def subset():
    return default_subset()


@pytest.fixture(scope="module")
def mini(subset):
    return DRBMLDataset(records=subset.records[:20])


def _rows(rows):
    return [(r.model, r.prompt, r.counts.as_row()) for r in rows]


class TestTablePlans:
    def test_plan_execute_equals_driver(self, mini):
        plan_rows = plan_table2(mini).execute()
        assert _rows(plan_rows) == _rows(run_table2(mini))

    def test_plan_requests_match_sequential_order(self, mini):
        """Plan requests preserve the order the sequential driver issued."""
        plan = plan_table2(mini)
        assert len(plan.requests) == 2 * len(mini.records)
        assert [r.strategy.value for r in plan.requests] == (
            ["BP1"] * len(mini.records) + ["BP2"] * len(mini.records)
        )
        assert [r.record.name for r in plan.requests[: len(mini.records)]] == [
            r.name for r in mini.records
        ]

    def test_table3_prepare_runs_inspector(self, mini):
        plan = plan_table3(mini, models=("gpt-4",), include_inspector=True)
        engine = ExecutionEngine()
        rows = plan.execute(engine)
        assert rows[0].model == "Inspector" and rows[0].prompt == "N/A"
        assert rows[0].counts.total > 0

    def test_table3_without_inspector_has_no_prepare(self, mini):
        plan = plan_table3(mini, models=("gpt-4",), include_inspector=False)
        assert plan.prepare is None
        assert all(row.model != "Inspector" for row in plan.execute())

    def test_crossval_plan_reduce_matches_runner(self, mini):
        plan = plan_finetune_crossval(mini, "llama2-7b", kind="basic", n_folds=2)
        engine = ExecutionEngine()
        planned = plan.reduce(engine.run(plan.requests))
        direct = run_finetune_crossval(mini, "llama2-7b", kind="basic", n_folds=2)
        assert [c.as_row() for c in planned.base_folds] == [
            c.as_row() for c in direct.base_folds
        ]
        assert [c.as_row() for c in planned.tuned_folds] == [
            c.as_row() for c in direct.tuned_folds
        ]

    def test_crossval_plan_rejects_bad_kind(self, mini):
        with pytest.raises(ValueError):
            plan_finetune_crossval(mini, "llama2-7b", kind="nope")

    def test_model_factory_is_used(self, mini):
        seen = []

        def factory(name):
            seen.append(name)
            return create_model(name)

        plan = plan_table2(mini, model_factory=factory)
        assert seen == ["gpt-3.5-turbo"]
        assert _rows(plan.execute()) == _rows(run_table2(mini))


class TestRunPlans:
    def test_results_keyed_by_table(self, mini):
        results = run_plans([plan_table2(mini)], engine=ExecutionEngine())
        assert set(results) == {"table2"}

    def test_mixed_model_requests_interleave_into_one_run(self, mini):
        """One engine.run covers every plan: requests == sum of plan sizes."""
        plans = [
            plan_table2(mini),
            plan_table3(mini, models=("gpt-4",), include_inspector=False),
        ]
        total = sum(len(p.requests) for p in plans)
        engine = ExecutionEngine(jobs=4, batch_size=6)
        run_plans(plans, engine=engine)
        assert engine.telemetry.requests == total
        assert engine.telemetry.runs == 1

    def test_reducers_get_their_own_slice(self, mini):
        """Two plans over different models reduce to independent rows."""
        plans = [
            plan_table2(mini, model_name="gpt-4"),
            plan_table2(mini, model_name="llama2-7b"),
        ]
        plans[1].table = "table2b"
        results = run_plans(plans, engine=ExecutionEngine(cache=ResponseCache()))
        assert {row.model for row in results["table2"]} == {"gpt-4"}
        assert {row.model for row in results["table2b"]} == {"llama2-7b"}


class TestRunAllTables:
    def test_default_tables_constant(self):
        assert DEFAULT_TABLES == ("table2", "table3", "table4", "table5", "table6")

    def test_unknown_table_rejected(self, mini):
        with pytest.raises(ValueError):
            collect_default_plans(mini, tables=("table7",))

    def test_subset_of_tables(self, mini):
        results = run_all_tables(mini, tables=("table2", "table5"), engine=ExecutionEngine())
        assert set(results) == {"table2", "table5"}
        assert _rows(results["table2"]) == _rows(run_table2(mini))
        assert _rows(results["table5"]) == _rows(run_table5(mini))

    def test_prebuilt_plans_skip_collection(self, mini):
        plan = plan_table2(mini)
        results = run_all_tables(plans=[plan], engine=ExecutionEngine())
        assert _rows(results["table2"]) == _rows(run_table2(mini))

    def test_sequential_flag_matches_interleaved(self, mini):
        tables = ("table2", "table5")
        interleaved = run_all_tables(mini, tables=tables, engine=ExecutionEngine(jobs=4))
        sequential = run_all_tables(
            mini, tables=tables, engine=ExecutionEngine(), interleave=False
        )
        for table in tables:
            assert _rows(interleaved[table]) == _rows(sequential[table])

    def test_inspector_row_present_and_correct(self, mini):
        """The scheduler's table3 keeps the Inspector baseline intact."""
        results = run_all_tables(mini, tables=("table3",), engine=ExecutionEngine(jobs=4))
        rows = results["table3"]
        assert rows[0].model == "Inspector"
        from repro.corpus.generator import build_corpus

        names = {r.name for r in mini.records}
        benchmarks = [b for b in build_corpus(None) if b.name in names]
        assert rows[0].counts.as_row() == evaluate_inspector(benchmarks).as_row()
