"""The async-native I/O path: coalescer semantics, adapters, telemetry.

The tentpole contract pinned here:

* ``MicroBatchCoalescer`` merges concurrent same-key batch requests into
  one ``generate_batch_async`` call and hands every caller exactly its own
  slice back (errors fan out to every waiter);
* the engine's async-native dispatch awaits model I/O on the executor's
  event loop — in-flight concurrency bounded by ``max_inflight``, not by
  thread count — and with simulated latency beats the thread backend at
  equal ``--jobs`` (the full benchmark lives in
  ``benchmarks/bench_async.py``);
* ``AsyncRemoteAdapter`` and the zoo's native ``generate_async`` produce
  byte-identical responses to their sync counterparts.

Bit-identical *confusion counts* across the async-native configurations
are pinned in ``tests/engine/test_equivalence.py``.
"""

import asyncio
import time

import pytest

from repro.engine import ExecutionEngine, MicroBatchCoalescer, ResponseCache, build_requests
from repro.eval.experiments import default_subset
from repro.llm.adapters import AsyncRemoteAdapter
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy
from repro.prompting.templates import render_prompt


@pytest.fixture(scope="module")
def records():
    return default_subset().records[:16]


def run_async(coro):
    return asyncio.run(coro)


class TestMicroBatchCoalescer:
    def test_concurrent_callers_share_one_model_call(self):
        calls = []

        async def generate_batch(prompts):
            calls.append(list(prompts))
            await asyncio.sleep(0)
            return [f"r:{p}" for p in prompts]

        async def scenario():
            coalescer = MicroBatchCoalescer(window_s=0.01, max_batch=64)
            results = await asyncio.gather(
                coalescer.generate("k", generate_batch, ["a", "b"]),
                coalescer.generate("k", generate_batch, ["c"]),
                coalescer.generate("k", generate_batch, ["d", "e"]),
            )
            return results

        first, second, third = run_async(scenario())
        assert first == ["r:a", "r:b"]
        assert second == ["r:c"]
        assert third == ["r:d", "r:e"]
        assert len(calls) == 1  # one wire call carried all three chunks
        assert sorted(calls[0]) == ["a", "b", "c", "d", "e"]

    def test_different_keys_do_not_merge(self):
        calls = []

        async def generate_batch(prompts):
            calls.append(list(prompts))
            return [p.upper() for p in prompts]

        async def scenario():
            coalescer = MicroBatchCoalescer(window_s=0.005, max_batch=64)
            return await asyncio.gather(
                coalescer.generate(("m1", "BP1"), generate_batch, ["a"]),
                coalescer.generate(("m2", "BP1"), generate_batch, ["b"]),
            )

        assert run_async(scenario()) == [["A"], ["B"]]
        assert len(calls) == 2

    def test_max_batch_flushes_early(self):
        flush_sizes = []

        async def generate_batch(prompts):
            flush_sizes.append(len(prompts))
            return list(prompts)

        async def scenario():
            # A window so long the test would time out if it were the only
            # trigger: max_batch must flush the moment it fills.
            coalescer = MicroBatchCoalescer(window_s=30.0, max_batch=4)
            start = time.perf_counter()
            await asyncio.gather(
                coalescer.generate("k", generate_batch, ["a", "b"]),
                coalescer.generate("k", generate_batch, ["c", "d"]),
            )
            assert time.perf_counter() - start < 5.0
            assert coalescer.pending_keys == 0

        run_async(scenario())
        assert flush_sizes == [4]

    def test_oversized_request_calls_straight_through(self):
        calls = []

        async def generate_batch(prompts):
            calls.append(len(prompts))
            return list(prompts)

        async def scenario():
            coalescer = MicroBatchCoalescer(window_s=30.0, max_batch=4)
            return await coalescer.generate("k", generate_batch, list("abcdef"))

        assert run_async(scenario()) == list("abcdef")
        assert calls == [6]

    def test_model_error_reaches_every_waiter(self):
        async def generate_batch(prompts):
            raise RuntimeError("api down")

        async def scenario():
            coalescer = MicroBatchCoalescer(window_s=0.005, max_batch=64)
            results = await asyncio.gather(
                coalescer.generate("k", generate_batch, ["a"]),
                coalescer.generate("k", generate_batch, ["b"]),
                return_exceptions=True,
            )
            return results

        results = run_async(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_miscounting_model_is_an_error(self):
        async def generate_batch(prompts):
            return ["only one"]

        async def scenario():
            coalescer = MicroBatchCoalescer(window_s=0.001, max_batch=64)
            return await coalescer.generate("k", generate_batch, ["a", "b"])

        with pytest.raises(RuntimeError, match="responses"):
            run_async(scenario())

    def test_empty_prompts_short_circuit(self):
        async def generate_batch(prompts):  # pragma: no cover - must not run
            raise AssertionError("should not be called")

        async def scenario():
            coalescer = MicroBatchCoalescer()
            return await coalescer.generate("k", generate_batch, [])

        assert run_async(scenario()) == []

    def test_on_flush_reports_waiters_and_prompts(self):
        flushes = []

        async def generate_batch(prompts):
            return list(prompts)

        async def scenario():
            coalescer = MicroBatchCoalescer(
                window_s=0.005, max_batch=64, on_flush=lambda w, p: flushes.append((w, p))
            )
            await asyncio.gather(
                coalescer.generate("k", generate_batch, ["a", "b"]),
                coalescer.generate("k", generate_batch, ["c"]),
            )

        run_async(scenario())
        assert flushes == [(2, 3)]

    def test_cancelled_waiters_do_not_trigger_a_wire_call(self):
        """An aborted run cancels chunk coroutines mid-window; the flush must
        not turn their prompts into a stray (billable) model call."""
        calls = []

        async def generate_batch(prompts):
            calls.append(list(prompts))
            return list(prompts)

        async def scenario():
            coalescer = MicroBatchCoalescer(window_s=0.01, max_batch=64)
            task = asyncio.create_task(coalescer.generate("k", generate_batch, ["a"]))
            await asyncio.sleep(0)  # the waiter joins the window
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            await asyncio.sleep(0.05)  # the window elapses and flushes

        run_async(scenario())
        assert calls == []  # every waiter was gone: no wire call at all

    def test_cancelled_flush_leader_does_not_poison_co_waiters(self):
        """The waiter that tips max_batch leads the shared wire call; if it
        is cancelled mid-call (a losing speculative copy), the other
        waiters' futures must still resolve with their slices."""

        async def generate_batch(prompts):
            await asyncio.sleep(0.1)
            return [f"r:{p}" for p in prompts]

        async def scenario():
            coalescer = MicroBatchCoalescer(window_s=5.0, max_batch=4)
            loop = asyncio.get_running_loop()
            bystander = loop.create_task(
                coalescer.generate("k", generate_batch, ["a", "b"])
            )
            await asyncio.sleep(0.01)  # bystander opens the window
            leader = loop.create_task(
                coalescer.generate("k", generate_batch, ["c", "d"])  # tips max_batch
            )
            await asyncio.sleep(0.02)  # leader is now awaiting the wire call
            leader.cancel()
            with pytest.raises(asyncio.CancelledError):
                await leader
            return await bystander

        assert run_async(scenario()) == ["r:a", "r:b"]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatchCoalescer(window_s=-0.001)
        with pytest.raises(ValueError):
            MicroBatchCoalescer(max_batch=0)


class TestModelAsyncProtocol:
    def test_zoo_generate_async_matches_sync(self, records):
        model = create_model("gpt-4")
        prompts = [render_prompt(PromptStrategy.BP1, r.trimmed_code) for r in records[:6]]
        reference = [create_model("gpt-4").generate(p) for p in prompts]
        assert run_async(model.generate_batch_async(prompts)) == reference
        assert [run_async(model.generate_async(p)) for p in prompts] == reference

    def test_default_async_offload_matches_sync(self):
        """A sync-only model still works through the async protocol."""
        from repro.llm.base import LanguageModel

        class MinimalModel(LanguageModel):
            name = "minimal"

            def generate(self, prompt):
                return f"echo:{len(prompt)}"

        model = MinimalModel()
        prompts = ["one", "two two", "three three three"]
        assert run_async(model.generate_batch_async(prompts)) == model.generate_batch(prompts)
        assert run_async(model.generate_async("x")) == model.generate("x")

    def test_zoo_async_latency_overlaps(self):
        """N concurrent 30ms calls must take ~one latency, not N of them."""
        model = create_model("gpt-4", latency_s=0.03)
        prompts = [
            render_prompt(PromptStrategy.BP1, f"int main() {{ int x{i}; }}")
            for i in range(8)
        ]
        start = time.perf_counter()
        run_async(model.generate_batch_async(prompts))
        elapsed = time.perf_counter() - start
        assert elapsed < 8 * 0.03  # strictly better than the serial sum

    def test_remote_adapter_matches_inner_content(self, records):
        inner = create_model("gpt-4")
        adapter = AsyncRemoteAdapter(inner, latency_s=0.0)
        prompt = render_prompt(PromptStrategy.BP1, records[0].trimmed_code)
        reference = create_model("gpt-4").generate(prompt)
        assert adapter.generate(prompt) == reference
        assert run_async(adapter.generate_async(prompt)) == reference
        assert adapter.cache_identity == inner.cache_identity

    def test_remote_adapter_max_concurrency_bounds_inflight(self):
        inner = create_model("gpt-4")
        adapter = AsyncRemoteAdapter(inner, latency_s=0.01, max_concurrency=2)
        inflight = {"now": 0, "peak": 0}
        original = adapter._call

        async def tracking_call(prompt):
            inflight["now"] += 1
            inflight["peak"] = max(inflight["peak"], inflight["now"])
            try:
                return await original(prompt)
            finally:
                inflight["now"] -= 1

        adapter._call = tracking_call
        prompts = [
            render_prompt(PromptStrategy.BP1, f"int main() {{ int y{i}; }}")
            for i in range(6)
        ]
        run_async(adapter.generate_batch_async(prompts))
        assert inflight["peak"] <= 2

    def test_remote_adapter_rejects_bad_parameters(self):
        inner = create_model("gpt-4")
        with pytest.raises(ValueError):
            AsyncRemoteAdapter(inner, latency_s=-1)
        with pytest.raises(ValueError):
            AsyncRemoteAdapter(inner, max_concurrency=0)


class TestEngineAsyncNative:
    def test_inflight_bounded_by_max_inflight_not_jobs(self, records):
        """With jobs=1 but max_inflight=8, chunk coroutines still overlap."""
        model = create_model("gpt-4", latency_s=0.02)
        requests = build_requests(model, PromptStrategy.BP1, records)
        with ExecutionEngine(
            jobs=1, executor_kind="async", max_inflight=8, batch_size=2
        ) as engine:
            start = time.perf_counter()
            engine.run(requests)
            elapsed = time.perf_counter() - start
        peak = engine.telemetry.async_inflight_peak
        assert peak > 1  # a single thread could never overlap chunks
        assert peak <= 8
        assert elapsed < len(records) * 0.02  # latencies overlapped

    def test_inflight_peak_is_per_run(self, records):
        """A small run after a wide one must not inherit the earlier peak."""
        with ExecutionEngine(
            jobs=4, executor_kind="async", max_inflight=16, batch_size=1
        ) as engine:
            engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
            wide_peak = engine._inflight_peak
            engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records[:1]))
            assert engine._inflight_peak == 1  # reset, not carried over
        assert engine.telemetry.async_inflight_peak == wide_peak  # telemetry keeps max

    def test_coalesce_telemetry_counts_saved_calls(self, records):
        with ExecutionEngine(
            jobs=4, executor_kind="async", max_inflight=16, batch_size=2
        ) as engine:
            engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
        snap = engine.telemetry.snapshot()
        assert snap["coalesce_flushes"] >= 1
        assert snap["coalesce_prompts"] == len(records)
        assert snap["coalesce_merged"] >= 1  # at least two chunks merged once
        stats = engine.telemetry.format_stats(executor_name="async")
        assert "coalesced" in stats and "inflight_peak" in stats

    def test_wire_calls_count_flushes_not_per_chunk_misses(self, records):
        """model_calls counts miss prompts; wire_calls must count actual
        generate_batch_async invocations — with coalescing on, one per
        flush, strictly fewer than the chunk count it merged."""
        with ExecutionEngine(
            jobs=4, executor_kind="async", max_inflight=16, batch_size=2
        ) as engine:
            engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
        snap = engine.telemetry.snapshot()
        assert snap["model_calls"] == len(records)
        assert snap["wire_calls"] == snap["coalesce_flushes"]
        # Coalescing merged at least two chunks, so the wire saw fewer
        # calls than there were chunks — exactly what the old per-chunk
        # model_calls counter overstated.
        n_chunks = len(records) // 2
        assert snap["wire_calls"] < n_chunks

    def test_wire_calls_without_coalescing_count_per_chunk_calls(self, records):
        with ExecutionEngine(
            jobs=4, executor_kind="async", batch_size=4, coalesce=False
        ) as engine:
            engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
        snap = engine.telemetry.snapshot()
        assert snap["wire_calls"] == len(records) // 4  # one per chunk
        assert snap["model_calls"] == len(records)

    def test_sync_only_model_bypasses_coalescer(self, records):
        """Merging many chunks into one sync-offloaded generate_batch would
        serialise them in one worker thread; the engine must call per chunk."""
        from repro.llm.base import LanguageModel

        class SyncOnly(LanguageModel):
            name = "sync-only"

            def __init__(self):
                self.batch_sizes = []

            def generate(self, prompt):
                return "yes"

            def generate_batch(self, prompts):
                self.batch_sizes.append(len(prompts))
                return ["yes"] * len(prompts)

        model = SyncOnly()
        assert not model.has_native_async
        requests = build_requests(model, PromptStrategy.BP1, records)
        with ExecutionEngine(
            jobs=4, executor_kind="async", max_inflight=16, batch_size=4
        ) as engine:
            engine.run(requests)
        assert engine.telemetry.snapshot()["coalesce_flushes"] == 0
        assert max(model.batch_sizes) <= 4  # one wire call per chunk, not merged

    def test_zoo_models_report_native_async(self):
        assert create_model("gpt-4").has_native_async
        assert AsyncRemoteAdapter(create_model("gpt-4")).has_native_async

    def test_no_coalesce_issues_one_call_per_chunk(self, records):
        with ExecutionEngine(
            jobs=4, executor_kind="async", batch_size=4, coalesce=False
        ) as engine:
            engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
        snap = engine.telemetry.snapshot()
        assert snap["coalesce_flushes"] == 0
        assert engine.coalescer is None

    def test_async_beats_thread_backend_at_equal_jobs(self, records):
        """The tentpole's speedup claim, at smoke-test scale (full version:
        benchmarks/bench_async.py with the committed CI floor)."""

        def measure(kind):
            model = create_model("gpt-4", latency_s=0.03)
            with ExecutionEngine(jobs=2, executor_kind=kind, batch_size=8) as engine:
                start = time.perf_counter()
                store = engine.run(build_requests(model, PromptStrategy.BP1, records))
                return [(r.record_name, r.response) for r in store], (
                    time.perf_counter() - start
                )

        thread_fp, thread_s = measure("thread")
        async_fp, async_s = measure("async")
        assert async_fp == thread_fp
        assert thread_s / async_s > 1.5  # conservative smoke floor

    def test_engine_rejects_max_inflight_with_explicit_executor(self):
        from repro.engine import AsyncExecutor

        with pytest.raises(ValueError):
            ExecutionEngine(executor=AsyncExecutor(jobs=2), max_inflight=4)

    def test_cached_async_rerun_hits_without_model_calls(self, records):
        with ExecutionEngine(
            jobs=4, executor_kind="async", max_inflight=8, cache=ResponseCache()
        ) as engine:
            first = engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
            second = engine.run(build_requests(create_model("gpt-4"), PromptStrategy.BP1, records))
        assert first.responses() == second.responses()
        assert engine.telemetry.cache_hits == len(records)
        assert engine.telemetry.model_calls == len(records)
