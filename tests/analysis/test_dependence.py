"""Unit and property tests for the affine dependence machinery."""

from hypothesis import given, strategies as st

from repro.analysis.dependence import (
    SubscriptForm,
    dependence_distance,
    may_overlap,
    normalize_subscript,
)


class TestNormalize:
    def test_plain_variable(self):
        form = normalize_subscript("i", ("i",))
        assert form.is_affine and form.variable == "i" and form.coeff == 1 and form.offset == 0

    def test_offset_positive(self):
        form = normalize_subscript("i+1", ("i",))
        assert form.offset == 1

    def test_offset_negative(self):
        form = normalize_subscript("i-2", ("i",))
        assert form.offset == -2

    def test_scaled(self):
        form = normalize_subscript("2*i+1", ("i",))
        assert form.coeff == 2 and form.offset == 1

    def test_constant(self):
        form = normalize_subscript("7", ("i",))
        assert form.is_constant and form.offset == 7

    def test_modulus_not_affine(self):
        assert not normalize_subscript("i % 10", ("i",)).is_affine

    def test_indirect_not_affine(self):
        assert not normalize_subscript("idx[i]", ("i",)).is_affine

    def test_other_variable_not_affine_wrt_loop(self):
        assert not normalize_subscript("j", ("i",)).is_affine

    def test_whitespace_tolerated(self):
        form = normalize_subscript(" i + 4 ", ("i",))
        assert form.offset == 4


class TestDistanceAndOverlap:
    def test_distance_one(self):
        a = normalize_subscript("i+1", ("i",))
        b = normalize_subscript("i", ("i",))
        assert dependence_distance(a, b) == 1

    def test_distance_requires_same_coeff(self):
        a = normalize_subscript("2*i", ("i",))
        b = normalize_subscript("i", ("i",))
        assert dependence_distance(a, b) is None

    def test_same_subscript_does_not_overlap_across_iterations(self):
        a = normalize_subscript("i", ("i",))
        assert not may_overlap(a, a, same_iteration_ok=True)

    def test_same_subscript_overlaps_when_not_partitioned(self):
        a = normalize_subscript("i", ("i",))
        assert may_overlap(a, a, same_iteration_ok=False)

    def test_shifted_overlaps(self):
        a = normalize_subscript("i", ("i",))
        b = normalize_subscript("i+1", ("i",))
        assert may_overlap(a, b)

    def test_constants_overlap_only_if_equal(self):
        a = normalize_subscript("3", ("i",))
        b = normalize_subscript("3", ("i",))
        c = normalize_subscript("4", ("i",))
        assert may_overlap(a, b)
        assert not may_overlap(a, c)

    def test_non_affine_is_conservative(self):
        a = normalize_subscript("idx[i]", ("i",))
        b = normalize_subscript("i", ("i",))
        assert may_overlap(a, b)

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_overlap_iff_offsets_differ_for_unit_coeff(self, off_a, off_b):
        a = SubscriptForm(text="a", variable="i", coeff=1, offset=off_a)
        b = SubscriptForm(text="b", variable="i", coeff=1, offset=off_b)
        assert may_overlap(a, b, same_iteration_ok=True) == (off_a != off_b)

    @given(st.integers(1, 8), st.integers(-20, 20), st.integers(-20, 20))
    def test_distance_definition(self, coeff, off_a, off_b):
        a = SubscriptForm(text="a", variable="i", coeff=coeff, offset=off_a)
        b = SubscriptForm(text="b", variable="i", coeff=coeff, offset=off_b)
        d = dependence_distance(a, b)
        if d is not None:
            # a(i) == b(i + d): coeff*i + off_a == coeff*(i+d) + off_b
            assert coeff * 0 + off_a == coeff * d + off_b
