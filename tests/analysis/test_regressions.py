"""Regression tests for defects fixed by the phase-aware rewrite.

Each test documents a wrong verdict the pre-rewrite detector produced:

* cross-context subscript normalization — ``_conflicting_subscripts``
  normalized *both* sides of a pair in the first site's loop context, so a
  subscript that was affine only in its own loop turned opaque (or worse,
  aliased the wrong induction variable when two loops reuse a name);
* ``loop_vars[:1]`` truncation — the self-conflict test only consulted the
  first enclosing induction variable, so writes distributed by an inner
  worksharing loop (or the second variable of a ``collapse(2)`` nest) were
  reported as write/write races.
"""

from repro.analysis import StaticRaceDetector


def _detect(code: str):
    return StaticRaceDetector().analyze_source(code)


class TestCrossContextNormalization:
    def test_each_site_is_normalized_in_its_own_loop(self):
        # Two sections iterate disjoint halves with the *same* induction
        # variable name.  The old detector normalized both subscripts in one
        # context, missed the per-site ranges, and reported a race.
        report = _detect(
            """
int main()
{
  int i;
  int len = 100;
  int half = 50;
  int a[100];
#pragma omp parallel sections private(i)
  {
#pragma omp section
    for (i = 0; i < 50; i++)
      a[i] = i;
#pragma omp section
    for (i = 50; i < 100; i++)
      a[i] = i * 2;
  }
  return 0;
}
"""
        )
        assert not report.has_race
        assert report.suppressions["DRD-RANGE-DISJOINT"] >= 1

    def test_constant_offset_from_declaration_is_folded_per_site(self):
        # ``i + half`` is affine only after folding the declared constant;
        # the fold happens in the site's own context so the halves stay
        # provably disjoint.
        report = _detect(
            """
int main()
{
  int i;
  int len = 100;
  int half = 50;
  int a[100];
#pragma omp parallel sections private(i)
  {
#pragma omp section
    for (i = 0; i < 50; i++)
      a[i] = i;
#pragma omp section
    for (i = 0; i < 50; i++)
      a[i + half] = i;
  }
  return 0;
}
"""
        )
        assert not report.has_race
        assert report.suppressions["DRD-RANGE-DISJOINT"] >= 1


class TestAllInductionVariablesConsidered:
    def test_inner_worksharing_loop_distributes_the_write(self):
        # The write is distributed by the *inner* loop variable ``j``.  The
        # old ``loop_vars[:1]`` truncation only saw ``i`` and flagged a
        # write/write race on ``a``.
        report = _detect(
            """
int main()
{
  int i;
  int j;
  int n = 8;
  int a[64];
#pragma omp parallel private(i)
  {
    for (i = 0; i < n; i++)
    {
#pragma omp for
      for (j = 0; j < 64; j++)
        a[j] = j + i;
    }
  }
  return 0;
}
"""
        )
        assert not report.has_race
        assert report.suppressions["DRD-DISTRIBUTED-WRITE"] >= 1

    def test_collapse2_write_covering_both_variables_is_clean(self):
        report = _detect(
            """
int main()
{
  int i;
  int j;
  int c[8][8];
#pragma omp parallel for collapse(2)
  for (i = 0; i < 8; i++)
    for (j = 0; j < 8; j++)
      c[i][j] = i + j;
  return 0;
}
"""
        )
        assert not report.has_race

    def test_collapse2_write_covering_one_variable_still_races(self):
        # Injectivity must hold over the whole distributed tuple: covering
        # only ``j`` leaves every ``i`` writing the same ``c[j]``.
        report = _detect(
            """
int main()
{
  int i;
  int j;
  int c[8];
#pragma omp parallel for collapse(2)
  for (i = 0; i < 8; i++)
    for (j = 0; j < 8; j++)
      c[j] = i;
  return 0;
}
"""
        )
        assert report.has_race
        assert any(d.rule_id == "DRD-WRITE-WRITE" for d in report.diagnostics)
