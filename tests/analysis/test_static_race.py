"""Tests for access extraction, sharing classification and the static detector."""

import pytest

from repro.analysis import StaticRaceDetector, extract_accesses, classify_sharing
from repro.analysis.sharing import SharingAttribute
from repro.corpus import CorpusConfig, build_corpus
from repro.cparse import parse
from repro.cparse.symbols import build_symbol_table


RACY = """
#include <stdio.h>
int main()
{
  int i;
  int len = 100;
  int a[100];
  for (i = 0; i < len; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < len - 1; i++)
    a[i] = a[i+1] + 1;
  return 0;
}
"""

SAFE = """
#include <stdio.h>
int main()
{
  int i;
  int len = 100;
  int a[100];
  int b[100];
  for (i = 0; i < len; i++)
    b[i] = i;
#pragma omp parallel for
  for (i = 0; i < len; i++)
    a[i] = b[i] * 2;
  return 0;
}
"""

REDUCTION_OK = """
int main()
{
  int i;
  int sum = 0;
#pragma omp parallel for reduction(+:sum)
  for (i = 0; i < 50; i++)
    sum += i;
  return 0;
}
"""

CRITICAL_OK = """
int main()
{
  int i;
  int sum = 0;
#pragma omp parallel for
  for (i = 0; i < 50; i++)
  {
#pragma omp critical
    sum = sum + i;
  }
  return 0;
}
"""


class TestAccessExtraction:
    def test_extracts_only_parallel_accesses(self):
        sites = extract_accesses(parse(RACY))
        # sequential init loop contributes nothing
        assert all(s.variable in ("a", "i", "len") for s in sites)
        array_sites = [s for s in sites if s.variable == "a"]
        assert {s.operation for s in array_sites} == {"R", "W"}

    def test_records_locations(self):
        sites = extract_accesses(parse(RACY))
        write = next(s for s in sites if s.variable == "a" and s.is_write)
        assert write.line == 12 and write.col == 5

    def test_subscript_text(self):
        sites = extract_accesses(parse(RACY))
        read = next(s for s in sites if s.variable == "a" and not s.is_write)
        assert read.subscript == "i+1"

    def test_critical_context_flag(self):
        sites = extract_accesses(parse(CRITICAL_OK))
        sum_sites = [s for s in sites if s.variable == "sum"]
        assert sum_sites and all(s.context.in_critical for s in sum_sites)

    def test_reduction_clause_recorded(self):
        sites = extract_accesses(parse(REDUCTION_OK))
        sum_sites = [s for s in sites if s.variable == "sum"]
        assert sum_sites and all("sum" in s.context.reduction_vars for s in sum_sites)


class TestSharingClassification:
    def test_reduction_variable(self):
        unit = parse(REDUCTION_OK)
        symbols = build_symbol_table(unit)
        site = next(s for s in extract_accesses(unit) if s.variable == "sum")
        assert classify_sharing(site, symbols) is SharingAttribute.REDUCTION

    def test_worksharing_loop_index_private(self):
        unit = parse(RACY)
        symbols = build_symbol_table(unit)
        site = next(s for s in extract_accesses(unit) if s.variable == "i")
        assert classify_sharing(site, symbols) in (
            SharingAttribute.LOOP_INDEX,
            SharingAttribute.PRIVATE,
        )

    def test_shared_array(self):
        unit = parse(RACY)
        symbols = build_symbol_table(unit)
        site = next(s for s in extract_accesses(unit) if s.variable == "a")
        assert classify_sharing(site, symbols) is SharingAttribute.SHARED


class TestStaticDetector:
    def test_detects_antidependence(self):
        report = StaticRaceDetector().analyze_source(RACY)
        assert report.has_race
        assert "a" in report.variables()

    def test_accepts_independent_kernel(self):
        report = StaticRaceDetector().analyze_source(SAFE)
        assert not report.has_race

    def test_accepts_reduction(self):
        report = StaticRaceDetector().analyze_source(REDUCTION_OK)
        assert not report.has_race

    def test_accepts_critical(self):
        report = StaticRaceDetector().analyze_source(CRITICAL_OK)
        assert not report.has_race

    def test_pair_locations_are_plausible(self):
        report = StaticRaceDetector().analyze_source(RACY)
        pair = report.pairs[0]
        assert pair.first.line == pair.second.line == 12

    def test_recall_on_corpus_sample(self):
        """The static detector should flag the large majority of seeded races
        (it is allowed to over-report on race-free kernels)."""
        corpus = [b for b in build_corpus(CorpusConfig()) if b.category != "oversized"]
        racy = [b for b in corpus if b.has_race][:40]
        detector = StaticRaceDetector()
        hits = sum(1 for b in racy if detector.analyze_source(b.code).has_race)
        assert hits >= len(racy) * 0.8
