"""Tests for the ``repro analyze`` command-line front end."""

import json

import pytest

from repro.analysis.cli import main, run_analyze

RACY = """
int main()
{
  int i;
  int a[100];
#pragma omp parallel for
  for (i = 0; i < 99; i++)
    a[i] = a[i + 1] + 1;
  return 0;
}
"""

CLEAN = """
int main()
{
  int i;
  int a[100];
#pragma omp parallel for
  for (i = 0; i < 100; i++)
    a[i] = i;
  return 0;
}
"""


@pytest.fixture()
def racy_file(tmp_path):
    path = tmp_path / "racy.c"
    path.write_text(RACY, encoding="utf-8")
    return str(path)


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN, encoding="utf-8")
    return str(path)


def test_text_output_names_rule_and_span(racy_file, capsys):
    assert main([racy_file]) == 0
    out = capsys.readouterr().out
    assert "race" in out
    assert "DRD-LOOP-CARRIED" in out
    assert "a[i]" in out


def test_json_output_matches_schema(racy_file, clean_file, capsys):
    assert main(["--json", racy_file, clean_file]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [f["file"] for f in payload["files"]] == [racy_file, clean_file]
    racy, clean = payload["files"]
    assert racy["has_race"] is True
    assert clean["has_race"] is False
    diagnostic = racy["diagnostics"][0]
    assert diagnostic["rule"] == "DRD-LOOP-CARRIED"
    assert diagnostic["primary"]["line"] > 0
    assert diagnostic["primary"]["col"] > 0
    assert 0.0 < diagnostic["confidence"] <= 1.0
    assert clean["suppressions"]  # the clean verdict cites its proof rules


def test_stats_telemetry_counts_rules_and_phases(racy_file, clean_file, capsys):
    assert main(["--json", "--stats", racy_file, clean_file]) == 0
    stats = json.loads(capsys.readouterr().out)["stats"]
    assert stats["files"] == 2
    assert stats["racy"] == 1
    assert stats["failures"] == 0
    assert stats["rule_fires"].get("DRD-LOOP-CARRIED", 0) >= 1
    assert stats["regions"] == 2
    assert stats["max_phases"] >= 1


def test_parse_failure_is_reported_not_raised(tmp_path, capsys):
    bad = tmp_path / "bad.c"
    bad.write_text("int main( {{{", encoding="utf-8")
    assert main([str(bad)]) == 0  # without --self-lint failures are reported
    assert "ERROR" in capsys.readouterr().out


def test_self_lint_fails_on_analyzer_crash(tmp_path, capsys):
    bad = tmp_path / "bad.c"
    bad.write_text("int main( {{{", encoding="utf-8")
    assert main(["--self-lint", str(bad)]) == 1
    assert "analyzer crashed" in capsys.readouterr().out


def test_self_lint_passes_on_well_formed_inputs(racy_file, clean_file, capsys):
    assert main(["--self-lint", racy_file, clean_file]) == 0
    assert "[analyze-lint] ok" in capsys.readouterr().out


def test_parallel_fanout_preserves_input_order(racy_file, clean_file):
    items = [("racy.c", RACY), ("clean.c", CLEAN)] * 3
    results = run_analyze(items, jobs=4)
    assert [r.name for r in results] == [name for name, _ in items]
    verdicts = [r.report.has_race for r in results]
    assert verdicts == [True, False] * 3


def test_no_inputs_is_a_usage_error():
    with pytest.raises(SystemExit):
        main([])
