"""MHP phase partitioning and task-ordering tests.

Pins the barrier-delimited phase model (explicit ``barrier``, implicit
worksharing-end barriers, ``nowait`` suppression) and the task ordering
edges (``taskwait``, ``taskgroup``, ``depend``, sequenced-before-spawn)
through both the access extractor and the end-to-end detector verdicts.
"""

from repro.analysis import StaticRaceDetector, extract_access_model
from repro.analysis.mhp import Ordering, classify_pair
from repro.cparse import parse


TWO_PHASE = """
int main()
{
  int i;
  int len = 64;
  int a[64];
  int b[64];
#pragma omp parallel
  {
#pragma omp for
    for (i = 0; i < len; i++)
      a[i] = i;
#pragma omp for
    for (i = 0; i < len; i++)
      b[i] = a[i] + 1;
  }
  return 0;
}
"""

TWO_PHASE_NOWAIT = TWO_PHASE.replace("#pragma omp for\n    for (i = 0; i < len; i++)\n      a[i] = i;", "#pragma omp for nowait\n    for (i = 0; i < len; i++)\n      a[i] = i;")

EXPLICIT_BARRIER = """
int main()
{
  int done = 0;
  int seen = 0;
#pragma omp parallel
  {
#pragma omp master
    done = 1;
#pragma omp barrier
#pragma omp critical
    seen = seen + done;
  }
  return 0;
}
"""

NO_BARRIER = """
int main()
{
  int done = 0;
  int seen = 0;
#pragma omp parallel
  {
#pragma omp master
    done = 1;
#pragma omp critical
    seen = seen + done;
  }
  return 0;
}
"""

TASKWAIT = """
int main()
{
  int result = 0;
  int out = 0;
#pragma omp parallel
  {
#pragma omp single
    {
#pragma omp task
      result = 42;
#pragma omp taskwait
      out = result;
    }
  }
  return 0;
}
"""

NO_TASKWAIT = """
int main()
{
  int result = 0;
  int out = 0;
#pragma omp parallel
  {
#pragma omp single
    {
#pragma omp task
      result = 42;
      out = result;
    }
  }
  return 0;
}
"""

TASKGROUP = """
int main()
{
  int result = 0;
  int out = 0;
#pragma omp parallel
  {
#pragma omp single
    {
#pragma omp taskgroup
      {
#pragma omp task
        result = 42;
      }
      out = result;
    }
  }
  return 0;
}
"""

DEPEND_CHAIN = """
int main()
{
  int i;
  int buffer = 0;
  int out = 0;
#pragma omp parallel
  {
#pragma omp single
    {
#pragma omp task depend(out: buffer)
      buffer = 7;
#pragma omp task depend(in: buffer)
      out = buffer;
    }
  }
  return 0;
}
"""

SEQUENCED_BEFORE = """
int main()
{
  int result = 0;
  int out = 0;
#pragma omp parallel
  {
#pragma omp single
    {
      out = result;
#pragma omp task
      result = 42;
    }
  }
  return 0;
}
"""


def _detect(code: str):
    return StaticRaceDetector().analyze_source(code)


class TestPhasePartitioning:
    def test_worksharing_end_barrier_separates_phases(self):
        model = extract_access_model(parse(TWO_PHASE))
        phases = {s.context.phase for s in model.sites if s.variable == "a"}
        assert phases == {0, 1}
        assert model.regions[1].phase_count >= 2

    def test_cross_phase_pairs_are_ordered(self):
        model = extract_access_model(parse(TWO_PHASE))
        a_sites = [s for s in model.sites if s.variable == "a"]
        write = next(s for s in a_sites if s.is_write)
        read = next(s for s in a_sites if not s.is_write)
        ordering, rule = classify_pair(write.context, read.context, model.regions[1])
        assert ordering is Ordering.ORDERED
        assert rule == "DRD-PHASE-ORDERED"

    def test_two_phase_program_is_clean(self):
        report = _detect(TWO_PHASE)
        assert not report.has_race
        assert report.suppressions["DRD-PHASE-ORDERED"] >= 1

    def test_nowait_suppresses_the_implicit_barrier(self):
        report = _detect(TWO_PHASE_NOWAIT)
        assert report.has_race
        assert "a" in report.variables()

    def test_explicit_barrier_orders_master_write(self):
        report = _detect(EXPLICIT_BARRIER)
        assert not report.has_race
        assert report.suppressions["DRD-PHASE-ORDERED"] >= 1

    def test_missing_barrier_is_a_race(self):
        report = _detect(NO_BARRIER)
        assert report.has_race
        assert "done" in report.variables()


class TestTaskOrdering:
    def test_taskwait_orders_task_against_reader(self):
        report = _detect(TASKWAIT)
        assert not report.has_race
        assert report.suppressions["DRD-TASKWAIT-ORDERED"] >= 1

    def test_missing_taskwait_is_a_race(self):
        report = _detect(NO_TASKWAIT)
        assert report.has_race
        assert "result" in report.variables()

    def test_taskgroup_end_completes_the_task(self):
        report = _detect(TASKGROUP)
        assert not report.has_race
        assert report.suppressions["DRD-TASKGROUP-ORDERED"] >= 1

    def test_depend_clauses_order_sibling_tasks(self):
        report = _detect(DEPEND_CHAIN)
        assert not report.has_race
        assert report.suppressions["DRD-DEPEND-ORDERED"] >= 1

    def test_access_sequenced_before_spawn_is_ordered(self):
        report = _detect(SEQUENCED_BEFORE)
        assert not report.has_race
        assert report.suppressions["DRD-SEQUENCED-BEFORE-TASK"] >= 1

    def test_task_records_capture_spawn_facts(self):
        model = extract_access_model(parse(DEPEND_CHAIN))
        tasks = model.regions[1].tasks
        assert len(tasks) == 2
        first, second = sorted(tasks.values(), key=lambda t: t.task_id)
        assert "buffer" in first.depend_out
        assert "buffer" in second.depend_in
        assert not first.multiple  # spawned once, inside single
