"""Detector-vs-ground-truth scoreboard on the full generated corpus.

This is the committed accuracy snapshot for the phase-aware analyzer.  The
exact confusion-matrix counts are pinned so any regression (a new false
positive, a lost true positive) fails loudly with the record names.
"""

import pytest

from repro.analysis import StaticRaceDetector
from repro.corpus import CorpusConfig, build_corpus


@pytest.fixture(scope="module")
def scoreboard():
    detector = StaticRaceDetector()
    outcomes = {"tp": [], "fp": [], "tn": [], "fn": [], "crash": []}
    for record in build_corpus(CorpusConfig()):
        try:
            report = detector.analyze_source(record.code)
        except Exception:
            outcomes["crash"].append(record.name)
            continue
        if record.has_race:
            outcomes["tp" if report.has_race else "fn"].append(record.name)
        else:
            outcomes["fp" if report.has_race else "tn"].append(record.name)
    return outcomes


def test_analyzer_never_crashes_on_the_corpus(scoreboard):
    assert scoreboard["crash"] == []


def test_full_recall_on_racy_records(scoreboard):
    assert scoreboard["fn"] == []
    assert len(scoreboard["tp"]) == 102


def test_zero_false_positives_on_race_free_records(scoreboard):
    assert scoreboard["fp"] == []
    assert len(scoreboard["tn"]) == 99


def test_confusion_matrix_snapshot(scoreboard):
    # PR 10 snapshot: n=201 tp=102 fp=0 tn=99 fn=0 (was fp=22 before the
    # phase-aware rewrite).  Regenerate deliberately if the corpus changes.
    counts = {key: len(names) for key, names in scoreboard.items()}
    assert counts == {"tp": 102, "fp": 0, "tn": 99, "fn": 0, "crash": 0}
