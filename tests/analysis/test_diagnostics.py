"""Diagnostic-engine tests: rule registry, per-rule minimal programs,
and the OpenMP clause matrix.

Each race rule ID is pinned to a minimal program that fires exactly it, and
the clause matrix covers the sharing model: ``reduction``, ``lastprivate``,
``firstprivate``, ``atomic`` update granularity, ``linear``, ``collapse`` and
``nowait``.
"""

import pytest

from repro.analysis import StaticRaceDetector
from repro.analysis.diagnostics import (
    ASSUMPTION_RULES,
    RACE_RULES,
    SUPPRESSION_RULES,
    Diagnostic,
    Span,
    rule_confidence,
)


def _detect(code: str):
    return StaticRaceDetector().analyze_source(code)


class TestRuleRegistry:
    def test_registries_are_disjoint_and_prefixed(self):
        assert not set(RACE_RULES) & set(SUPPRESSION_RULES)
        for rule_id in list(RACE_RULES) + list(SUPPRESSION_RULES):
            assert rule_id.startswith("DRD-")

    def test_assumption_rules_are_suppression_rules(self):
        assert ASSUMPTION_RULES <= set(SUPPRESSION_RULES)

    def test_confidences_are_calibrated_probabilities(self):
        for spec in list(RACE_RULES.values()) + list(SUPPRESSION_RULES.values()):
            assert 0.5 < spec.confidence <= 1.0

    def test_rule_confidence_falls_back_for_unknown_ids(self):
        assert rule_confidence("DRD-NOT-A-RULE") == pytest.approx(0.7)
        assert rule_confidence("DRD-SHARED-SCALAR") == pytest.approx(
            RACE_RULES["DRD-SHARED-SCALAR"].confidence
        )

    def test_diagnostic_to_dict_schema(self):
        diagnostic = Diagnostic(
            rule_id="DRD-LOOP-CARRIED",
            message="loop-carried array dependence across concurrent iterations",
            variable="a",
            primary=Span(line=12, col=5, text="a[i]"),
            secondary=Span(line=12, col=13, text="a[i+1]"),
            confidence=0.88,
            region=1,
        )
        payload = diagnostic.to_dict()
        assert payload["rule"] == "DRD-LOOP-CARRIED"
        assert payload["variable"] == "a"
        assert payload["primary"] == {"line": 12, "col": 5, "expr": "a[i]"}
        assert payload["secondary"] == {"line": 12, "col": 13, "expr": "a[i+1]"}
        assert payload["confidence"] == pytest.approx(0.88)
        assert payload["region"] == 1


#: Minimal program per race rule.  Each entry must fire the named rule.
RACY_PROGRAMS = {
    "DRD-SHARED-SCALAR": """
int main()
{
  int i;
  int sum = 0;
#pragma omp parallel for
  for (i = 0; i < 100; i++)
    sum = sum + i;
  return 0;
}
""",
    "DRD-LOOP-CARRIED": """
int main()
{
  int i;
  int a[100];
#pragma omp parallel for
  for (i = 0; i < 99; i++)
    a[i] = a[i + 1] + 1;
  return 0;
}
""",
    "DRD-WRITE-WRITE": """
int main()
{
  int i;
  int a[100];
#pragma omp parallel for
  for (i = 0; i < 100; i++)
    a[0] = i;
  return 0;
}
""",
    "DRD-SUBSCRIPT-OPAQUE": """
int main()
{
  int i;
  int a[100];
  int idx[100];
#pragma omp parallel for
  for (i = 0; i < 100; i++)
    a[idx[i]] = a[idx[i]] + i;
  return 0;
}
""",
    "DRD-TASK-UNORDERED": """
int main()
{
  int result = 0;
  int out = 0;
#pragma omp parallel
  {
#pragma omp single
    {
#pragma omp task
      result = 42;
      out = result;
    }
  }
  return 0;
}
""",
    "DRD-SECTION-OVERLAP": """
int main()
{
  int shared = 0;
#pragma omp parallel sections
  {
#pragma omp section
    shared = 1;
#pragma omp section
    shared = 2;
  }
  return 0;
}
""",
    "DRD-SIMD-LANE": """
int main()
{
  int i;
  int a[100];
#pragma omp simd safelen(4)
  for (i = 2; i < 100; i++)
    a[i] = a[i - 2] + 1;
  return 0;
}
""",
}


class TestRaceRuleMinimalPrograms:
    @pytest.mark.parametrize("rule_id", sorted(RACY_PROGRAMS))
    def test_minimal_program_fires_rule(self, rule_id):
        report = _detect(RACY_PROGRAMS[rule_id])
        assert report.has_race
        fired = {d.rule_id for d in report.diagnostics}
        assert rule_id in fired

    @pytest.mark.parametrize("rule_id", sorted(RACY_PROGRAMS))
    def test_diagnostics_carry_spans_and_calibrated_confidence(self, rule_id):
        report = _detect(RACY_PROGRAMS[rule_id])
        for diagnostic in report.diagnostics:
            assert diagnostic.primary.line > 0
            assert diagnostic.primary.col > 0
            assert diagnostic.primary.text
            assert diagnostic.confidence == pytest.approx(
                rule_confidence(diagnostic.rule_id)
            )

    def test_report_confidence_tracks_strongest_rule(self):
        report = _detect(RACY_PROGRAMS["DRD-SHARED-SCALAR"])
        assert report.confidence == pytest.approx(
            max(d.confidence for d in report.diagnostics)
        )

    def test_pair_diagnostics_carry_both_spans(self):
        report = _detect(RACY_PROGRAMS["DRD-LOOP-CARRIED"])
        carried = [
            d for d in report.diagnostics if d.rule_id == "DRD-LOOP-CARRIED"
        ]
        assert carried
        assert carried[0].secondary is not None
        assert carried[0].primary.text != carried[0].secondary.text


class TestClauseMatrix:
    def test_reduction_clause_privatizes_the_accumulator(self):
        report = _detect(
            """
int main()
{
  int i;
  int sum = 0;
#pragma omp parallel for reduction(+: sum)
  for (i = 0; i < 100; i++)
    sum = sum + i;
  return 0;
}
"""
        )
        assert not report.has_race

    def test_lastprivate_clause_privatizes_the_scalar(self):
        report = _detect(
            """
int main()
{
  int i;
  int x = 0;
#pragma omp parallel for lastprivate(x)
  for (i = 0; i < 100; i++)
    x = i * 2;
  return 0;
}
"""
        )
        assert not report.has_race

    def test_firstprivate_clause_privatizes_the_scalar(self):
        report = _detect(
            """
int main()
{
  int i;
  int x = 5;
  int a[100];
#pragma omp parallel for firstprivate(x)
  for (i = 0; i < 100; i++)
    a[i] = x + i;
  return 0;
}
"""
        )
        assert not report.has_race

    def test_atomic_update_protects_the_accumulator(self):
        report = _detect(
            """
int main()
{
  int i;
  int sum = 0;
#pragma omp parallel for
  for (i = 0; i < 100; i++)
  {
#pragma omp atomic update
    sum = sum + i;
  }
  return 0;
}
"""
        )
        assert not report.has_race
        assert report.suppressions["DRD-MUTEX-ATOMIC"] >= 1

    def test_linear_clause_privatizes_the_induction(self):
        report = _detect(
            """
int main()
{
  int i;
  int j = 0;
  int a[200];
#pragma omp parallel for linear(j: 2)
  for (i = 0; i < 100; i++)
    a[j] = i;
  return 0;
}
"""
        )
        assert not report.has_race

    def test_collapse_distributes_both_induction_variables(self):
        report = _detect(
            """
int main()
{
  int i;
  int j;
  int c[8][8];
#pragma omp parallel for collapse(2)
  for (i = 0; i < 8; i++)
    for (j = 0; j < 8; j++)
      c[i][j] = i + j;
  return 0;
}
"""
        )
        assert not report.has_race

    def test_collapse_still_races_when_a_variable_is_dropped(self):
        # c[j] under collapse(2): the tuple (j) is not injective over (i, j).
        report = _detect(
            """
int main()
{
  int i;
  int j;
  int c[8];
#pragma omp parallel for collapse(2)
  for (i = 0; i < 8; i++)
    for (j = 0; j < 8; j++)
      c[j] = i + j;
  return 0;
}
"""
        )
        assert report.has_race
        assert "c" in report.variables()

    def test_nowait_makes_the_clean_variant_racy(self):
        clean = """
int main()
{
  int i;
  int len = 64;
  int a[64];
  int b[64];
#pragma omp parallel
  {
#pragma omp for
    for (i = 0; i < len; i++)
      a[i] = i;
#pragma omp for
    for (i = 0; i < len; i++)
      b[i] = a[i] + 1;
  }
  return 0;
}
"""
        racy = clean.replace("#pragma omp for\n", "#pragma omp for nowait\n", 1)
        assert not _detect(clean).has_race
        assert _detect(racy).has_race
