"""Tests for metrics, pair matching, cross-validation and experiment drivers."""

import pytest
from hypothesis import given, strategies as st

from repro.dataset import DRBMLDataset
from repro.dataset.records import DRBMLRecord, VarPairRecord
from repro.eval import (
    ConfusionCounts,
    evaluate_model_prompt,
    format_confusion_table,
    format_crossval_table,
    mean_std,
    pairs_correct,
    run_finetune_crossval,
    run_table2,
)
from repro.eval.experiments import PromptEvaluationRow, default_subset
from repro.eval.matching import pair_matches
from repro.eval.metrics import FoldStatistics
from repro.llm import create_model
from repro.prompting import PromptStrategy
from repro.prompting.parsing import ParsedPairs


class TestConfusionCounts:
    def test_basic_metrics(self):
        counts = ConfusionCounts(tp=66, fp=55, tn=43, fn=34)
        assert counts.recall == pytest.approx(0.660, abs=1e-3)
        assert counts.precision == pytest.approx(0.545, abs=1e-3)
        assert counts.f1 == pytest.approx(0.597, abs=1e-3)

    def test_add_with_correct_positive_flag(self):
        counts = ConfusionCounts()
        counts.add(True, True, correct_positive=False)
        assert counts.tp == 0 and counts.fn == 1

    def test_add_negative_cases(self):
        counts = ConfusionCounts()
        counts.add(False, True)
        counts.add(False, False)
        assert counts.fp == 1 and counts.tn == 1

    def test_zero_division_guard(self):
        empty = ConfusionCounts()
        assert empty.recall == 0.0 and empty.precision == 0.0 and empty.f1 == 0.0

    def test_addition_operator(self):
        total = ConfusionCounts(tp=1, fp=2, tn=3, fn=4) + ConfusionCounts(tp=4, fp=3, tn=2, fn=1)
        assert (total.tp, total.fp, total.tn, total.fn) == (5, 5, 5, 5)

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=10))
    def test_mean_std_bounds(self, values):
        mean, std = mean_std(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9
        assert std >= 0

    def test_fold_statistics_row(self):
        stats = FoldStatistics.from_counts(
            [ConfusionCounts(tp=10, fp=0, tn=10, fn=0), ConfusionCounts(tp=5, fp=5, tn=5, fn=5)]
        )
        row = stats.as_row()
        assert len(row) == 6 and row[0] == pytest.approx(0.75)


class TestPairMatching:
    def _truth(self):
        return VarPairRecord(
            name=["a[i+1]", "a[i]"], line=[12, 12], col=[12, 5], operation=["R", "W"]
        )

    def test_matching_pair(self):
        assert pair_matches(("a[i]", "a[i+1]"), (12, 12), ("W", "R"), self._truth())

    def test_wrong_line_rejected(self):
        assert not pair_matches(("a[i]", "a[i+1]"), (3, 3), ("W", "R"), self._truth())

    def test_wrong_variable_rejected(self):
        assert not pair_matches(("b", "b"), (12, 12), ("W", "R"), self._truth())

    def test_missing_operations_tolerated(self):
        assert pair_matches(("a", "a"), (12, 12), None, self._truth())

    def test_pairs_correct_requires_race_record(self):
        record = DRBMLRecord(
            ID=1, name="x", DRB_code="", trimmed_code="", code_len=0,
            data_race=0, data_race_label="N1",
        )
        parsed = ParsedPairs(race=True, names=[("a", "a")], lines=[(1, 1)])
        assert not pairs_correct(parsed, record)


class TestExperimentDrivers:
    @pytest.fixture(scope="class")
    def tiny_dataset(self):
        subset = default_subset()
        positives = [r for r in subset.records if r.has_race][:10]
        negatives = [r for r in subset.records if not r.has_race][:10]
        return DRBMLDataset(records=positives + negatives)

    def test_evaluate_model_prompt_counts_everything(self, tiny_dataset):
        counts = evaluate_model_prompt(
            create_model("gpt-4"), PromptStrategy.BP1, tiny_dataset.records
        )
        assert counts.total == len(tiny_dataset.records)

    def test_run_table2_produces_two_rows(self, tiny_dataset):
        rows = run_table2(tiny_dataset)
        assert [r.prompt for r in rows] == ["BP1", "BP2"]
        assert all(r.counts.total == 20 for r in rows)

    def test_crossval_result_has_five_folds(self, tiny_dataset):
        result = run_finetune_crossval(
            tiny_dataset, "llama2-7b", kind="basic", n_folds=5, seed=1
        )
        assert len(result.base_folds) == 5 and len(result.tuned_folds) == 5
        rows = result.as_rows()
        assert "llama2-7b-FT" in rows

    def test_crossval_rejects_bad_kind(self, tiny_dataset):
        with pytest.raises(ValueError):
            run_finetune_crossval(tiny_dataset, "llama2-7b", kind="bogus")

    def test_reporting_formats(self):
        row = PromptEvaluationRow(
            model="gpt-4", prompt="BP1", counts=ConfusionCounts(tp=1, fp=2, tn=3, fn=4)
        )
        table = format_confusion_table([row], title="T")
        assert "gpt-4" in table and "BP1" in table
        cv = format_crossval_table({"m": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)}, title="CV")
        assert "0.500" in cv
