"""Tests for the simulated model zoo, behavioral calibration and fine-tuning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset import DRBMLDataset
from repro.dataset.pairs import build_basic_pairs
from repro.llm import (
    FineTuneConfig,
    FineTuner,
    LowRankAdapter,
    available_models,
    create_model,
    extract_code_from_prompt,
    extract_features,
    profile_for,
)
from repro.llm.behavior import HEURISTIC_FPR, HEURISTIC_TPR, deterministic_uniform
from repro.llm.features import hashed_ngram_vector
from repro.prompting import PromptStrategy, parse_yes_no, render_prompt


RACY_CODE = """#include <stdio.h>
int main()
{
  int i;
  int len = 64;
  int a[64];
  for (i = 0; i < len; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < len - 1; i++)
    a[i] = a[i+1] + 1;
  return 0;
}
"""

SAFE_CODE = """#include <stdio.h>
int main()
{
  int i;
  int sum = 0;
#pragma omp parallel for reduction(+:sum)
  for (i = 0; i < 64; i++)
    sum += i;
  return 0;
}
"""


class TestFeatures:
    def test_extract_code_from_prompt_preserves_line_numbers(self):
        prompt = render_prompt(PromptStrategy.ADVANCED, RACY_CODE)
        code = extract_code_from_prompt(prompt)
        assert code.splitlines()[0].startswith("#include")
        # A trailing blank line from the template is harmless; the leading
        # lines (which carry the ground-truth line numbers) must be identical.
        assert code.rstrip("\n").splitlines() == RACY_CODE.rstrip("\n").splitlines()

    def test_heuristic_flags_racy_code(self):
        assert extract_features(RACY_CODE).heuristic_race

    def test_heuristic_accepts_reduction(self):
        features = extract_features(SAFE_CODE)
        assert not features.heuristic_race
        assert features.has_reduction_clause

    def test_parse_failure_degrades_gracefully(self):
        features = extract_features("not C at all @@@")
        assert not features.parses and not features.heuristic_race

    def test_ngram_vector_shape_and_norm(self):
        vec = hashed_ngram_vector(RACY_CODE, dim=128)
        assert vec.shape == (128,)
        assert np.isclose(np.linalg.norm(vec), 1.0)

    @given(st.text(alphabet="abimn +=();[]\n", min_size=1, max_size=80))
    @settings(max_examples=25)
    def test_ngram_vector_deterministic(self, text):
        assert np.allclose(hashed_ngram_vector(text), hashed_ngram_vector(text))

    def test_hot_paths_reuse_module_level_tokenizer(self, monkeypatch):
        """Micro-regression guard: featurisation sits in the fine-tuning hot
        loop and must not construct a fresh CodeTokenizer per call."""
        import repro.llm.features as features_module
        from repro.dataset.tokenizer import CodeTokenizer

        constructions = []

        class CountingTokenizer(CodeTokenizer):
            def __init__(self, *args, **kwargs):
                constructions.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(features_module, "CodeTokenizer", CountingTokenizer)
        reference = hashed_ngram_vector(RACY_CODE, dim=64)
        for _ in range(5):
            hashed_ngram_vector(RACY_CODE, dim=64)
            extract_features(RACY_CODE)
        assert constructions == []  # the shared module-level instance served all
        # And the shared instance produces the exact same vectors as a
        # fresh tokenizer would (it is frozen and stateless).
        assert np.array_equal(reference, hashed_ngram_vector(RACY_CODE, dim=64))


class TestBehavior:
    def test_profiles_recover_paper_targets(self):
        profile = profile_for("gpt-4", PromptStrategy.BP1)
        tpr = HEURISTIC_TPR * profile.p_yes_given_evidence + (
            1 - HEURISTIC_TPR
        ) * profile.p_yes_given_no_evidence
        fpr = HEURISTIC_FPR * profile.p_yes_given_evidence + (
            1 - HEURISTIC_FPR
        ) * profile.p_yes_given_no_evidence
        assert tpr == pytest.approx(0.770, abs=1e-6)
        assert fpr == pytest.approx(0.286, abs=1e-6)

    def test_unknown_strategy_falls_back_to_bp1(self):
        assert profile_for("gpt-4", PromptStrategy.BP1).p_yes_given_evidence == pytest.approx(
            profile_for("gpt-4", "nonexistent").p_yes_given_evidence  # type: ignore[arg-type]
        )

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            profile_for("not-a-model", PromptStrategy.BP1)

    def test_deterministic_uniform_is_stable_and_bounded(self):
        a = deterministic_uniform("m", "s", "x")
        b = deterministic_uniform("m", "s", "x")
        c = deterministic_uniform("m", "s", "y")
        assert a == b and a != c and 0.0 <= a < 1.0


class TestZoo:
    def test_registry_contains_the_four_paper_models(self):
        assert set(available_models()) == {
            "gpt-3.5-turbo", "gpt-4", "starchat-beta", "llama2-7b",
        }

    def test_create_model_unknown_raises(self):
        with pytest.raises(KeyError):
            create_model("gpt-99")

    def test_generate_returns_parseable_verdict(self):
        model = create_model("gpt-4")
        response = model.generate(render_prompt(PromptStrategy.BP1, RACY_CODE))
        assert parse_yes_no(response) is not None

    def test_generation_is_deterministic(self):
        model = create_model("gpt-3.5-turbo")
        prompt = render_prompt(PromptStrategy.BP1, RACY_CODE)
        assert model.generate(prompt) == model.generate(prompt)

    def test_uncalibrated_model_follows_heuristic(self):
        model = create_model("gpt-4", calibrated=False)
        yes = model.generate(render_prompt(PromptStrategy.BP1, RACY_CODE))
        no = model.generate(render_prompt(PromptStrategy.BP1, SAFE_CODE))
        assert parse_yes_no(yes) is True
        assert parse_yes_no(no) is False

    def test_analysis_request_returns_dependence_text(self):
        model = create_model("gpt-4")
        response = model.generate(render_prompt(PromptStrategy.AP2, RACY_CODE))
        assert "dependence" in response.lower()
        assert parse_yes_no(response) is None or "line" in response

    def test_score_is_probability(self):
        model = create_model("starchat-beta")
        assert 0.0 <= model.score(RACY_CODE) <= 1.0


class TestAdapter:
    def test_training_reduces_loss_on_separable_data(self):
        rng = np.random.default_rng(0)
        pos = rng.normal(0.5, 0.1, size=(40, 64))
        neg = rng.normal(-0.5, 0.1, size=(40, 64))
        features = np.vstack([pos, neg])
        labels = np.array([1.0] * 40 + [0.0] * 40)
        adapter = LowRankAdapter(input_dim=64, rank=16, dropout=0.0, seed=0)
        adapter.fit(features, labels, epochs=60, learning_rate=0.5)
        preds = adapter.predict_proba(features) > 0.5
        assert (preds == labels.astype(bool)).mean() > 0.9

    def test_mismatched_shapes_rejected(self):
        adapter = LowRankAdapter(input_dim=8, rank=2)
        with pytest.raises(ValueError):
            adapter.fit(np.zeros((3, 8)), np.zeros(4))

    def test_predict_single_vector_returns_float(self):
        adapter = LowRankAdapter(input_dim=8, rank=2)
        assert isinstance(adapter.predict_proba(np.zeros(8)), float)


class TestFineTuning:
    @pytest.fixture(scope="class")
    def small_dataset(self):
        full = DRBMLDataset.build_default().token_subset()
        return DRBMLDataset(records=full.records[:60])

    def test_finetuner_produces_model_with_blended_score(self, small_dataset):
        pairs = build_basic_pairs(small_dataset.records)
        tuner = FineTuner(base=create_model("starchat-beta"))
        tuned = tuner.fit(pairs)
        assert tuned.name == "starchat-beta-ft"
        score = tuned.score(small_dataset.records[0].trimmed_code)
        assert 0.0 <= score <= 1.0
        assert tuner.history and tuner.history[0] > 0

    def test_config_per_model_learning_rates_differ(self):
        starchat = FineTuneConfig.for_model("starchat-beta")
        llama = FineTuneConfig.for_model("llama2-7b")
        assert starchat.learning_rate < llama.learning_rate
        assert starchat.lora_rank == 64 and starchat.dropout == pytest.approx(0.1)

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            FineTuner(base=create_model("llama2-7b")).fit([])

    def test_tuned_model_generates_parseable_output(self, small_dataset):
        pairs = build_basic_pairs(small_dataset.records)
        tuned = FineTuner(base=create_model("llama2-7b")).fit(pairs)
        record = small_dataset.records[0]
        response = tuned.generate(render_prompt(PromptStrategy.BP1, record.trimmed_code))
        assert parse_yes_no(response) is not None
