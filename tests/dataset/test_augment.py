"""Tests for the DRB-ML augmentation transforms (paper future-work feature)."""

import pytest

from repro.cparse import parse
from repro.dataset import DRBMLDataset
from repro.dataset.augment import (
    AugmentationConfig,
    augment_dataset,
    augment_record,
    rename_identifiers,
    scale_loop_bounds,
)


@pytest.fixture(scope="module")
def subset():
    return DRBMLDataset.build_default().token_subset()


class TestRename:
    def test_renames_user_variables_only(self, subset):
        record = next(r for r in subset.records if "antidep1" in r.name)
        renamed, mapping = rename_identifiers(record.DRB_code)
        assert "printf" in renamed
        assert mapping and all(old not in ("printf", "main") for old in mapping)
        # the array variable no longer appears under its old name as a word
        array_name = record.var_pairs[0].name[0].split("[")[0]
        assert f" {array_name}[" not in renamed

    def test_renamed_code_still_parses(self, subset):
        record = next(r for r in subset.records if "sumnoreduction" in r.name)
        renamed, _ = rename_identifiers(record.DRB_code)
        assert parse(renamed).main is not None

    def test_rename_is_deterministic(self, subset):
        record = subset.records[0]
        a, _ = rename_identifiers(record.DRB_code, salt=3)
        b, _ = rename_identifiers(record.DRB_code, salt=3)
        assert a == b


class TestScale:
    def test_scales_array_dims_and_len(self):
        code = "int len = 100;\nint a[100];\nfor (i = 0; i < len; i++) a[i] = a[i+4];\n"
        scaled = scale_loop_bounds(code, factor=2)
        assert "int len = 200;" in scaled
        assert "a[200]" in scaled
        assert "a[i+4]" in scaled  # small offsets untouched

    def test_small_constants_preserved(self):
        code = "int bins[8];\nbins[i % 8] = 1;\n"
        assert scale_loop_bounds(code) == code


class TestAugmentRecords:
    def test_augmented_records_keep_labels(self, subset):
        sample = subset.records[:30]
        augmented = augment_dataset(sample, AugmentationConfig())
        assert augmented, "augmentation should produce variants"
        by_origin = {a.origin_name for a in augmented}
        assert by_origin <= {r.name for r in sample}
        for variant in augmented:
            origin = next(r for r in sample if r.name == variant.origin_name)
            assert variant.record.data_race == origin.data_race
            assert variant.record.name != origin.name

    def test_augmented_pair_locations_are_consistent(self, subset):
        racy = [r for r in subset.records if r.has_race][:25]
        augmented = augment_dataset(racy, AugmentationConfig())
        checked = 0
        for variant in augmented:
            lines = variant.record.trimmed_code.splitlines()
            for pair in variant.record.var_pairs:
                for name, line, col in zip(pair.name, pair.line, pair.col):
                    snippet = lines[line - 1][col - 1 : col - 1 + len(name)]
                    assert snippet == name, variant.record.name
                    checked += 1
        assert checked > 0

    def test_augmented_code_parses(self, subset):
        sample = subset.records[:15]
        for variant in augment_dataset(sample):
            assert parse(variant.record.DRB_code).main is not None

    def test_variant_cap_respected(self, subset):
        config = AugmentationConfig(max_variants_per_record=1)
        variants = augment_record(subset.records[0], config)
        assert len(variants) <= 1

    def test_token_limit_filter(self, subset):
        config = AugmentationConfig(token_limit=1)
        assert augment_record(subset.records[0], config) == []
