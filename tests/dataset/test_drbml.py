"""Tests for the DRB-ML pipeline: trimming, labels, records, folds, subset."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.corpus import CorpusConfig, build_corpus
from repro.dataset import (
    DRBMLDataset,
    StratifiedKFold,
    build_advanced_pairs,
    build_basic_pairs,
    count_tokens,
    scrape_var_pairs,
    trim_comments,
)
from repro.dataset.records import DRBMLRecord, VarPairRecord
from repro.dataset.templates import render_advanced_ft_response, render_basic_ft_response


@pytest.fixture(scope="module")
def dataset():
    return DRBMLDataset.build_default(CorpusConfig())


@pytest.fixture(scope="module")
def subset(dataset):
    return dataset.token_subset()


class TestTrim:
    def test_removes_block_and_line_comments(self):
        src = "/* header */\nint x; // trailing\n// whole line\nint y;\n"
        result = trim_comments(src)
        assert "header" not in result.trimmed_code
        assert "trailing" not in result.trimmed_code
        assert "int x;" in result.trimmed_code and "int y;" in result.trimmed_code

    def test_line_map_accounts_for_removed_lines(self):
        src = "/* one */\n/* two */\nint x;\nint y;\n"
        result = trim_comments(src)
        assert result.map_line(3) == 1
        assert result.map_line(4) == 2
        assert result.map_line(1) is None

    def test_columns_preserved(self):
        src = "int a;\n  a = 1; /* c */\n"
        result = trim_comments(src)
        assert result.trimmed_code.splitlines()[1].startswith("  a = 1;")

    @given(st.text(alphabet="abc ;\n", max_size=100))
    def test_trimmed_never_longer(self, text):
        result = trim_comments(text)
        assert len(result.trimmed_code) <= len(text) + 1


class TestLabels:
    def test_scrapes_paper_listing_format(self):
        code = "/*\nA loop.\nData race pair: a[i+1]@64:10:R vs. a[i]@64:5:W\n*/\nint main(){}"
        pairs = scrape_var_pairs(code)
        assert len(pairs) == 1
        assert pairs[0].first.name == "a[i+1]" and pairs[0].first.line == 64
        assert pairs[0].second.operation == "W"

    def test_names_with_spaces(self):
        code = "/*\nData race pair: hist[i % 8]@10:3:W vs. hist[i % 8]@10:3:R\n*/\n"
        pairs = scrape_var_pairs(code)
        assert pairs[0].first.name == "hist[i % 8]"

    def test_no_pairs_for_race_free_header(self):
        assert scrape_var_pairs("/*\nNo data race present.\n*/\nint main(){}") == []


class TestTokenizer:
    def test_counts_scale_with_length(self):
        short = count_tokens("int main() { return 0; }")
        longer = count_tokens("int main() { int a[100]; return 0; }" * 10)
        assert 0 < short < longer

    def test_long_identifiers_split(self):
        assert count_tokens("averyveryverylongidentifiername") >= 4


class TestRecords:
    def test_record_schema_roundtrip(self, dataset):
        record = dataset.records[0]
        clone = DRBMLRecord.from_json(record.to_json())
        assert clone.name == record.name
        assert clone.data_race == record.data_race
        assert len(clone.var_pairs) == len(record.var_pairs)

    def test_id_zero_padded_in_json(self, dataset):
        payload = json.loads(dataset.records[0].to_json())
        assert payload["ID"] == f"{dataset.records[0].ID:03d}"

    def test_var_pair_requires_two_entries(self):
        with pytest.raises(ValueError):
            VarPairRecord(name=["a"], line=[1], col=[1], operation=["W"])

    def test_code_len_consistency_enforced(self):
        with pytest.raises(ValueError):
            DRBMLRecord(
                ID=1, name="x", DRB_code="abc", trimmed_code="abc", code_len=5,
                data_race=0, data_race_label="N1",
            )


class TestDatasetShape:
    def test_full_dataset_has_201_records(self, dataset):
        assert len(dataset) == 201

    def test_subset_matches_paper_198(self, subset):
        assert len(subset) == 198
        assert len(subset.positives()) == 100
        assert len(subset.negatives()) == 98

    def test_positive_fraction_about_half(self, subset):
        assert subset.positive_fraction() == pytest.approx(0.505, abs=0.01)

    def test_var_pair_lines_point_at_trimmed_code(self, dataset):
        for record in dataset.records:
            lines = record.trimmed_code.splitlines()
            for pair in record.var_pairs:
                for name, line, col in zip(pair.name, pair.line, pair.col):
                    snippet = lines[line - 1][col - 1 : col - 1 + len(name)]
                    assert snippet == name, record.name

    def test_race_free_records_have_no_pairs(self, dataset):
        for record in dataset.records:
            if not record.has_race:
                assert record.var_pairs == []

    def test_save_and_load_roundtrip(self, subset, tmp_path):
        small = DRBMLDataset(records=subset.records[:5])
        small.save(tmp_path)
        loaded = DRBMLDataset.load(tmp_path)
        assert len(loaded) == 5
        assert loaded.records[0].name == small.records[0].name


class TestFolds:
    def test_paper_fold_allocation(self, subset):
        sizes = StratifiedKFold().fold_sizes([(r.name, r.data_race) for r in subset.records])
        assert sorted(sizes, reverse=True) == [(20, 20), (20, 20), (20, 20), (20, 19), (20, 19)]

    def test_folds_partition_dataset(self, subset):
        folds = subset.folds()
        all_test = [name for fold in folds for name in fold.test_names]
        assert sorted(all_test) == sorted(r.name for r in subset.records)

    def test_train_test_disjoint(self, subset):
        for fold in subset.folds():
            assert not (set(fold.test_names) & set(fold.train_names))

    @given(st.integers(10, 60), st.integers(10, 60), st.integers(2, 6))
    def test_stratification_property(self, n_pos, n_neg, k):
        items = [(f"p{i}", 1) for i in range(n_pos)] + [(f"n{i}", 0) for i in range(n_neg)]
        sizes = StratifiedKFold(n_folds=k, seed=3).fold_sizes(items)
        pos_counts = [p for p, _ in sizes]
        neg_counts = [n for _, n in sizes]
        assert sum(pos_counts) == n_pos and sum(neg_counts) == n_neg
        assert max(pos_counts) - min(pos_counts) <= 1
        assert max(neg_counts) - min(neg_counts) <= 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            StratifiedKFold().split([("a", 1), ("a", 0)])


class TestFineTuningPairs:
    def test_basic_pairs_responses_are_yes_no(self, subset):
        pairs = build_basic_pairs(subset.records[:20])
        assert all(p.response in ("yes", "no") for p in pairs)
        assert all(("yes" == p.response) == bool(p.label) for p in pairs)

    def test_advanced_pairs_embed_variable_names(self, subset):
        racy = [r for r in subset.records if r.has_race][:5]
        pairs = build_advanced_pairs(racy)
        for record, pair in zip(racy, pairs):
            assert record.var_pairs[0].name[0] in pair.response

    def test_prompt_contains_code(self, subset):
        record = subset.records[0]
        pairs = build_basic_pairs([record])
        assert record.trimmed_code.splitlines()[0] in pairs[0].prompt

    def test_response_templates(self, subset):
        racy = next(r for r in subset.records if r.has_race)
        clean = next(r for r in subset.records if not r.has_race)
        assert render_basic_ft_response(racy) == "yes"
        assert render_basic_ft_response(clean) == "no"
        assert '"data_race": 0' in render_advanced_ft_response(clean)
