"""Unit tests for the microbenchmark record types."""

import pytest
from hypothesis import given, strategies as st

from repro.corpus.microbenchmark import AccessSpec, Microbenchmark, RaceLabel, RacePair


class TestRaceLabel:
    def test_yes_labels_have_race(self):
        assert RaceLabel.Y1.has_race and RaceLabel.Y7.has_race

    def test_no_labels_have_no_race(self):
        assert not RaceLabel.N1.has_race and not RaceLabel.N5.has_race

    def test_family_digit(self):
        assert RaceLabel.Y3.family == 3
        assert RaceLabel.N6.family == 6

    def test_all_fourteen_labels_exist(self):
        assert len(list(RaceLabel)) == 14


class TestAccessSpec:
    def test_valid_spec(self):
        spec = AccessSpec(name="a[i+1]", line=64, col=10, operation="R")
        assert spec.base_name == "a"
        assert spec.drb_comment_form() == "a[i+1]@64:10:R"

    def test_invalid_operation_rejected(self):
        with pytest.raises(ValueError):
            AccessSpec(name="x", line=1, col=1, operation="RW")

    def test_invalid_line_rejected(self):
        with pytest.raises(ValueError):
            AccessSpec(name="x", line=0, col=1, operation="W")

    def test_shifted_moves_lines_only(self):
        spec = AccessSpec(name="x", line=10, col=3, operation="W")
        moved = spec.shifted(5)
        assert moved.line == 15 and moved.col == 3 and moved.name == "x"

    def test_base_name_for_scalar(self):
        assert AccessSpec(name="counter", line=2, col=2, operation="W").base_name == "counter"

    @given(st.integers(min_value=1, max_value=10_000), st.integers(min_value=0, max_value=500))
    def test_shift_is_additive(self, line, delta):
        spec = AccessSpec(name="a[i]", line=line, col=4, operation="R")
        assert spec.shifted(delta).line == line + delta


class TestRacePair:
    def test_requires_a_write(self):
        read = AccessSpec(name="a[i]", line=3, col=5, operation="R")
        with pytest.raises(ValueError):
            RacePair(read, read)

    def test_comment_form(self):
        read = AccessSpec(name="a[i+1]", line=64, col=10, operation="R")
        write = AccessSpec(name="a[i]", line=64, col=5, operation="W")
        pair = RacePair(read, write)
        assert pair.drb_comment_form() == (
            "Data race pair: a[i+1]@64:10:R vs. a[i]@64:5:W"
        )

    def test_base_names(self):
        pair = RacePair(
            AccessSpec(name="sum", line=9, col=5, operation="W"),
            AccessSpec(name="sum", line=9, col=11, operation="R"),
        )
        assert pair.base_names() == ("sum", "sum")

    def test_shifted_pair(self):
        pair = RacePair(
            AccessSpec(name="x", line=4, col=5, operation="W"),
            AccessSpec(name="x", line=6, col=5, operation="R"),
        )
        moved = pair.shifted(3)
        assert (moved.first.line, moved.second.line) == (7, 9)


class TestMicrobenchmark:
    def _pair(self):
        return RacePair(
            AccessSpec(name="a[i+1]", line=10, col=10, operation="R"),
            AccessSpec(name="a[i]", line=10, col=5, operation="W"),
        )

    def test_yes_requires_pairs(self):
        with pytest.raises(ValueError):
            Microbenchmark(index=1, name="x.c", code="int main(){}", label=RaceLabel.Y1)

    def test_no_forbids_pairs(self):
        with pytest.raises(ValueError):
            Microbenchmark(
                index=1, name="x.c", code="int main(){}", label=RaceLabel.N1,
                race_pairs=[self._pair()],
            )

    def test_drb_id_zero_padded(self):
        bench = Microbenchmark(
            index=7, name="DRB007-x-orig-yes.c", code="", label=RaceLabel.Y1,
            race_pairs=[self._pair()],
        )
        assert bench.drb_id == "007"

    def test_code_without_header_strips_leading_comment(self):
        code = "/*\nheader line\n*/\nint main()\n{\n  return 0;\n}\n"
        bench = Microbenchmark(
            index=1, name="DRB001-x-orig-no.c", code=code, label=RaceLabel.N1
        )
        stripped = bench.code_without_header()
        assert "header line" not in stripped
        assert stripped.startswith("int main()")

    def test_summary_mentions_race_state(self):
        bench = Microbenchmark(
            index=1, name="DRB001-x-orig-no.c", code="", label=RaceLabel.N2
        )
        assert "no race" in bench.summary()
