"""Corpus generation tests: size, balance, determinism, and ground-truth
consistency of every generated microbenchmark."""

import pytest

from repro.corpus import CorpusConfig, CorpusRegistry, build_corpus
from repro.corpus.builder import CodeBuilder
from repro.corpus.microbenchmark import RaceLabel
from repro.cparse import parse


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(CorpusConfig())


@pytest.fixture(scope="module")
def registry(corpus):
    return CorpusRegistry(corpus)


class TestCorpusShape:
    def test_total_count_is_201(self, corpus):
        assert len(corpus) == 201

    def test_positive_count_is_102(self, corpus):
        assert sum(1 for b in corpus if b.has_race) == 102

    def test_indices_contiguous(self, corpus):
        assert [b.index for b in corpus] == list(range(1, 202))

    def test_names_follow_drb_convention(self, corpus):
        for bench in corpus:
            assert bench.name.startswith(f"DRB{bench.index:03d}-")
            assert bench.name.endswith("-yes.c" if bench.has_race else "-no.c")

    def test_positive_fraction_close_to_paper(self, registry):
        # paper: ~50.5% of the evaluation subset is race-yes
        assert 0.48 <= registry.positive_fraction() <= 0.53

    def test_every_family_represented(self, corpus):
        families = {b.label.value for b in corpus}
        expected = {f"Y{i}" for i in range(1, 8)} | {f"N{i}" for i in range(1, 8)}
        assert families == expected

    def test_oversized_programs_exist(self, registry):
        oversized = registry.by_category("oversized")
        assert len(oversized) == 3
        assert sum(1 for b in oversized if b.has_race) == 2


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = build_corpus(CorpusConfig(seed=1))
        b = build_corpus(CorpusConfig(seed=1))
        assert [x.name for x in a] == [y.name for y in b]
        assert [x.code for x in a] == [y.code for y in b]

    def test_different_seed_changes_order_not_content(self):
        a = build_corpus(CorpusConfig(seed=1))
        b = build_corpus(CorpusConfig(seed=2))
        assert sorted(x.name.split("-", 1)[1] for x in a) == sorted(
            y.name.split("-", 1)[1] for y in b
        )

    def test_unshuffled_build_groups_families(self):
        corpus = build_corpus(CorpusConfig(shuffle=False))
        assert corpus[0].label.family == 1


class TestGroundTruthConsistency:
    def test_all_programs_parse(self, corpus):
        for bench in corpus:
            unit = parse(bench.code)
            assert unit.main is not None, bench.name

    def test_header_comment_contains_label_line(self, corpus):
        for bench in corpus:
            header = bench.code.split("*/", 1)[0]
            if bench.has_race:
                assert "Data race pair:" in header, bench.name
            else:
                assert "No data race present." in header, bench.name

    def test_race_pair_locations_point_at_real_text(self, corpus):
        """Every ground-truth access name must occur on the referenced line at
        the referenced column of the commented source."""
        for bench in corpus:
            lines = bench.code.splitlines()
            for pair in bench.race_pairs:
                for access in (pair.first, pair.second):
                    line_text = lines[access.line - 1]
                    snippet = line_text[access.col - 1 : access.col - 1 + len(access.name)]
                    assert snippet == access.name, (
                        f"{bench.name}: expected {access.name!r} at "
                        f"{access.line}:{access.col}, found {snippet!r}"
                    )

    def test_race_pairs_have_a_write(self, corpus):
        for bench in corpus:
            for pair in bench.race_pairs:
                assert "W" in (pair.first.operation, pair.second.operation)

    def test_yes_benchmarks_have_parallel_construct(self, corpus):
        for bench in corpus:
            if bench.has_race:
                assert "#pragma omp" in bench.code, bench.name


class TestCodeBuilder:
    def test_access_finds_column(self):
        b = CodeBuilder()
        ln = b.line("    a[i] = a[i+1] + 1;")
        spec = b.access(ln, "a[i+1]", "R")
        assert spec.col == "    a[i] = a[i+1] + 1;".index("a[i+1]") + 1

    def test_access_occurrence_selects_later_match(self):
        b = CodeBuilder()
        ln = b.line("    sum = sum + 1;")
        first = b.access(ln, "sum", "W", occurrence=1)
        second = b.access(ln, "sum", "R", occurrence=2)
        assert first.col < second.col

    def test_access_missing_expression_raises(self):
        b = CodeBuilder()
        ln = b.line("    x = 1;")
        with pytest.raises(ValueError):
            b.access(ln, "y", "W")

    def test_build_shifts_pair_lines_by_header_length(self):
        b = CodeBuilder()
        b.include("<stdio.h>")
        b.line("int main()")
        b.line("{")
        ln = b.line("  x = x + 1;")
        w = b.access(ln, "x", "W")
        r = b.access(ln, "x", "R", occurrence=2)
        b.pair(r, w)
        b.line("  return 0;")
        b.line("}")
        bench = b.build(
            index=1, slug="tiny", label=RaceLabel.Y2, category="t",
            description="desc",
        )
        header_len = bench.code.split("*/")[0].count("\n") + 1
        assert bench.race_pairs[0].second.line == ln + header_len

    def test_build_rejects_yes_without_pairs(self):
        b = CodeBuilder()
        b.line("int main() { return 0; }")
        with pytest.raises(ValueError):
            b.build(index=1, slug="x", label=RaceLabel.Y1, category="t", description="d")

    def test_build_rejects_no_with_pairs(self):
        b = CodeBuilder()
        ln = b.line("x = x + 1;")
        w = b.access(ln, "x", "W")
        r = b.access(ln, "x", "R", occurrence=2)
        b.pair(r, w)
        with pytest.raises(ValueError):
            b.build(index=1, slug="x", label=RaceLabel.N1, category="t", description="d")


class TestRegistry:
    def test_lookup_by_index_and_name(self, registry):
        bench = registry.by_index(5)
        assert registry.by_name(bench.name) is bench

    def test_race_partition_covers_everything(self, registry):
        assert len(registry.race_yes()) + len(registry.race_free()) == len(registry)

    def test_category_counts_sum(self, registry):
        assert sum(registry.category_counts().values()) == len(registry)

    def test_subset_restricts(self, registry):
        names = [b.name for b in registry.benchmarks[:10]]
        sub = registry.subset(names)
        assert len(sub) == 10

    def test_duplicate_names_rejected(self, registry):
        bench = registry.by_index(1)
        with pytest.raises(ValueError):
            CorpusRegistry([bench, bench])

    def test_summary_mentions_counts(self, registry):
        text = registry.summary()
        assert "201 microbenchmarks" in text


class TestStreamingCorpus:
    """The lazy producer: ``iter_corpus`` / spans / repeats / sharding all
    reproduce ``build_corpus`` element for element while generating one
    block at a time."""

    def test_iter_corpus_equals_build_corpus(self, corpus):
        from repro.corpus import iter_corpus

        streamed = list(iter_corpus(CorpusConfig()))
        assert [b.name for b in streamed] == [b.name for b in corpus]
        assert [b.code for b in streamed] == [b.code for b in corpus]

    def test_corpus_size_matches_build(self, corpus):
        from repro.corpus import corpus_size

        assert corpus_size(CorpusConfig()) == len(corpus)
        assert corpus_size(CorpusConfig(repeats=7)) == 7 * len(corpus)

    def test_iter_corpus_span_slices_the_stream(self, corpus):
        from repro.corpus.generator import iter_corpus_span

        span = list(iter_corpus_span(CorpusConfig(), 50, 60))
        assert [b.name for b in span] == [b.name for b in corpus[49:59]]

    def test_span_crossing_block_boundary(self):
        from repro.corpus import iter_corpus
        from repro.corpus.generator import iter_corpus_span

        config = CorpusConfig(repeats=3)
        full = list(iter_corpus(config))
        span = list(iter_corpus_span(config, 195, 215))  # straddles block 0/1
        assert [b.name for b in span] == [b.name for b in full[194:214]]

    def test_repeats_scale_count_with_unique_names(self):
        from repro.corpus import iter_corpus

        config = CorpusConfig(repeats=3)
        corpus3 = list(iter_corpus(config))
        assert len(corpus3) == 3 * 201
        assert len({b.name for b in corpus3}) == len(corpus3)

    def test_first_block_is_the_historical_corpus(self, corpus):
        """repeats > 1 only appends blocks: block 0 stays byte-identical to
        the repeats=1 corpus, so existing results remain reproducible."""
        import itertools

        from repro.corpus import iter_corpus

        first_block = list(itertools.islice(iter_corpus(CorpusConfig(repeats=4)), 201))
        assert [b.code for b in first_block] == [b.code for b in corpus]

    def test_build_corpus_validates_repeated_blocks(self):
        corpus2 = build_corpus(CorpusConfig(repeats=2))
        assert len(corpus2) == 402
        assert sum(1 for b in corpus2 if b.has_race) == 204

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            CorpusConfig(repeats=0)

    def test_iteration_is_lazy(self):
        """Pulling a handful of benchmarks from a million-record corpus
        must not generate the rest (bounded memory, bounded time)."""
        import itertools

        from repro.corpus import corpus_size, iter_corpus

        config = CorpusConfig(repeats=5000)
        assert corpus_size(config) == 1_005_000
        head = list(itertools.islice(iter_corpus(config), 3))
        assert len(head) == 3  # returned without generating 1M benchmarks

    def test_sharded_equals_serial(self):
        from repro.corpus import iter_corpus, iter_corpus_sharded

        config = CorpusConfig(repeats=2)
        serial = list(iter_corpus(config))
        sharded = list(iter_corpus_sharded(config, jobs=2))
        assert [b.name for b in sharded] == [b.name for b in serial]
        assert [b.code for b in sharded] == [b.code for b in serial]
