"""Property-based tests on cross-cutting invariants of the core data structures."""

from hypothesis import given, settings, strategies as st

from repro.analysis.dependence import SubscriptForm, may_overlap
from repro.dataset.tokenizer import CodeTokenizer
from repro.dataset.trim import trim_comments
from repro.eval.metrics import ConfusionCounts, mean_std
from repro.llm.behavior import deterministic_uniform


# -- comment trimming -----------------------------------------------------------


@st.composite
def c_like_source(draw):
    """Random mixtures of code-ish lines, comment lines and blank lines."""
    lines = draw(
        st.lists(
            st.sampled_from(
                [
                    "int x = 1;",
                    "  a[i] = a[i+1] + 1;",
                    "/* block comment */",
                    "// line comment",
                    "",
                    "#pragma omp parallel for",
                    "for (i = 0; i < n; i++)  // trailing",
                ]
            ),
            min_size=1,
            max_size=25,
        )
    )
    return "\n".join(lines) + "\n"


class TestTrimProperties:
    @given(c_like_source())
    @settings(max_examples=60)
    def test_line_map_is_strictly_increasing(self, source):
        result = trim_comments(source)
        mapped = [result.line_map[k] for k in sorted(result.line_map)]
        assert mapped == sorted(mapped)
        assert len(set(mapped)) == len(mapped)

    @given(c_like_source())
    @settings(max_examples=60)
    def test_mapped_lines_preserve_code_prefix(self, source):
        """Every surviving line's code content (up to any comment) is
        preserved verbatim at the same columns."""
        result = trim_comments(source)
        original_lines = source.splitlines()
        trimmed_lines = result.trimmed_code.splitlines()
        for orig_no, trimmed_no in result.line_map.items():
            original = original_lines[orig_no - 1]
            code_part = original.split("//")[0].split("/*")[0].rstrip()
            assert trimmed_lines[trimmed_no - 1].startswith(code_part)

    @given(c_like_source())
    @settings(max_examples=60)
    def test_trimmed_has_no_comment_markers(self, source):
        result = trim_comments(source)
        assert "/*" not in result.trimmed_code
        assert "//" not in result.trimmed_code


# -- tokenizer -------------------------------------------------------------------


class TestTokenizerProperties:
    @given(st.text(alphabet="abcxyz_[]()+-*/;= \n0123456789", max_size=300))
    @settings(max_examples=60)
    def test_count_equals_tokenize_length(self, text):
        tok = CodeTokenizer()
        assert tok.count(text) == len(tok.tokenize(text))

    @given(st.text(alphabet="abcxyz_ ;\n", max_size=120))
    @settings(max_examples=60)
    def test_appending_a_token_increases_count(self, text):
        tok = CodeTokenizer()
        assert tok.count(text + " zz9") == tok.count(text) + 1


# -- dependence tests --------------------------------------------------------------


class TestDependenceProperties:
    forms = st.builds(
        SubscriptForm,
        text=st.just("s"),
        variable=st.one_of(st.none(), st.just("i")),
        coeff=st.integers(-3, 3),
        offset=st.integers(-10, 10),
        is_affine=st.booleans(),
    )

    @given(forms, forms, st.booleans())
    @settings(max_examples=100)
    def test_may_overlap_is_symmetric(self, a, b, same_iter):
        assert may_overlap(a, b, same_iteration_ok=same_iter) == may_overlap(
            b, a, same_iteration_ok=same_iter
        )

    @given(forms)
    @settings(max_examples=60)
    def test_non_affine_always_overlaps(self, form):
        other = SubscriptForm(text="x", is_affine=False)
        assert may_overlap(form, other)


# -- metrics ----------------------------------------------------------------------


class TestMetricsProperties:
    counts = st.builds(
        ConfusionCounts,
        tp=st.integers(0, 200),
        fp=st.integers(0, 200),
        tn=st.integers(0, 200),
        fn=st.integers(0, 200),
    )

    @given(counts)
    def test_f1_bounded_by_precision_and_recall(self, c):
        lo, hi = sorted([c.precision, c.recall])
        assert lo - 1e-12 <= c.f1 <= hi + 1e-12 or c.f1 == 0.0

    @given(counts)
    def test_metric_ranges(self, c):
        for value in (c.precision, c.recall, c.f1, c.accuracy):
            assert 0.0 <= value <= 1.0

    @given(counts, counts)
    def test_addition_accumulates_counts(self, a, b):
        total = a + b
        assert total.total == a.total + b.total

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=20))
    def test_sd_zero_iff_constant(self, values):
        mean, sd = mean_std(values)
        if len(set(values)) == 1:
            assert sd == 0.0
        assert sd >= 0.0


# -- deterministic pseudo-randomness ----------------------------------------------


class TestDeterministicUniform:
    @given(st.text(max_size=30), st.text(max_size=30))
    @settings(max_examples=80)
    def test_range_and_stability(self, a, b):
        value = deterministic_uniform(a, b)
        assert 0.0 <= value < 1.0
        assert value == deterministic_uniform(a, b)

    def test_distribution_is_roughly_uniform(self):
        values = [deterministic_uniform("salt", str(i)) for i in range(2000)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55
        assert sum(v < 0.25 for v in values) / len(values) > 0.2
