"""End-to-end tests of the public pipeline API."""

import pytest

from repro.core import DataRacePipeline, PipelineConfig
from repro.prompting import PromptStrategy


@pytest.fixture(scope="module")
def pipeline():
    return DataRacePipeline(PipelineConfig())


RACY_CODE = """#include <stdio.h>
int main()
{
  int i;
  int counter = 0;
#pragma omp parallel for
  for (i = 0; i < 64; i++)
    counter = counter + 1;
  return 0;
}
"""


class TestPipeline:
    def test_registry_and_dataset_sizes(self, pipeline):
        assert len(pipeline.registry) == 201
        assert len(pipeline.dataset) == 201
        assert len(pipeline.evaluation_subset()) == 198

    def test_detect_returns_outcome_with_response_text(self, pipeline):
        outcome = pipeline.detect(RACY_CODE, model="gpt-4", strategy=PromptStrategy.BP1)
        assert outcome.model == "gpt-4"
        assert outcome.prediction in (True, False)
        assert isinstance(outcome.response, str) and outcome.response

    def test_detect_with_chain_strategy(self, pipeline):
        outcome = pipeline.detect(RACY_CODE, model="gpt-4", strategy=PromptStrategy.AP2)
        assert outcome.strategy == "AP2"

    def test_identify_variables_returns_pairs_structure(self, pipeline):
        outcome = pipeline.identify_variables(RACY_CODE, model="gpt-4")
        assert outcome.pairs is not None

    def test_models_listing(self, pipeline):
        assert len(pipeline.models()) == 4

    def test_model_instances_cached(self, pipeline):
        assert pipeline.model("gpt-4") is pipeline.model("gpt-4")

    def test_inspector_and_static_baselines_work(self, pipeline):
        inspector_result = pipeline.inspector().analyze_source(RACY_CODE, num_threads=2)
        static_report = pipeline.static_detector().analyze_source(RACY_CODE)
        assert inspector_result.has_race
        assert static_report.has_race

    def test_finetune_on_small_subset(self, pipeline):
        names = [r.name for r in pipeline.evaluation_subset().records[:30]]
        tuned = pipeline.finetune("llama2-7b", kind="basic", train_names=names)
        assert tuned.table_label == "Llama-FT"

    def test_score_model_on_small_sample(self, pipeline):
        records = pipeline.evaluation_subset().records[:12]
        counts = pipeline.score_model(model="gpt-4", strategy=PromptStrategy.BP1, records=records)
        assert counts.total == 12

    def test_executor_config_selects_backend(self):
        from repro.engine import AsyncExecutor

        with DataRacePipeline(PipelineConfig(executor="async", jobs=4)) as pipeline:
            assert isinstance(pipeline.engine.executor, AsyncExecutor)
            records = pipeline.evaluation_subset().records[:6]
            counts = pipeline.score_model(
                model="gpt-4", strategy=PromptStrategy.BP1, records=records
            )
            assert counts.total == 6
            executor = pipeline.engine.executor
        assert executor.closed

    def test_close_is_idempotent_and_rebuilds(self):
        pipeline = DataRacePipeline(PipelineConfig(jobs=2))
        first = pipeline.engine
        pipeline.close()
        pipeline.close()
        assert pipeline.engine is not first  # fresh engine after close
        pipeline.close()
