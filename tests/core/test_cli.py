"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_summary_command(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "201 microbenchmarks" in out
        assert "DRB-ML" in out

    def test_table2_command_prints_table(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "BP1" in out and "BP2" in out

    def test_table5_command_prints_all_models(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        for model in ("gpt-4", "gpt-3.5-turbo", "starchat-beta", "llama2-7b"):
            assert model in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-table"])

    def test_engine_stats_line_printed(self, capsys):
        assert main(["table2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "[engine]" in out
        assert "cache_hit_rate=" in out
        assert "wall=" in out

    def test_no_stats_flag_suppresses_line(self, capsys):
        assert main(["table2", "--no-stats"]) == 0
        assert "[engine]" not in capsys.readouterr().out

    def test_cache_file_written_and_reused(self, tmp_path, capsys):
        cache_dir = tmp_path / "responses"
        assert main(["table2", "--cache", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert cache_dir.is_dir()
        assert list(cache_dir.glob("segment-*.jsonl"))
        assert main(["table2", "--cache", str(cache_dir)]) == 0
        second = capsys.readouterr().out
        assert "cache_hit_rate=100.0%" in second
        # Same table either way: caching never changes results.  Telemetry
        # ([engine] lines) legitimately differs between cold and warm runs.
        def table_rows(out):
            return [l for l in out.splitlines() if "gpt" in l and not l.startswith("[engine]")]

        assert table_rows(first) == table_rows(second)

    def test_executor_flag_selects_backend(self, capsys):
        assert main(["table2", "--executor", "async"]) == 0
        out = capsys.readouterr().out
        assert "executor=async" in out and "Table 2" in out

    def test_executor_process_same_table(self, capsys):
        assert main(["table2", "--no-stats"]) == 0
        serial = capsys.readouterr().out
        assert main(["table2", "--executor", "process", "--jobs", "2", "--no-stats"]) == 0
        process = capsys.readouterr().out
        assert [l for l in serial.splitlines() if "gpt" in l] == [
            l for l in process.splitlines() if "gpt" in l
        ]

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            main(["table2", "--executor", "quantum"])

    def test_dispatch_modes_same_table(self, capsys):
        """--dispatch ordered/--no-lpt/--no-adaptive-batching select the
        reference scheduling path; the table rows must not change."""
        assert main(["table2", "--no-stats"]) == 0
        dynamic = capsys.readouterr().out
        assert main(
            [
                "table2",
                "--dispatch", "ordered",
                "--no-lpt",
                "--no-adaptive-batching",
                "--jobs", "4",
                "--no-stats",
            ]
        ) == 0
        ordered = capsys.readouterr().out
        assert [l for l in dynamic.splitlines() if "gpt" in l] == [
            l for l in ordered.splitlines() if "gpt" in l
        ]

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(SystemExit):
            main(["table2", "--dispatch", "sideways"])

    def test_slowest_groups_printed_with_stats(self, capsys):
        assert main(["table2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "slowest groups" in out
        assert "gpt-3.5-turbo/BP1" in out

    def test_cost_model_persisted_beside_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "responses"
        assert main(["table2", "--cache", str(cache_dir)]) == 0
        capsys.readouterr()
        costmodel = cache_dir / "costmodel.json"
        assert costmodel.is_file()
        import json

        payload = json.loads(costmodel.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-cost-model"
        models = {g["model"] for g in payload["groups"]}
        assert "gpt-3.5-turbo" in models

    def test_sequential_requires_all(self):
        with pytest.raises(SystemExit):
            main(["table2", "--sequential"])
