"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_summary_command(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "201 microbenchmarks" in out
        assert "DRB-ML" in out

    def test_table2_command_prints_table(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "BP1" in out and "BP2" in out

    def test_table5_command_prints_all_models(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        for model in ("gpt-4", "gpt-3.5-turbo", "starchat-beta", "llama2-7b"):
            assert model in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-table"])
