"""Tests for the OpenMP interpreter: value semantics and event recording."""

import pytest

from repro.dynamic import Interpreter, InterpreterError, InterpreterLimits


def run(src, **kwargs):
    return Interpreter(**kwargs).run_source(src)


class TestSequentialSemantics:
    def test_arithmetic_and_arrays(self):
        interp = Interpreter(num_threads=2)
        trace = interp.run_source(
            """
            int main() {
              int i;
              int a[10];
              int total = 0;
              for (i = 0; i < 10; i++)
                a[i] = i * 2;
              for (i = 0; i < 10; i++)
                total = total + a[i];
              return 0;
            }
            """
        )
        assert interp._memory["total"] == sum(2 * i for i in range(10))
        assert len(trace.events) == 0  # nothing ran in parallel

    def test_if_else_and_while(self):
        interp = Interpreter()
        interp.run_source(
            """
            int main() {
              int x = 0;
              int i = 0;
              while (i < 5) {
                if (i % 2 == 0) x = x + 10;
                else x = x + 1;
                i++;
              }
              return 0;
            }
            """
        )
        assert interp._memory["x"] == 32

    def test_two_dimensional_arrays(self):
        interp = Interpreter()
        interp.run_source(
            """
            int main() {
              int i, j;
              int m[3][3];
              for (i = 0; i < 3; i++)
                for (j = 0; j < 3; j++)
                  m[i][j] = i * 3 + j;
              return 0;
            }
            """
        )
        assert interp._memory["m"][2][2] == 8

    def test_division_semantics(self):
        interp = Interpreter()
        interp.run_source("int main() { int a = 7 / 2; double b = 7.0 / 2.0; return 0; }")
        assert interp._memory["a"] == 3
        assert interp._memory["b"] == pytest.approx(3.5)

    def test_step_limit_guards_infinite_loops(self):
        with pytest.raises(InterpreterError):
            run(
                "int main() { int x = 0; while (1) x = x + 1; return 0; }",
                limits=InterpreterLimits(max_steps=10_000, max_loop_iterations=100),
            )


class TestParallelSemantics:
    def test_parallel_for_partitions_iterations(self):
        interp = Interpreter(num_threads=4)
        interp.run_source(
            """
            int main() {
              int i;
              int a[40];
            #pragma omp parallel for
              for (i = 0; i < 40; i++)
                a[i] = i;
              return 0;
            }
            """
        )
        assert interp._memory["a"] == list(range(40))

    def test_reduction_clause_produces_correct_sum(self):
        interp = Interpreter(num_threads=4)
        interp.run_source(
            """
            int main() {
              int i;
              int sum = 0;
            #pragma omp parallel for reduction(+:sum)
              for (i = 0; i < 100; i++)
                sum += i;
              return 0;
            }
            """
        )
        assert interp._memory["sum"] == sum(range(100))

    def test_parallel_region_runs_every_thread(self):
        interp = Interpreter(num_threads=3)
        trace = interp.run_source(
            """
            int main() {
              int counter = 0;
            #pragma omp parallel num_threads(3)
              counter = counter + 1;
              return 0;
            }
            """
        )
        writes = [e for e in trace.events if e.is_write]
        assert {e.thread for e in writes} == {0, 1, 2}

    def test_private_variables_do_not_emit_events(self):
        trace = run(
            """
            int main() {
              int i;
              int tmp = 0;
              int a[20];
              int out[20];
              for (i = 0; i < 20; i++) a[i] = i;
            #pragma omp parallel for private(tmp)
              for (i = 0; i < 20; i++)
              {
                tmp = a[i] + 1;
                out[i] = tmp;
              }
              return 0;
            }
            """,
            num_threads=2,
        )
        assert not any(e.variable == "tmp" for e in trace.events)

    def test_critical_records_lock_name(self):
        trace = run(
            """
            int main() {
              int counter = 0;
            #pragma omp parallel num_threads(2)
              {
            #pragma omp critical
                counter = counter + 1;
              }
              return 0;
            }
            """,
            num_threads=2,
        )
        counter_events = [e for e in trace.events if e.variable == "counter"]
        assert counter_events and all("__critical__" in e.locks for e in counter_events)

    def test_barrier_increments_epoch(self):
        trace = run(
            """
            int main() {
              int x = 0;
              int y = 0;
            #pragma omp parallel num_threads(2)
              {
                x = x + 1;
            #pragma omp barrier
                y = y + 1;
              }
              return 0;
            }
            """,
            num_threads=2,
        )
        x_epochs = {e.epoch for e in trace.events if e.variable == "x"}
        y_epochs = {e.epoch for e in trace.events if e.variable == "y"}
        assert x_epochs == {0} and y_epochs == {1}

    def test_single_executes_once_and_synchronizes(self):
        trace = run(
            """
            int main() {
              int data = 0;
            #pragma omp parallel num_threads(4)
              {
            #pragma omp single
                data = 42;
              }
              return 0;
            }
            """,
            num_threads=4,
        )
        writes = [e for e in trace.events if e.variable == "data" and e.is_write]
        assert len(writes) == 1 and writes[0].thread == 0

    def test_locks_recorded_on_events(self):
        trace = run(
            """
            int main() {
              int total = 0;
              omp_lock_t lck;
              omp_init_lock(&lck);
            #pragma omp parallel num_threads(2)
              {
                omp_set_lock(&lck);
                total = total + 1;
                omp_unset_lock(&lck);
              }
              omp_destroy_lock(&lck);
              return 0;
            }
            """,
            num_threads=2,
        )
        total_events = [e for e in trace.events if e.variable == "total"]
        assert total_events and all("lck" in e.locks for e in total_events)

    def test_atomic_flag_recorded(self):
        trace = run(
            """
            int main() {
              int c = 0;
            #pragma omp parallel num_threads(2)
              {
            #pragma omp atomic
                c += 1;
              }
              return 0;
            }
            """,
            num_threads=2,
        )
        assert all(e.atomic for e in trace.events if e.variable == "c")

    def test_tasks_record_task_info(self):
        trace = run(
            """
            int main() {
              int r = 0;
            #pragma omp parallel num_threads(2)
              {
            #pragma omp single nowait
                {
            #pragma omp task
                  r = 5;
                }
              }
              return 0;
            }
            """,
            num_threads=2,
        )
        task_writes = [e for e in trace.events if e.variable == "r" and e.task is not None]
        assert len(task_writes) == 1

    def test_schedule_roundrobin_changes_partition(self):
        src = """
            int main() {
              int i;
              int a[8];
            #pragma omp parallel for
              for (i = 0; i < 8; i++)
                a[i] = omp_get_thread_num();
              return 0;
            }
        """
        static_interp = Interpreter(num_threads=2, schedule="static")
        static_interp.run_source(src)
        rr_interp = Interpreter(num_threads=2, schedule="roundrobin")
        rr_interp.run_source(src)
        assert static_interp._memory["a"] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert rr_interp._memory["a"] == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_omp_thread_introspection(self):
        interp = Interpreter(num_threads=3)
        interp.run_source(
            """
            int main() {
              int seen = 0;
            #pragma omp parallel num_threads(3)
              {
            #pragma omp critical
                seen = seen + omp_get_num_threads();
              }
              return 0;
            }
            """
        )
        assert interp._memory["seen"] == 9
