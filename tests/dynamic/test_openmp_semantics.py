"""Additional OpenMP semantics tests for the interpreter.

These cover the data-environment clauses and worksharing constructs whose
*value* semantics matter for the corpus (not just event recording).
"""

import pytest

from repro.dynamic import Interpreter


class TestDataEnvironment:
    def test_firstprivate_initialises_from_shared_value(self):
        interp = Interpreter(num_threads=2)
        interp.run_source(
            """
            int main() {
              int i;
              int offset = 10;
              int out[8];
            #pragma omp parallel for firstprivate(offset)
              for (i = 0; i < 8; i++)
                out[i] = i + offset;
              return 0;
            }
            """
        )
        assert interp._memory["out"] == [i + 10 for i in range(8)]

    def test_lastprivate_writes_back_final_value(self):
        interp = Interpreter(num_threads=2)
        interp.run_source(
            """
            int main() {
              int i;
              double last_val = 0.0;
              double a[10];
              for (i = 0; i < 10; i++)
                a[i] = i * 0.5;
            #pragma omp parallel for lastprivate(last_val)
              for (i = 0; i < 10; i++)
                last_val = a[i];
              return 0;
            }
            """
        )
        assert interp._memory["last_val"] == pytest.approx(4.5)

    def test_max_reduction(self):
        interp = Interpreter(num_threads=4)
        interp.run_source(
            """
            int main() {
              int i;
              int best = 0;
              int v[50];
              for (i = 0; i < 50; i++)
                v[i] = (i * 13) % 50;
            #pragma omp parallel for reduction(max:best)
              for (i = 0; i < 50; i++)
              {
                if (v[i] > best)
                  best = v[i];
              }
              return 0;
            }
            """
        )
        assert interp._memory["best"] == max((i * 13) % 50 for i in range(50))

    def test_private_variable_does_not_leak_back(self):
        interp = Interpreter(num_threads=2)
        interp.run_source(
            """
            int main() {
              int i;
              int tmp = 77;
              int out[8];
            #pragma omp parallel for private(tmp)
              for (i = 0; i < 8; i++)
              {
                tmp = i;
                out[i] = tmp;
              }
              return 0;
            }
            """
        )
        assert interp._memory["tmp"] == 77


class TestWorksharingConstructs:
    def test_sections_assign_different_threads(self):
        interp = Interpreter(num_threads=2)
        trace = interp.run_source(
            """
            int main() {
              int first = 0;
              int second = 0;
            #pragma omp parallel sections
              {
            #pragma omp section
                first = 1;
            #pragma omp section
                second = 2;
              }
              return 0;
            }
            """
        )
        assert interp._memory["first"] == 1 and interp._memory["second"] == 2
        writers = {e.variable: e.thread for e in trace.events if e.is_write}
        assert writers["first"] != writers["second"]

    def test_atomic_capture_hands_out_unique_slots(self):
        interp = Interpreter(num_threads=4)
        interp.run_source(
            """
            int main() {
              int i;
              int slots[16];
              int next = 0;
            #pragma omp parallel for
              for (i = 0; i < 16; i++)
              {
                int my_slot;
            #pragma omp atomic capture
                my_slot = next++;
                slots[my_slot] = i;
              }
              return 0;
            }
            """
        )
        assert interp._memory["next"] == 16
        assert sorted(interp._memory["slots"]) == list(range(16))

    def test_ordered_construct_executes_in_iteration_order(self):
        interp = Interpreter(num_threads=4)
        trace = interp.run_source(
            """
            int main() {
              int i;
              int a[16];
              a[0] = 0;
            #pragma omp parallel for ordered
              for (i = 1; i < 16; i++)
              {
            #pragma omp ordered
                a[i] = a[i-1] + 1;
              }
              return 0;
            }
            """
        )
        assert all(e.ordered for e in trace.events if e.variable == "a")

    def test_nowait_single_has_no_epoch_increment(self):
        trace = Interpreter(num_threads=2).run_source(
            """
            int main() {
              int data = 0;
              int later = 0;
            #pragma omp parallel num_threads(2)
              {
            #pragma omp single nowait
                data = 1;
                later = 2;
              }
              return 0;
            }
            """
        )
        later_epochs = {e.epoch for e in trace.events if e.variable == "later"}
        assert later_epochs == {0}

    def test_orphaned_simd_loop_runs_sequentially(self):
        interp = Interpreter(num_threads=4)
        trace = interp.run_source(
            """
            int main() {
              int i;
              int a[8];
            #pragma omp simd
              for (i = 0; i < 8; i++)
                a[i] = i;
              return 0;
            }
            """
        )
        assert interp._memory["a"] == list(range(8))
        assert len(trace.events) == 0
