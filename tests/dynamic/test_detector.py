"""Tests for the trace-level race detector and the Inspector facade."""

import pytest

from repro.corpus import CorpusConfig, CorpusRegistry
from repro.dynamic import InspectorLikeDetector, Interpreter, detect_races


def analyze(src, num_threads=2, schedule="static"):
    trace = Interpreter(num_threads=num_threads, schedule=schedule).run_source(src)
    return detect_races(trace)


class TestDetectRaces:
    def test_unprotected_counter_races(self):
        report = analyze(
            """
            int main() {
              int c = 0;
            #pragma omp parallel num_threads(2)
              c = c + 1;
              return 0;
            }
            """
        )
        assert report.has_race
        assert "c" in report.variables()

    def test_critical_counter_does_not_race(self):
        report = analyze(
            """
            int main() {
              int c = 0;
            #pragma omp parallel num_threads(2)
              {
            #pragma omp critical
                c = c + 1;
              }
              return 0;
            }
            """
        )
        assert not report.has_race

    def test_atomic_counter_does_not_race(self):
        report = analyze(
            """
            int main() {
              int c = 0;
            #pragma omp parallel num_threads(2)
              {
            #pragma omp atomic
                c += 1;
              }
              return 0;
            }
            """
        )
        assert not report.has_race

    def test_lock_protected_does_not_race(self):
        report = analyze(
            """
            int main() {
              int c = 0;
              omp_lock_t lck;
              omp_init_lock(&lck);
            #pragma omp parallel num_threads(2)
              {
                omp_set_lock(&lck);
                c = c + 1;
                omp_unset_lock(&lck);
              }
              omp_destroy_lock(&lck);
              return 0;
            }
            """
        )
        assert not report.has_race

    def test_barrier_orders_phases(self):
        report = analyze(
            """
            int main() {
              int i;
              int a[16];
              int c[16];
            #pragma omp parallel
              {
            #pragma omp for
                for (i = 0; i < 16; i++)
                  a[i] = i;
            #pragma omp for
                for (i = 0; i < 15; i++)
                  c[i] = a[i+1];
              }
              return 0;
            }
            """,
            num_threads=4,
        )
        assert not report.has_race

    def test_nowait_exposes_race(self):
        report = analyze(
            """
            int main() {
              int i;
              int a[16];
              int c[16];
            #pragma omp parallel
              {
            #pragma omp for nowait
                for (i = 0; i < 16; i++)
                  a[i] = i * 2;
            #pragma omp for
                for (i = 0; i < 15; i++)
                  c[i] = a[i+1];
              }
              return 0;
            }
            """,
            num_threads=4,
        )
        assert report.has_race

    def test_antidep_detected_at_chunk_boundary(self):
        report = analyze(
            """
            int main() {
              int i;
              int a[32];
              for (i = 0; i < 32; i++) a[i] = i;
            #pragma omp parallel for
              for (i = 0; i < 31; i++)
                a[i] = a[i+1] + 1;
              return 0;
            }
            """,
            num_threads=4,
        )
        assert report.has_race
        assert "a" in report.variables()

    def test_disjoint_writes_do_not_race(self):
        report = analyze(
            """
            int main() {
              int i;
              int a[32];
            #pragma omp parallel for
              for (i = 0; i < 32; i++)
                a[i] = i;
              return 0;
            }
            """,
            num_threads=4,
        )
        assert not report.has_race

    def test_task_without_taskwait_races_with_parent_read(self):
        report = analyze(
            """
            int main() {
              int r = 0;
              int c = 0;
            #pragma omp parallel num_threads(2)
              {
            #pragma omp single nowait
                {
            #pragma omp task
                  r = 7;
                  c = r + 1;
                }
              }
              return 0;
            }
            """
        )
        assert report.has_race

    def test_taskwait_orders_parent_read(self):
        report = analyze(
            """
            int main() {
              int r = 0;
              int c = 0;
            #pragma omp parallel num_threads(2)
              {
            #pragma omp single nowait
                {
            #pragma omp task
                  r = 7;
            #pragma omp taskwait
                  c = r + 1;
                }
              }
              return 0;
            }
            """
        )
        assert not report.has_race

    def test_depend_clauses_order_tasks(self):
        report = analyze(
            """
            int main() {
              int buffer = 0;
              int out = 0;
            #pragma omp parallel num_threads(2)
              {
            #pragma omp single
                {
            #pragma omp task depend(out: buffer)
                  buffer = 5;
            #pragma omp task depend(in: buffer)
                  out = buffer * 2;
                }
              }
              return 0;
            }
            """
        )
        assert not report.has_race

    def test_sections_write_same_scalar_race(self):
        report = analyze(
            """
            int main() {
              int result = 0;
            #pragma omp parallel sections
              {
            #pragma omp section
                result = 10;
            #pragma omp section
                result = 20;
              }
              return 0;
            }
            """
        )
        assert report.has_race

    def test_sections_disjoint_scalars_ok(self):
        report = analyze(
            """
            int main() {
              int first = 0;
              int second = 0;
            #pragma omp parallel sections
              {
            #pragma omp section
                first = 10;
            #pragma omp section
                second = 20;
              }
              return 0;
            }
            """
        )
        assert not report.has_race


class TestInspectorOnCorpus:
    @pytest.fixture(scope="class")
    def registry(self):
        return CorpusRegistry.build(CorpusConfig())

    @pytest.fixture(scope="class")
    def detector(self):
        return InspectorLikeDetector(schedules=("static",))

    def test_sample_of_racy_benchmarks_detected(self, registry, detector):
        racy = [b for b in registry.race_yes() if b.category not in ("simd", "oversized")][:20]
        hits = sum(1 for b in racy if detector.analyze_benchmark(b).has_race)
        assert hits >= int(0.9 * len(racy))

    def test_sample_of_racefree_benchmarks_clean(self, registry, detector):
        clean = [b for b in registry.race_free() if b.category != "oversized"][:20]
        false_alarms = sum(1 for b in clean if detector.analyze_benchmark(b).has_race)
        assert false_alarms <= 1

    def test_simd_only_races_are_missed(self, registry, detector):
        """Races inside simd-only constructs have no cross-thread execution in
        the simulator, mirroring a dynamic tool's blind spot."""
        simd_only = [
            b for b in registry.race_yes()
            if b.name.startswith(("DRB",)) and "simdforwarddep" in b.name
        ]
        assert simd_only
        assert all(not detector.analyze_benchmark(b).has_race for b in simd_only)

    def test_report_includes_variable_pairs(self, registry, detector):
        bench = next(b for b in registry.race_yes() if "antidep1" in b.name)
        result = detector.analyze_benchmark(bench)
        assert result.has_race
        assert "a" in result.variables()
