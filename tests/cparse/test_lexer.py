"""Unit tests for the C/OpenMP lexer."""

import pytest
from hypothesis import given, strategies as st

from repro.cparse.lexer import LexError, Token, TokenKind, tokenize


def kinds(tokens):
    return [t.kind for t in tokens]


class TestBasicTokens:
    def test_identifier_and_keyword(self):
        toks = tokenize("int foo;")
        assert toks[0].kind is TokenKind.KEYWORD and toks[0].text == "int"
        assert toks[1].kind is TokenKind.IDENT and toks[1].text == "foo"
        assert toks[2].is_punct(";")
        assert toks[-1].kind is TokenKind.EOF

    def test_integer_literal(self):
        toks = tokenize("x = 1000;")
        lit = [t for t in toks if t.kind is TokenKind.INT_LIT]
        assert len(lit) == 1 and lit[0].text == "1000"

    def test_float_literal(self):
        toks = tokenize("double y = 3.14;")
        assert any(t.kind is TokenKind.FLOAT_LIT and t.text == "3.14" for t in toks)

    def test_float_exponent(self):
        toks = tokenize("a = 1e-4;")
        assert any(t.kind is TokenKind.FLOAT_LIT for t in toks)

    def test_string_literal(self):
        toks = tokenize('printf("a[500]=%d\\n", a[500]);')
        strings = [t for t in toks if t.kind is TokenKind.STRING_LIT]
        assert len(strings) == 1
        assert strings[0].text.startswith('"')

    def test_char_literal(self):
        toks = tokenize("c = 'x';")
        assert any(t.kind is TokenKind.CHAR_LIT for t in toks)

    def test_multichar_punctuators(self):
        toks = tokenize("a += b; c && d; e <= f; g++;")
        texts = [t.text for t in toks if t.kind is TokenKind.PUNCT]
        assert "+=" in texts and "&&" in texts and "<=" in texts and "++" in texts


class TestDirectivesAndComments:
    def test_include(self):
        toks = tokenize("#include <stdio.h>\nint x;")
        assert toks[0].kind is TokenKind.INCLUDE
        assert "<stdio.h>" in toks[0].text

    def test_pragma_token_text(self):
        toks = tokenize("#pragma omp parallel for private(i)\nfor (i=0;i<10;i++) ;")
        pragma = toks[0]
        assert pragma.kind is TokenKind.PRAGMA
        assert pragma.text == "omp parallel for private(i)"

    def test_pragma_line_continuation(self):
        src = "#pragma omp parallel for \\\n  reduction(+:sum)\nx = 1;"
        toks = tokenize(src)
        assert toks[0].kind is TokenKind.PRAGMA
        assert "reduction(+:sum)" in toks[0].text

    def test_comments_dropped_by_default(self):
        src = "/* block */\n// line\nint x;"
        toks = tokenize(src)
        assert all(t.kind is not TokenKind.COMMENT for t in toks)

    def test_comments_kept_on_request(self):
        src = "/* Data race pair: a[i+1]@64:10:R vs. a[i]@64:5:W */\nint x;"
        toks = tokenize(src, keep_comments=True)
        comments = [t for t in toks if t.kind is TokenKind.COMMENT]
        assert len(comments) == 1
        assert "Data race pair" in comments[0].text

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"open')


class TestLocations:
    def test_line_and_column_tracking(self):
        src = "int a;\n  a = 1;\n"
        toks = tokenize(src)
        a_tokens = [t for t in toks if t.kind is TokenKind.IDENT and t.text == "a"]
        assert a_tokens[0].line == 1 and a_tokens[0].col == 5
        assert a_tokens[1].line == 2 and a_tokens[1].col == 3

    def test_columns_after_tabs_and_spaces(self):
        toks = tokenize("    x = y + z;")
        x = next(t for t in toks if t.text == "x")
        assert x.col == 5

    def test_multiline_positions(self):
        src = "int main()\n{\n  int i;\n}\n"
        toks = tokenize(src)
        brace = next(t for t in toks if t.is_punct("{"))
        assert brace.line == 2 and brace.col == 1


class TestLexerProperties:
    @given(
        st.lists(
            st.sampled_from(["x", "y", "foo", "1", "42", "+", "-", "*", ";", "(", ")"]),
            min_size=1,
            max_size=30,
        )
    )
    def test_token_count_matches_word_stream(self, pieces):
        """Space-separated simple tokens round-trip one-to-one (plus EOF)."""
        source = " ".join(pieces)
        toks = tokenize(source)
        assert len(toks) == len(pieces) + 1

    @given(st.text(alphabet="abcxyz_ (){}[];=+-*/<>0123456789\n\t", max_size=200))
    def test_terminates_on_supported_alphabet(self, text):
        """The lexer either tokenizes or reports a LexError; it never hangs or
        raises anything else (unterminated ``/*`` comments are legal failures)."""
        try:
            tokens = tokenize(text)
        except LexError:
            return
        assert tokens[-1].kind is TokenKind.EOF

    @given(st.integers(min_value=0, max_value=10**9))
    def test_integer_values_preserved(self, value):
        toks = tokenize(f"x = {value};")
        lit = next(t for t in toks if t.kind is TokenKind.INT_LIT)
        assert int(lit.text) == value
