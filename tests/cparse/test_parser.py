"""Unit tests for the recursive-descent parser and pragma parser."""

import pytest

from repro.cparse import ast, parse, parse_pragma
from repro.cparse.parser import ParseError
from repro.cparse.pragma import PragmaError


EXAMPLE = """
#include <stdio.h>
int main(int argc, char *argv[])
{
  int i;
  int len = 1000;
  int a[1000];
  for (i = 0; i < len; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < len - 1; i++)
    a[i] = a[i+1] + 1;
  printf("a[500]=%d\\n", a[500]);
  return 0;
}
"""


class TestTopLevel:
    def test_parses_main(self):
        unit = parse(EXAMPLE)
        assert unit.main is not None
        assert unit.main.name == "main"
        assert len(unit.includes) == 1

    def test_main_parameters(self):
        unit = parse(EXAMPLE)
        params = unit.main.params
        assert [p.name for p in params] == ["argc", "argv"]
        assert params[1].pointer_depth == 1 and params[1].is_array

    def test_global_declaration(self):
        unit = parse("int counter = 0;\nint main() { counter = 1; return 0; }")
        assert len(unit.globals) == 1
        assert unit.globals[0].declarators[0].name == "counter"

    def test_multiple_functions(self):
        src = "void helper(int x) { x = x + 1; }\nint main() { helper(3); return 0; }"
        unit = parse(src)
        assert {f.name for f in unit.functions} == {"helper", "main"}


class TestStatements:
    def test_for_loop_structure(self):
        unit = parse(EXAMPLE)
        body = unit.main.body.body
        fors = [s for s in body if isinstance(s, ast.ForStmt)]
        assert len(fors) == 1  # second loop is under the OmpStmt
        assert fors[0].loop_variable() == "i"

    def test_omp_statement_wraps_loop(self):
        unit = parse(EXAMPLE)
        omp = [s for s in unit.main.body.body if isinstance(s, ast.OmpStmt)]
        assert len(omp) == 1
        assert omp[0].pragma.directives == ("parallel", "for")
        assert isinstance(omp[0].body, ast.ForStmt)

    def test_if_else(self):
        src = "int main() { int x = 0; if (x > 1) x = 2; else x = 3; return x; }"
        unit = parse(src)
        stmts = unit.main.body.body
        ifs = [s for s in stmts if isinstance(s, ast.IfStmt)]
        assert len(ifs) == 1 and ifs[0].other is not None

    def test_while_break_continue(self):
        src = """
        int main() {
          int i = 0;
          while (i < 10) {
            i++;
            if (i == 5) continue;
            if (i == 9) break;
          }
          return 0;
        }
        """
        unit = parse(src)
        whiles = [s for s in unit.main.body.body if isinstance(s, ast.WhileStmt)]
        assert len(whiles) == 1

    def test_declaration_in_for_init(self):
        src = "int main() { for (int j = 0; j < 4; j++) { ; } return 0; }"
        unit = parse(src)
        loop = next(s for s in unit.main.body.body if isinstance(s, ast.ForStmt))
        assert isinstance(loop.init, ast.Declaration)
        assert loop.loop_variable() == "j"

    def test_standalone_barrier(self):
        src = """
        int main() {
        #pragma omp parallel
        {
          int x = 0;
        #pragma omp barrier
          x = 1;
        }
        return 0; }
        """
        unit = parse(src)
        par = next(s for s in unit.main.body.body if isinstance(s, ast.OmpStmt))
        inner = [s for s in par.body.body if isinstance(s, ast.OmpStmt)]
        assert inner and inner[0].pragma.directives == ("barrier",)
        assert inner[0].body is None

    def test_array_declaration_dims(self):
        src = "int main() { double b[100][50]; b[1][2] = 0.5; return 0; }"
        unit = parse(src)
        decl = next(s for s in unit.main.body.body if isinstance(s, ast.Declaration))
        assert len(decl.declarators[0].array_dims) == 2

    def test_brace_initializer(self):
        src = "int main() { int v[3] = {1, 2, 3}; return v[0]; }"
        unit = parse(src)
        decl = next(s for s in unit.main.body.body if isinstance(s, ast.Declaration))
        init = decl.declarators[0].init
        assert isinstance(init, ast.Call) and init.name == "__init_list__"
        assert len(init.args) == 3


class TestExpressions:
    def _expr_of(self, source_stmt: str) -> ast.Expr:
        unit = parse("int main() { int a[10]; int x; int y; int i; " + source_stmt + " return 0; }")
        stmt = unit.main.body.body[-2]
        assert isinstance(stmt, ast.ExprStmt)
        return stmt.expr

    def test_precedence_mul_over_add(self):
        expr = self._expr_of("x = 1 + 2 * 3;")
        assert isinstance(expr, ast.Assignment)
        add = expr.value
        assert isinstance(add, ast.BinaryOp) and add.op == "+"
        assert isinstance(add.right, ast.BinaryOp) and add.right.op == "*"

    def test_array_subscript_affine(self):
        expr = self._expr_of("a[i] = a[i+1] + 1;")
        assert isinstance(expr, ast.Assignment)
        target = expr.target
        assert isinstance(target, ast.ArraySubscript)
        assert target.root_name() == "a"

    def test_nested_subscript_root_name(self):
        unit = parse("int main() { int b[4][4]; int i; int j; b[i][j] = 1; return 0; }")
        stmt = unit.main.body.body[-2]
        sub = stmt.expr.target
        assert isinstance(sub, ast.ArraySubscript)
        assert sub.root_name() == "b"
        assert len(sub.indices()) == 2

    def test_compound_assignment(self):
        expr = self._expr_of("x += y;")
        assert isinstance(expr, ast.Assignment) and expr.is_compound

    def test_incdec_postfix(self):
        expr = self._expr_of("x++;")
        assert isinstance(expr, ast.IncDec) and not expr.prefix

    def test_call_with_address_of(self):
        unit = parse(
            "int main() { omp_lock_t lck; omp_set_lock(&lck); return 0; }"
        )
        stmt = unit.main.body.body[1]
        call = stmt.expr
        assert isinstance(call, ast.Call) and call.name == "omp_set_lock"
        assert isinstance(call.args[0], ast.AddressOf)

    def test_ternary(self):
        expr = self._expr_of("x = y > 0 ? y : 0;")
        assert isinstance(expr.value, ast.ConditionalExpr)

    def test_unary_minus_and_not(self):
        expr = self._expr_of("x = -y + !i;")
        assert isinstance(expr.value, ast.BinaryOp)

    def test_cast_is_transparent(self):
        expr = self._expr_of("x = (int)y;")
        assert isinstance(expr.value, ast.Identifier)

    def test_location_of_subscript(self):
        unit = parse("int main()\n{\n  int a[10];\n  int i;\n  a[i] = a[i+1] + 1;\n  return 0;\n}\n")
        stmt = unit.main.body.body[2]
        assign = stmt.expr
        assert assign.target.loc.line == 5
        assert assign.target.loc.col == 3
        # RHS access a[i+1] starts at column 10
        assert assign.value.left.loc.col == 10


class TestPragmas:
    def test_parallel_for_private(self):
        pragma = parse_pragma("omp parallel for private(i, j) shared(a)")
        assert pragma.directives == ("parallel", "for")
        assert pragma.clause_vars("private") == ["i", "j"]
        assert pragma.clause_vars("shared") == ["a"]

    def test_reduction_clause(self):
        pragma = parse_pragma("omp parallel for reduction(+:sum)")
        clause = pragma.clause("reduction")
        assert clause is not None
        assert clause.reduction_op == "+" and clause.arguments == ["sum"]

    def test_schedule_and_num_threads(self):
        pragma = parse_pragma("omp parallel for schedule(dynamic, 4) num_threads(8)")
        assert pragma.clause("schedule").arguments == ["dynamic", "4"]
        assert pragma.clause("num_threads").arguments == ["8"]

    def test_critical_named(self):
        pragma = parse_pragma("omp critical (updatelock)")
        assert pragma.directives == ("critical",)
        assert pragma.clause("name").arguments == ["updatelock"]

    def test_atomic_update(self):
        pragma = parse_pragma("omp atomic update")
        assert pragma.has_directive("atomic")
        assert pragma.clause("update") is not None

    def test_target_teams_distribute(self):
        pragma = parse_pragma(
            "omp target teams distribute parallel for map(tofrom: a)"
        )
        assert "target" in pragma.directives
        assert pragma.clause("map").arguments[0] == "tofrom"

    def test_simd_safelen(self):
        pragma = parse_pragma("omp simd safelen(4)")
        assert pragma.has_directive("simd")

    def test_task_depend(self):
        pragma = parse_pragma("omp task depend(out: x)")
        assert pragma.has_directive("task")

    def test_not_omp_raises(self):
        with pytest.raises(PragmaError):
            parse_pragma("once")

    def test_unknown_clause_raises(self):
        with pytest.raises(PragmaError):
            parse_pragma("omp parallel for bogusclause(i)")


class TestParseErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main() { int x = 1 return 0; }")

    def test_unbalanced_brace(self):
        with pytest.raises(ParseError):
            parse("int main() { int x = 1; ")

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError):
            parse("+++")


class TestWalk:
    def test_walk_visits_all_subscripts(self):
        unit = parse(EXAMPLE)
        subs = [n for n in ast.walk(unit) if isinstance(n, ast.ArraySubscript)]
        # a[i] (init), a[i] (write), a[i+1] (read), a[500] in printf
        assert len(subs) == 4
