"""Cross-module integration tests.

These tests exercise whole slices of the pipeline (corpus → dataset →
prompts → models → metrics, corpus → detectors) and check the invariants
that tie the modules together.
"""

import pytest

from repro.core import DataRacePipeline
from repro.dataset import DRBMLDataset, scrape_var_pairs
from repro.dynamic import InspectorLikeDetector
from repro.eval.experiments import evaluate_model_prompt
from repro.eval.matching import base_name
from repro.llm import create_model
from repro.llm.behavior import HEURISTIC_FPR, HEURISTIC_TPR
from repro.llm.features import extract_features
from repro.prompting import PromptStrategy


@pytest.fixture(scope="module")
def pipeline():
    return DataRacePipeline()


@pytest.fixture(scope="module")
def subset(pipeline):
    return pipeline.evaluation_subset()


class TestCorpusDatasetConsistency:
    def test_scraped_labels_equal_generator_ground_truth(self, pipeline):
        """The DRB-ML scraping pipeline must recover exactly what the corpus
        generator seeded (binary label and pair count) for every benchmark."""
        for bench in pipeline.registry:
            scraped = scrape_var_pairs(bench.code)
            assert (len(scraped) > 0) == bench.has_race, bench.name
            assert len(scraped) == len(bench.race_pairs), bench.name

    def test_dataset_names_match_corpus_names(self, pipeline):
        corpus_names = {b.name for b in pipeline.registry}
        dataset_names = {r.name for r in pipeline.dataset.records}
        assert corpus_names == dataset_names

    def test_scraped_pair_variables_match_ground_truth(self, pipeline):
        for bench in pipeline.registry:
            scraped = scrape_var_pairs(bench.code)
            for scraped_pair, truth_pair in zip(scraped, bench.race_pairs):
                assert scraped_pair.first.base_name == truth_pair.first.base_name
                assert scraped_pair.second.base_name == truth_pair.second.base_name


class TestDetectorGroundTruthConsistency:
    def test_inspector_pairs_name_ground_truth_variables(self, pipeline, subset):
        """When the dynamic detector flags a seeded race, the conflicting
        variable it reports must be one of the ground-truth race variables."""
        detector = InspectorLikeDetector(schedules=("static",))
        racy = [b for b in pipeline.registry if b.has_race and b.category == "antidep"][:6]
        for bench in racy:
            result = detector.analyze_benchmark(bench)
            assert result.has_race, bench.name
            truth_vars = {
                base_name(access.name)
                for pair in bench.race_pairs
                for access in (pair.first, pair.second)
            }
            assert set(result.variables()) & truth_vars, bench.name

    def test_static_heuristic_quality_matches_calibration_constants(self, subset):
        """The calibration constants in repro.llm.behavior must reflect the
        actual measured quality of the internal heuristic on the subset."""
        tp = fn = fp = tn = 0
        for record in subset.records:
            predicted = extract_features(record.trimmed_code).heuristic_race
            if record.has_race:
                tp += predicted
                fn += not predicted
            else:
                fp += predicted
                tn += not predicted
        measured_tpr = tp / (tp + fn)
        measured_fpr = fp / (fp + tn)
        assert measured_tpr == pytest.approx(HEURISTIC_TPR, abs=0.05)
        assert measured_fpr == pytest.approx(HEURISTIC_FPR, abs=0.05)


class TestCalibrationEndToEnd:
    def test_gpt4_bp1_rates_match_paper_targets(self, subset):
        """Running the full prompt → generate → parse pipeline must land near
        the paper's GPT-4 BP1 recall / false-positive rate (the calibration
        target), not merely the internal probabilities."""
        counts = evaluate_model_prompt(create_model("gpt-4"), PromptStrategy.BP1, subset.records)
        assert counts.recall == pytest.approx(0.77, abs=0.08)
        fpr = counts.fp / (counts.fp + counts.tn)
        assert fpr == pytest.approx(0.286, abs=0.08)

    def test_model_ranking_matches_paper(self, subset):
        """GPT-4 must beat the other three models under BP1 end to end."""
        f1 = {}
        for name in ("gpt-4", "gpt-3.5-turbo", "starchat-beta"):
            counts = evaluate_model_prompt(create_model(name), PromptStrategy.BP1, subset.records)
            f1[name] = counts.f1
        assert f1["gpt-4"] > f1["gpt-3.5-turbo"]
        assert f1["gpt-4"] > f1["starchat-beta"]


class TestPipelineRoundTrips:
    def test_detect_agrees_with_score_model_counting(self, pipeline, subset):
        records = subset.records[:10]
        counts = pipeline.score_model(
            model="gpt-4", strategy=PromptStrategy.BP1, records=records
        )
        manual = 0
        for record in records:
            outcome = pipeline.detect(record.trimmed_code, model="gpt-4")
            manual += outcome.says_race
        assert counts.tp + counts.fp == manual

    def test_dataset_save_load_preserves_evaluation(self, tmp_path, subset):
        small = DRBMLDataset(records=subset.records[:8])
        small.save(tmp_path)
        loaded = DRBMLDataset.load(tmp_path)
        model = create_model("gpt-4")
        original = evaluate_model_prompt(model, PromptStrategy.BP1, small.records)
        reloaded = evaluate_model_prompt(model, PromptStrategy.BP1, loaded.records)
        assert original.as_row() == reloaded.as_row()
