"""Failure-injection tests: every layer must degrade gracefully on bad input."""

import pytest

from repro.cparse import parse
from repro.cparse.parser import ParseError
from repro.dynamic import InspectorLikeDetector, Interpreter, InterpreterError, InterpreterLimits
from repro.llm import create_model, extract_features
from repro.llm.finetune import FineTuner
from repro.prompting import PromptStrategy, parse_pairs_response, parse_yes_no, render_prompt
from repro.analysis import StaticRaceDetector


NOT_C = "this is definitely not a C translation unit {{{"

NON_TERMINATING = """
int main() {
  int x = 0;
  while (x >= 0)
    x = x + 1;
  return 0;
}
"""

UNSUPPORTED_POINTER_STORE = """
int main() {
  int x = 0;
  int *p;
  *p = 3;
  return 0;
}
"""


class TestFrontendFailures:
    def test_parser_reports_error_not_crash(self):
        with pytest.raises(ParseError):
            parse("int main() { int x = ; }")

    def test_feature_extraction_survives_unparseable_code(self):
        features = extract_features(NOT_C)
        assert features.parses is False
        assert features.heuristic_race is False

    def test_static_detector_propagates_parse_errors(self):
        with pytest.raises(Exception):
            StaticRaceDetector().analyze_source("int main( {")


class TestInterpreterFailures:
    def test_step_limit_stops_runaway_program(self):
        interp = Interpreter(limits=InterpreterLimits(max_steps=5_000, max_loop_iterations=1_000))
        with pytest.raises(InterpreterError):
            interp.run_source(NON_TERMINATING)

    def test_pointer_store_is_rejected_cleanly(self):
        with pytest.raises(InterpreterError):
            Interpreter().run_source(UNSUPPORTED_POINTER_STORE)

    def test_inspector_marks_failure_and_stays_usable(self):
        detector = InspectorLikeDetector(
            schedules=("static",),
            limits=InterpreterLimits(max_steps=5_000, max_loop_iterations=1_000),
        )
        result = detector.analyze_source(NON_TERMINATING, name="runaway")
        assert result.failed is True
        assert result.has_race is False
        assert result.failure_reason

    def test_out_of_bounds_subscript_reported(self):
        code = "int main() { int a[4]; a[9] = 1; return 0; }"
        with pytest.raises(InterpreterError):
            Interpreter().run_source(code)


class TestModelRobustness:
    def test_model_answers_even_for_unparseable_code(self):
        model = create_model("gpt-4")
        response = model.generate(render_prompt(PromptStrategy.BP1, NOT_C))
        assert parse_yes_no(response) is not None

    def test_pair_response_parsing_never_raises(self):
        for text in ("", "{", "yes {broken json", "42", None and "" or "###"):
            parsed = parse_pairs_response(text)
            assert parsed is not None

    def test_finetuner_rejects_empty_training_set(self):
        with pytest.raises(ValueError):
            FineTuner(base=create_model("llama2-7b")).fit([])

    def test_interpreter_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            Interpreter(num_threads=0)

    def test_inspector_requires_a_schedule(self):
        with pytest.raises(ValueError):
            InspectorLikeDetector(schedules=())
