"""The benchmark regression gate's trend logic (benchmarks/ is not a
package, so the module is loaded straight from its file).

The static floors in BENCH_baseline.json are deliberately loose; the
trend gate is what catches slow drift — a run below 0.7× the trailing
median of previously *passing* runs fails even when it clears the floor.
These tests pin that arithmetic and the warn-only behaviour on thin or
damaged history.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_bench_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_bench_regression", _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _history(values, label="metric", status="ok"):
    return [{"status": status, "results": {label: value}} for value in values]


class TestEvaluateTrends:
    def test_warn_only_below_min_points(self, gate):
        lines, failed = gate.evaluate_trends(
            {"metric": 0.01}, _history([5.0, 5.0]), min_points=3
        )
        assert not failed
        assert len(lines) == 1
        assert "warn-only" in lines[0]

    def test_empty_history_never_fails(self, gate):
        lines, failed = gate.evaluate_trends({"metric": 1.0}, [])
        assert not failed
        assert "warn-only" in lines[0]

    def test_value_at_median_passes(self, gate):
        lines, failed = gate.evaluate_trends(
            {"metric": 5.0}, _history([4.0, 5.0, 6.0])
        )
        assert not failed
        assert "ok" in lines[0]

    def test_value_below_p50_fraction_fails(self, gate):
        lines, failed = gate.evaluate_trends(
            {"metric": 3.0}, _history([5.0, 5.0, 5.0]), p50_fraction=0.7
        )
        assert failed
        assert "TREND-REGRESSION" in lines[0]

    def test_value_just_above_threshold_passes(self, gate):
        _, failed = gate.evaluate_trends(
            {"metric": 3.6}, _history([5.0, 5.0, 5.0]), p50_fraction=0.7
        )
        assert not failed

    def test_failed_runs_are_excluded_from_the_reference(self, gate):
        """A string of regressed runs must not drag the median down and
        mask that the regression persists."""
        history = _history([5.0, 5.0, 5.0]) + _history(
            [1.0, 1.0, 1.0], status="regression"
        )
        _, failed = gate.evaluate_trends({"metric": 3.0}, history)
        assert failed  # held to the 5.0 median, not the regressed 1.0s

    def test_window_looks_at_recent_history_only(self, gate):
        """Old slow runs age out: after 20 fast runs, the trailing window
        no longer contains the slow era, so a mid value fails."""
        history = _history([1.0] * 20 + [5.0] * 20)
        _, failed = gate.evaluate_trends({"metric": 3.0}, history, window=20)
        assert failed
        _, failed_wide = gate.evaluate_trends({"metric": 3.0}, history, window=40)
        assert not failed_wide  # the slow era halves the wide-window median

    def test_malformed_records_are_skipped(self, gate):
        history = [
            {"status": "ok"},  # no results
            {"status": "ok", "results": "not-a-dict"},
            {"status": "ok", "results": {"metric": "NaN-string"}},
            {"status": "ok", "results": {"metric": True}},  # bool is not a number
            {"status": "ok", "results": {"other": 9.0}},
        ]
        lines, failed = gate.evaluate_trends({"metric": 0.01}, history)
        assert not failed
        assert "warn-only" in lines[0]

    def test_multiple_metrics_fail_independently(self, gate):
        history = [
            {"status": "ok", "results": {"good": 2.0, "bad": 10.0}}
            for _ in range(5)
        ]
        lines, failed = gate.evaluate_trends({"good": 2.0, "bad": 1.0}, history)
        assert failed
        assert sum("TREND-REGRESSION" in line for line in lines) == 1


class TestLoadHistory:
    def test_missing_file_is_empty(self, gate, tmp_path):
        assert gate.load_history(tmp_path / "nope.jsonl") == []

    def test_corrupt_lines_are_skipped(self, gate, tmp_path):
        path = tmp_path / "history.jsonl"
        good = {"status": "ok", "results": {"metric": 1.0}}
        path.write_text(
            json.dumps(good) + "\n{truncated\n\n[1,2]\n" + json.dumps(good) + "\n",
            encoding="utf-8",
        )
        records = gate.load_history(path)
        assert records == [good, good]
