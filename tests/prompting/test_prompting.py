"""Tests for prompt templates, chains and response parsing."""

import pytest

from repro.prompting import (
    PromptStrategy,
    SequentialChain,
    parse_pairs_response,
    parse_yes_no,
    render_prompt,
    run_strategy,
)
from repro.prompting.chains import ChainStep, ap2_chain


CODE = "#include <stdio.h>\nint main() { return 0; }\n"


class TestTemplates:
    def test_bp1_is_succinct_detection(self):
        prompt = render_prompt(PromptStrategy.BP1, CODE)
        assert "concise response" in prompt and CODE in prompt
        assert "JSON" not in prompt

    def test_bp2_requests_json_pairs(self):
        prompt = render_prompt(PromptStrategy.BP2, CODE)
        assert "JSON format" in prompt and '"col"' in prompt

    def test_ap1_includes_definition(self):
        prompt = render_prompt(PromptStrategy.AP1, CODE)
        assert "data race occurs when two or more threads" in prompt

    def test_ap2_first_prompt_is_analysis_only(self):
        prompt = render_prompt(PromptStrategy.AP2, CODE)
        assert "Analyze data dependence" in prompt
        assert "concise response" not in prompt

    def test_advanced_requests_variable_names(self):
        prompt = render_prompt(PromptStrategy.ADVANCED, CODE)
        assert "variable_names" in prompt

    def test_strategy_flags(self):
        assert PromptStrategy.AP2.is_chained
        assert PromptStrategy.BP2.requests_pairs
        assert not PromptStrategy.BP1.requests_pairs


class TestChains:
    def test_sequential_chain_passes_outputs_forward(self):
        chain = SequentialChain(
            [
                ChainStep("first", lambda ctx: f"step1:{ctx['code']}"),
                ChainStep("second", lambda ctx: f"step2:{ctx['first']}"),
            ]
        )
        outputs = chain.run(lambda p: p.upper(), {"code": "abc"})
        assert outputs["first"] == "STEP1:ABC"
        assert outputs["second"] == "STEP2:STEP1:ABC"

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            SequentialChain([])

    def test_ap2_chain_issues_two_calls(self):
        calls = []

        def fake_model(prompt):
            calls.append(prompt)
            return "no dependences found" if len(calls) == 1 else "no"

        response = run_strategy(fake_model, PromptStrategy.AP2, CODE)
        assert len(calls) == 2
        assert "no dependences found" in calls[1]
        assert response == "no"

    def test_non_chained_strategy_single_call(self):
        calls = []
        run_strategy(lambda p: calls.append(p) or "yes", PromptStrategy.BP1, CODE)
        assert len(calls) == 1


class TestYesNoParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("yes, there is a data race", True),
            ("Yes.", True),
            ("no, the code is safe", False),
            ("No data race is present", False),
            ("The answer is yes although no synchronization exists", True),
            ("", None),
            ("cannot determine", None),
        ],
    )
    def test_verdict_extraction(self, text, expected):
        assert parse_yes_no(text) is expected

    def test_first_keyword_wins(self):
        assert parse_yes_no("no. Well, actually yes.") is False


class TestPairParsing:
    def test_json_pairs(self):
        text = (
            'yes.\n{"data_race": 1, "variable_names": ["a[i]", "a[i+1]"], '
            '"variable_locations": [12, 12], "operation_types": ["write", "read"]}'
        )
        parsed = parse_pairs_response(text)
        assert parsed.race is True
        assert parsed.names == [("a[i]", "a[i+1]")]
        assert parsed.lines == [(12, 12)]
        assert parsed.operations == [("W", "R")]

    def test_prose_fallback(self):
        text = (
            "Yes, the provided code exhibits data race issues. The data race is caused "
            "by the variable 'x' at line 9 and the variable 'x' at line 26."
        )
        parsed = parse_pairs_response(text)
        assert parsed.used_fallback
        assert parsed.names == [("x", "x")]
        assert parsed.lines == [(9, 26)]

    def test_negative_json(self):
        parsed = parse_pairs_response('no.\n{"data_race": 0}')
        assert parsed.race is False and not parsed.has_pairs

    def test_garbage_returns_verdict_only(self):
        parsed = parse_pairs_response("maybe yes maybe not, hard to tell")
        assert parsed.race is True  # first keyword is "yes"
        assert not parsed.has_pairs

    def test_malformed_json_falls_back(self):
        parsed = parse_pairs_response('yes {"variable_names": ["a[i]"')
        assert parsed.race is True
