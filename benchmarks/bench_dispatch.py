"""Dispatch-mode throughput — dynamic completion-order + LPT vs. ordered map.

The engine's workload is embarrassingly parallel but *heterogeneous*: a
slow model's chunks cost an order of magnitude more wall time than a fast
model's.  The reference dispatch path (``dispatch="ordered"``, no LPT, no
adaptive sizing) chunks every group to the same static ``batch_size`` and
submits them in plan order — so when the slow model happens to sit at the
end of the plan (exactly where the expensive fine-tuned ADVANCED groups
land in the paper's table order), its big chunks start last and the whole
run drains down to a handful of straggler workers while the rest idle.

The tuned path measured here stacks the three scheduler features this
repo's cost model enables:

* **LPT ordering** — chunks dispatched longest-processing-time first, so
  the slow group starts at t=0 and the cheap chunks pack into the gaps;
* **adaptive chunk sizing** — the slow group is split into smaller chunks
  (finer scheduling granularity, no long indivisible tail), fast groups
  into larger ones;
* **dynamic dispatch** — results merge in completion order through
  ``map_unordered`` instead of blocking behind an order-preserving map.

The cost model is primed by one untimed run over the same requests (the
production equivalent: the persisted ``costmodel.json`` of any earlier
session).  Models sleep a deterministic per-(model, prompt) latency, so
both schedules execute identical work and must produce identical results —
the benchmark asserts bit-identical responses, then demands the tuned path
be at least ``MIN_SPEEDUP`` times faster.  Writes ``BENCH_dispatch.json``
(repo root); CI's ``check_bench_regression.py`` compares it against the
committed baseline.
"""

import json
import time
from pathlib import Path

from conftest import run_once

from repro.engine import CostModel, ExecutionEngine, build_requests
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy

#: Heterogeneous per-call latencies; llama2 is the straggler group, and it
#: is built *last*, so plan order puts its chunks at the end of the queue.
MODEL_LATENCY_S = {
    "gpt-3.5-turbo": 0.002,
    "starchat-beta": 0.004,
    "gpt-4": 0.006,
    "llama2-7b": 0.040,
}
#: Deterministic per-prompt jitter (same prompt -> same sleep in each run).
LATENCY_JITTER_S = 0.002
N_RECORDS = 16
JOBS = 6
BATCH_SIZE = 8
#: The committed floor CI enforces (see benchmarks/baselines/).
MIN_SPEEDUP = 1.3

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dispatch.json"


def _build_requests(records):
    """One BP1 detection sweep per model, slowest model last in plan order."""
    requests = []
    for name, latency in MODEL_LATENCY_S.items():
        model = create_model(name, latency_s=latency, latency_jitter_s=LATENCY_JITTER_S)
        requests.extend(build_requests(model, PromptStrategy.BP1, records))
    return requests


def _fingerprint(store):
    return [(r.model, r.strategy, r.record_name, r.response) for r in store]


def _measure(records, *, dispatch, lpt, adaptive, cost_model):
    """Fresh engine and models per measurement; returns (fingerprint, s)."""
    requests = _build_requests(records)
    with ExecutionEngine(
        jobs=JOBS,
        batch_size=BATCH_SIZE,
        dispatch=dispatch,
        lpt=lpt,
        adaptive_batching=adaptive,
        cost_model=cost_model,
    ) as engine:
        start = time.perf_counter()
        store = engine.run(requests)
        return _fingerprint(store), time.perf_counter() - start


def test_dynamic_lpt_vs_ordered_static_map(benchmark, subset):
    records = subset.records[:N_RECORDS]

    # Prime the cost model the way a real deployment would be primed: by a
    # previous run's observed latencies (persisted as costmodel.json).
    cost_model = CostModel()
    _measure(records, dispatch="dynamic", lpt=False, adaptive=False, cost_model=cost_model)

    ordered_results, ordered_s = _measure(
        records, dispatch="ordered", lpt=False, adaptive=False, cost_model=CostModel()
    )
    dynamic_results, dynamic_s = run_once(
        benchmark,
        lambda: _measure(
            records, dispatch="dynamic", lpt=True, adaptive=True, cost_model=cost_model
        ),
    )

    n_requests = len(ordered_results)
    speedup = ordered_s / dynamic_s
    payload = {
        "requests": n_requests,
        "jobs": JOBS,
        "batch_size": BATCH_SIZE,
        "simulated_latency_s": MODEL_LATENCY_S,
        "simulated_latency_jitter_s": LATENCY_JITTER_S,
        "ordered_static_map": {
            "seconds": round(ordered_s, 4),
            "requests_per_second": round(n_requests / ordered_s, 2),
        },
        "dynamic_lpt_adaptive": {
            "seconds": round(dynamic_s, 4),
            "requests_per_second": round(n_requests / dynamic_s, 2),
            "cost_model_groups": cost_model.snapshot(),
        },
        "speedup_dynamic_lpt_vs_ordered": round(speedup, 2),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print()
    print(
        f"dispatch: ordered static map {ordered_s * 1000:.0f}ms, "
        f"dynamic+LPT+adaptive {dynamic_s * 1000:.0f}ms ({speedup:.1f}x)"
    )

    # Pure scheduling refactor: identical responses either way.
    assert dynamic_results == ordered_results
    assert speedup >= MIN_SPEEDUP, (
        f"dynamic+LPT must be >= {MIN_SPEEDUP}x ordered static map, got {speedup:.2f}x"
    )
