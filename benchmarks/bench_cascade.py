"""Tiered detection cascade — the cost/accuracy frontier vs LLM-only.

The paper's strongest detector is also its most expensive: every record
pays a full LLM round trip even when the static analyzer could have
answered it in microseconds.  The cascade (``--cascade``) routes each
record through an ordered ladder of cheap tiers — static analyzer, then a
fast zoo model — and escalates only low-confidence or disagreeing
verdicts to the requested model, so the expensive backend sees a fraction
of the workload.

This benchmark scores the same mixed-difficulty DRB-ML subset two ways
against a simulated *remote* GPT-4 (fixed per-call transport latency, the
regime where the cascade pays off):

* **LLM-only** — every record through the remote model;
* **cascade** — default ladder in front of the same remote model.

Gated on both sides of the frontier: the cascade must be at least
``MIN_SPEEDUP``× faster end to end *and* lose no more than one accuracy
point (``accuracy_margin_pts >= MIN_ACCURACY_MARGIN_PTS``, where the
margin is ``1.0 + (cascade_acc - llm_acc) * 100`` — a floor of 0.0 is
exactly "≤ 1pt loss"; in practice the ladder *gains* accuracy here
because the analyzer's clean verdicts are near-ground-truth).  Writes
``BENCH_cascade.json`` (repo root); CI's ``check_bench_regression.py``
compares it against the committed floors and the trailing trend.
"""

import json
import statistics
import time
from pathlib import Path

from conftest import run_once

from repro.engine import CascadePolicy, ExecutionEngine, build_requests
from repro.llm.adapters import AsyncRemoteAdapter
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy

#: Simulated remote-API latency of the expensive final model.
REMOTE_LATENCY_S = 0.06
N_RECORDS = 64
#: Deliberately throughput-bound: fewer workers than chunks, small chunks,
#: so wall time tracks the *amount* of expensive work, which is what the
#: cascade removes (a latency-bound run with idle capacity would hide it).
JOBS = 4
BATCH_SIZE = 2
TRIALS = 3
#: Asserted floor — equal to the committed baseline (benchmarks/baselines/),
#: so the regression gate stays the deciding check on noisy CI runners.
MIN_SPEEDUP = 2.0
#: 1pt accuracy-loss budget expressed as a non-negative margin.
MIN_ACCURACY_MARGIN_PTS = 0.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cascade.json"


def _remote_gpt4():
    return AsyncRemoteAdapter(create_model("gpt-4"), latency_s=REMOTE_LATENCY_S)


def _measure(records, *, cascade):
    """One trial: fresh engine, same requests, cascade on or off."""
    model = _remote_gpt4()
    policy = CascadePolicy.from_spec() if cascade else None
    requests = build_requests(model, PromptStrategy.BP1, records)
    with ExecutionEngine(
        jobs=JOBS,
        executor_kind="thread",
        batch_size=BATCH_SIZE,
        cascade=policy,
        adaptive_batching=False,
    ) as engine:
        start = time.perf_counter()
        store = engine.run(requests)
        elapsed = time.perf_counter() - start
        return store.confusion(), elapsed, engine.telemetry.cascade_snapshot()


def test_cascade_frontier_beats_llm_only(benchmark, subset):
    records = subset.records[:N_RECORDS]

    llm_times, cascade_times = [], []
    llm_counts = cascade_counts = None
    escalated = 0
    for _ in range(TRIALS):
        llm_counts, seconds, _ = _measure(records, cascade=False)
        llm_times.append(seconds)

    def _cascade_trials():
        nonlocal cascade_counts, escalated
        for _ in range(TRIALS):
            cascade_counts, seconds, tiers = _measure(records, cascade=True)
            cascade_times.append(seconds)
            escalated = sum(
                row["requests"] for row in tiers if row["tier"] == "final"
            )

    run_once(benchmark, _cascade_trials)

    llm_s = statistics.median(llm_times)
    cascade_s = statistics.median(cascade_times)
    speedup = llm_s / cascade_s
    llm_acc = llm_counts.accuracy
    cascade_acc = cascade_counts.accuracy
    accuracy_margin_pts = 1.0 + (cascade_acc - llm_acc) * 100.0

    payload = {
        "requests": len(records),
        "trials": TRIALS,
        "jobs": JOBS,
        "batch_size": BATCH_SIZE,
        "remote_latency_s": REMOTE_LATENCY_S,
        "tiers": "static,gpt-3.5-turbo",
        "llm_only": {
            "median_seconds": round(llm_s, 4),
            "seconds": [round(s, 4) for s in llm_times],
            "accuracy": round(llm_acc, 4),
        },
        "cascade": {
            "median_seconds": round(cascade_s, 4),
            "seconds": [round(s, 4) for s in cascade_times],
            "accuracy": round(cascade_acc, 4),
            "escalated_to_final": escalated,
        },
        "speedup_cascade_vs_llm_only": round(speedup, 2),
        "accuracy_margin_pts": round(accuracy_margin_pts, 2),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print()
    print(
        f"cascade: LLM-only {llm_s * 1000:.0f}ms acc {llm_acc:.3f} vs cascade "
        f"{cascade_s * 1000:.0f}ms acc {cascade_acc:.3f} ({speedup:.1f}x, margin "
        f"{accuracy_margin_pts:.1f}pt) over {TRIALS} trials; "
        f"escalations to final tier: {escalated}"
    )

    # The cascade is deterministic: identical verdicts across trials.
    assert cascade_counts.total == llm_counts.total == len(records)
    assert speedup >= MIN_SPEEDUP, (
        f"cascade must be >= {MIN_SPEEDUP}x faster than LLM-only against a "
        f"remote backend, got {speedup:.2f}x"
    )
    assert accuracy_margin_pts >= MIN_ACCURACY_MARGIN_PTS, (
        f"cascade may lose at most 1 accuracy point vs LLM-only, got "
        f"{cascade_acc:.3f} vs {llm_acc:.3f}"
    )
