"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables; the DRB-ML evaluation
subset, the corpus and the execution engine are built once per session and
shared.  Sharing the engine means later benchmarks reuse cached responses
for (model, prompt) pairs an earlier table already asked about — exactly
what a production evaluation service would do.
"""

import pytest

from repro.corpus import CorpusConfig, build_corpus
from repro.engine import ExecutionEngine, ResponseCache
from repro.eval.experiments import default_subset


@pytest.fixture(scope="session")
def corpus_config():
    return CorpusConfig()


@pytest.fixture(scope="session")
def corpus(corpus_config):
    return build_corpus(corpus_config)


@pytest.fixture(scope="session")
def subset(corpus_config):
    """The ≤4k-token DRB-ML evaluation subset (198 records)."""
    return default_subset(corpus_config)


@pytest.fixture(scope="session")
def engine():
    """One thread-pooled, cached engine shared by every table benchmark.

    Engine results are bit-identical to serial uncached execution, so the
    benchmarks' shape assertions are unaffected; only wall time changes.
    """
    return ExecutionEngine(jobs=4, cache=ResponseCache())


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic and some take several seconds, so a
    single round gives a faithful wall-clock number without repeating the
    full table computation many times.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
