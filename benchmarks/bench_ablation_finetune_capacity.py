"""Ablation — fine-tuning adapter capacity (LoRA rank).

The paper fixes the LoRA dimension at 64; this ablation sweeps the adapter
rank to show the fine-tuning result is not an artefact of one capacity choice
(DESIGN.md §5.3): tiny ranks underfit, larger ranks saturate.
"""

from conftest import run_once

from repro.eval.crossval import run_finetune_crossval
from repro.eval.reporting import format_crossval_table
from repro.llm.finetune import FineTuneConfig


def test_ablation_adapter_rank(benchmark, subset):
    ranks = (4, 64, 128)

    def run():
        rows = {}
        for rank in ranks:
            config = FineTuneConfig.for_model("starchat-beta", lora_rank=rank)
            result = run_finetune_crossval(
                subset, "starchat-beta", kind="basic", n_folds=5, seed=7, config=config
            )
            rows[f"starchat-FT-r{rank}"] = result.tuned_stats.as_row()
            if rank == ranks[0]:
                rows["starchat-base"] = result.base_stats.as_row()
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_crossval_table(rows, title="Ablation — adapter rank sweep (basic-FT)"))

    f1 = {name: values[4] for name, values in rows.items()}
    assert f1["starchat-FT-r64"] >= f1["starchat-FT-r4"] - 0.05
    assert abs(f1["starchat-FT-r128"] - f1["starchat-FT-r64"]) < 0.1
