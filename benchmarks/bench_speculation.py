"""Speculative re-execution — tail-latency control on a flaky backend.

At DRB scale a run fans hundreds of prompts against remote APIs whose tail
behaviour is ugly: most calls answer in tens of milliseconds, but a flaky
connection or a stuck provider queue occasionally hangs one for an order
of magnitude longer.  Under dynamic dispatch a single such hang becomes
the whole run's makespan — every other worker drains the queue and idles
while one chunk sleeps.

Speculative re-execution (``--speculate``) caps that tail: the dispatcher
watches in-flight chunks against the cost model's p95 estimate and races a
duplicate of any straggler into idle capacity; the first completion wins
and the loser is dropped.  Because tail-latency control is about the
*distribution*, not the mean, this benchmark gates on **p95 wall time**
over repeated trials: the same requests through a
:class:`~repro.llm.adapters.FlakyTailAdapter` (deterministic heavy-tail
first-attempt hangs, identical across modes), speculation off vs. on.
Responses must be bit-identical — speculation is a pure execution
optimisation — and the speculative p95 must beat the non-speculative p95
by at least ``MIN_SPEEDUP``.  Writes ``BENCH_speculation.json`` (repo
root); CI's ``check_bench_regression.py`` compares it against the
committed floor.
"""

import json
import time
from pathlib import Path

from conftest import run_once

from repro.engine import ExecutionEngine, build_requests
from repro.llm.adapters import FlakyTailAdapter
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy

#: Base per-call latency — the healthy-wire regime.
MODEL_LATENCY_S = 0.01
#: What a flaky first attempt costs instead (the heavy tail).
TAIL_LATENCY_S = 0.35
#: Fraction of prompts that hang on first attempt (deterministic set).
TAIL_RATIO = 0.12
N_RECORDS = 32
JOBS = 8
BATCH_SIZE = 4
#: Straggler threshold multiplier over the p95 chunk estimate.
SPECULATE_AFTER = 1.5
#: Wall-time samples per mode; p95 over these gates the comparison.
TRIALS = 5
#: Asserted floor — equal to the committed baseline (benchmarks/baselines/),
#: so the regression gate stays the deciding check on noisy CI runners.
MIN_SPEEDUP = 1.3
#: What the tentpole demands on a healthy machine (~2.5x measured); tracked
#: in the emitted payload, enforced as a floor only through MIN_SPEEDUP.
TARGET_SPEEDUP = 2.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_speculation.json"


def _fingerprint(store):
    return [(r.model, r.strategy, r.record_name, r.response) for r in store]


def _p95(samples):
    ordered = sorted(samples)
    index = max(0, min(len(ordered) - 1, round(0.95 * len(ordered)) - 1))
    return ordered[index]


def _measure(records, *, speculate):
    """One trial: fresh adapter (fresh attempt history — every tail prompt
    hangs again), fresh engine with a pre-warmed cost model (speculation
    needs an estimate of "normal" before it can call anything a straggler;
    a long-lived engine has one from its own telemetry, a fresh one loads
    costmodel.json)."""
    model = FlakyTailAdapter(
        create_model("gpt-4"),
        latency_s=MODEL_LATENCY_S,
        tail_latency_s=TAIL_LATENCY_S,
        tail_ratio=TAIL_RATIO,
    )
    requests = build_requests(model, PromptStrategy.BP1, records)
    with ExecutionEngine(
        jobs=JOBS,
        executor_kind="thread",
        batch_size=BATCH_SIZE,
        speculate=speculate,
        speculate_after=SPECULATE_AFTER,
        adaptive_batching=False,
    ) as engine:
        engine.speculation_poll_s = 0.005
        for _ in range(3):
            engine.cost_model.observe(model.cache_identity, "BP1", MODEL_LATENCY_S * 1.2)
        start = time.perf_counter()
        store = engine.run(requests)
        elapsed = time.perf_counter() - start
        return _fingerprint(store), elapsed, engine.telemetry.snapshot()


def test_speculation_caps_tail_latency(benchmark, subset):
    records = subset.records[:N_RECORDS]

    off_times, on_times = [], []
    off_results = on_results = None
    launched = won = wasted = 0
    for _ in range(TRIALS):
        off_results, off_s, _ = _measure(records, speculate=False)
        off_times.append(off_s)
    def _speculative_trials():
        nonlocal on_results, launched, won, wasted
        for _ in range(TRIALS):
            on_results, on_s, stats = _measure(records, speculate=True)
            on_times.append(on_s)
            launched += stats["speculation_launched"]
            won += stats["speculation_won"]
            wasted += stats["speculation_wasted"]
    run_once(benchmark, _speculative_trials)

    p95_off, p95_on = _p95(off_times), _p95(on_times)
    speedup = p95_off / p95_on
    payload = {
        "requests": len(records),
        "trials": TRIALS,
        "jobs": JOBS,
        "batch_size": BATCH_SIZE,
        "base_latency_s": MODEL_LATENCY_S,
        "tail_latency_s": TAIL_LATENCY_S,
        "tail_ratio": TAIL_RATIO,
        "speculate_after": SPECULATE_AFTER,
        "speculation_off": {
            "p95_seconds": round(p95_off, 4),
            "seconds": [round(s, 4) for s in off_times],
        },
        "speculation_on": {
            "p95_seconds": round(p95_on, 4),
            "seconds": [round(s, 4) for s in on_times],
            "launched": launched,
            "won": won,
            "wasted": wasted,
        },
        "speedup_speculative_vs_off_p95": round(speedup, 2),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print()
    print(
        f"speculation: p95 off {p95_off * 1000:.0f}ms, on {p95_on * 1000:.0f}ms "
        f"({speedup:.1f}x) over {TRIALS} trials; races launched={launched} "
        f"won={won} wasted={wasted} (target {TARGET_SPEEDUP}x, floor {MIN_SPEEDUP}x)"
    )

    # Pure execution optimisation: identical responses either way.
    assert on_results == off_results
    assert won >= 1, "speculation never won a race — the tail was not capped"
    assert speedup >= MIN_SPEEDUP, (
        f"speculative p95 must be >= {MIN_SPEEDUP}x better than non-speculative "
        f"p95 on a tail-heavy adapter, got {speedup:.2f}x"
    )
