"""Goodput under fault injection — the fault-tolerance plane's benchmark.

A long evaluation run against remote model APIs will see transient
failures: rate limits, dropped connections, the occasional malformed
batch.  Before the fault-tolerance plane, any one of them aborted the
whole run — goodput under faults was zero.  With ``--retries`` the
dispatcher backs failing chunks off and re-dispatches them, the executor
seam (:class:`~repro.engine.executors.SubmitStream`) guarantees one
chunk's failure cancels nothing else, and exhausted retries degrade to
explicit failed results instead of an exception.

This benchmark injects a deterministic 10% transient-fault rate (plus a
pinch of malformed batches) through
:class:`~repro.llm.adapters.ChaosAdapter` and gates on **goodput**: the
chaotic runs must score at least ``MIN_GOODPUT_RATIO`` of the records
the fault-free run scores, and *every* chaotic trial must complete —
zero aborted runs.  With the retry budget here recovery is actually
total (the chaos-equivalence tests pin bit-identical confusions), so the
measured ratio is 1.0 and the floor only absorbs future policy changes.
Writes ``BENCH_chaos.json`` (repo root); CI's
``check_bench_regression.py`` compares it against the committed floor.
"""

import json
import time
from pathlib import Path

from conftest import run_once

from repro.engine import ExecutionEngine, build_requests
from repro.llm.adapters import ChaosAdapter, reset_chaos_attempts
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy

#: Fraction of prompts scheduled to fail transiently on first attempt.
TRANSIENT_RATIO = 0.10
#: A pinch of wrong-length batches exercises the malformed-response path.
MALFORMED_RATIO = 0.02
#: Retry budget; thread workers share one attempt registry, so one retry
#: per scheduled failure would already suffice (pigeonhole bound).
RETRIES = 3
RETRY_BASE_MS = 1.0
JOBS = 8
BATCH_SIZE = 8
#: Chaotic trials; every one must complete without an abort.
TRIALS = 3
#: Asserted floor — equal to the committed baseline (benchmarks/baselines/),
#: so the regression gate stays the deciding check on noisy CI runners.
MIN_GOODPUT_RATIO = 0.95

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"


def _measure(records, *, chaos, salt="bench-chaos"):
    """One run: scored (non-failed) record count, wall time, telemetry."""
    model = create_model("gpt-4")
    if chaos:
        reset_chaos_attempts()
        model = ChaosAdapter(
            model,
            transient_ratio=TRANSIENT_RATIO,
            malformed_ratio=MALFORMED_RATIO,
            fail_attempts=1,
            salt=salt,
        )
    requests = build_requests(model, PromptStrategy.BP1, records)
    with ExecutionEngine(
        jobs=JOBS,
        executor_kind="thread",
        batch_size=BATCH_SIZE,
        retries=RETRIES,
        retry_base_ms=RETRY_BASE_MS,
    ) as engine:
        start = time.perf_counter()
        store = engine.run(requests)
        elapsed = time.perf_counter() - start
        stats = engine.telemetry.snapshot()
    scored = sum(1 for r in store.results if not (r.failed or r.skipped))
    return scored, elapsed, stats


def test_goodput_under_injected_faults(benchmark, subset):
    records = subset.records

    clean_scored, clean_s, _ = _measure(records, chaos=False)
    assert clean_scored == len(records)

    trials = []
    aborted = 0

    def _chaotic_trials():
        nonlocal aborted
        for trial in range(TRIALS):
            try:
                scored, elapsed, stats = _measure(
                    records, chaos=True, salt=f"bench-chaos-{trial}"
                )
            except Exception:  # an abort is exactly what the plane must prevent
                aborted += 1
                continue
            trials.append(
                {
                    "scored": scored,
                    "seconds": round(elapsed, 4),
                    "retries": stats["retries"],
                    "giveups": stats["retry_giveups"],
                    "failed": stats["failed_requests"],
                }
            )

    run_once(benchmark, _chaotic_trials)

    completed_fraction = (TRIALS - aborted) / TRIALS
    goodput_ratio = (
        min(t["scored"] for t in trials) / clean_scored if trials else 0.0
    )
    payload = {
        "requests": len(records),
        "trials": TRIALS,
        "jobs": JOBS,
        "batch_size": BATCH_SIZE,
        "transient_ratio": TRANSIENT_RATIO,
        "malformed_ratio": MALFORMED_RATIO,
        "retries": RETRIES,
        "fault_free": {"scored": clean_scored, "seconds": round(clean_s, 4)},
        "chaotic_trials": trials,
        "aborted_runs": aborted,
        "completed_run_fraction": round(completed_fraction, 4),
        "goodput_ratio_vs_fault_free": round(goodput_ratio, 4),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print()
    total_retries = sum(t["retries"] for t in trials)
    print(
        f"chaos: goodput {goodput_ratio:.2f}x fault-free over {TRIALS} trials "
        f"({aborted} aborted) at {TRANSIENT_RATIO:.0%} transient + "
        f"{MALFORMED_RATIO:.0%} malformed faults; {total_retries} retries "
        f"(floor {MIN_GOODPUT_RATIO}x, zero aborts)"
    )

    assert aborted == 0, f"{aborted}/{TRIALS} chaotic runs aborted"
    assert goodput_ratio >= MIN_GOODPUT_RATIO, (
        f"goodput under {TRANSIENT_RATIO:.0%} transient faults must stay >= "
        f"{MIN_GOODPUT_RATIO}x the fault-free scored-record count, got "
        f"{goodput_ratio:.2f}x"
    )
