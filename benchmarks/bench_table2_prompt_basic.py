"""Table 2 — GPT-3.5-turbo with the two basic prompts (BP1 vs BP2).

Paper values: BP1 → TP66 FP55 TN43 FN34 (F1 0.597); BP2 → TP35 FP26 TN72
FN65 (F1 0.435).  The expected shape is that the succinct BP1 prompt clearly
beats the multi-task BP2 prompt.
"""

from conftest import run_once

from repro.eval.experiments import run_table2
from repro.eval.reporting import format_confusion_table


def test_table2_bp1_vs_bp2(benchmark, subset, engine):
    rows = run_once(benchmark, lambda: run_table2(subset, engine=engine))
    print()
    print(format_confusion_table(rows, title="Table 2 — GPT-3.5-turbo, BP1 vs BP2"))

    by_prompt = {row.prompt: row.counts for row in rows}
    assert by_prompt["BP1"].f1 > by_prompt["BP2"].f1, "BP1 must beat BP2 (paper Table 2)"
    assert by_prompt["BP2"].recall < by_prompt["BP1"].recall
