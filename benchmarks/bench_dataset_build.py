"""Table 1 — DRB-ML construction.

Regenerates the dataset the paper's Table 1 documents: 201 JSON records with
the full key/value schema, the ≤4k-token subset of 198 records, and the
paper's class balance (~50.5 % race-yes), and reports the build time.
"""

from conftest import run_once

from repro.dataset import DRBMLDataset


def test_table1_drbml_build(benchmark, corpus):
    def build():
        return DRBMLDataset.from_benchmarks(corpus)

    dataset = run_once(benchmark, build)
    subset = dataset.token_subset()

    assert len(dataset) == 201
    assert len(subset) == 198
    assert len(subset.positives()) == 100 and len(subset.negatives()) == 98

    print()
    print("Table 1 (dataset construction)")
    print(dataset.summary())
    sample = dataset.records[0]
    print("record keys:", sorted(sample.to_dict().keys()))
