"""Engine throughput — records/sec under serial vs. thread-pool execution.

The simulated models take a per-call latency here (``latency_s``) standing
in for the network round-trip that dominates real API calls.  The serial
executor pays it once per record; the thread pool overlaps the waits, which
is where the engine's speedup comes from in production.  Responses are
unaffected, so both paths must produce identical confusion counts.

Writes ``BENCH_engine.json`` (repo root) with the measured throughputs,
speedup and per-engine telemetry snapshots.
"""

import json
import time
from pathlib import Path

from conftest import run_once

from repro.engine import ExecutionEngine, ResponseCache, build_requests
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy

#: Simulated per-call model latency (a cheap stand-in for network time).
LATENCY_S = 0.015
N_RECORDS = 48
JOBS = 8
#: Small enough that the thread pool always has ≥ JOBS chunks to schedule.
BATCH_SIZE = 4

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _measure(records, *, jobs, cache=None):
    """Fresh model + engine; returns (counts, records/sec, telemetry dict)."""
    model = create_model("gpt-4", latency_s=LATENCY_S)
    engine = ExecutionEngine(jobs=jobs, cache=cache, batch_size=BATCH_SIZE)
    requests = build_requests(model, PromptStrategy.BP1, records, scoring="detection")
    start = time.perf_counter()
    counts = engine.run_counts(requests)
    elapsed = time.perf_counter() - start
    return counts, len(records) / elapsed, engine.telemetry.snapshot()


def test_engine_throughput_thread_pool_vs_serial(benchmark, subset):
    records = subset.records[:N_RECORDS]

    serial_counts, serial_rps, serial_stats = _measure(records, jobs=1)
    threaded_counts, threaded_rps, threaded_stats = run_once(
        benchmark, lambda: _measure(records, jobs=JOBS)
    )

    # A warm cache serves every request without touching the model at all.
    cache = ResponseCache()
    _measure(records, jobs=1, cache=cache)
    cached_counts, cached_rps, cached_stats = _measure(records, jobs=1, cache=cache)

    speedup = threaded_rps / serial_rps
    payload = {
        "records": len(records),
        "model": "gpt-4",
        "strategy": "BP1",
        "simulated_latency_s": LATENCY_S,
        "serial": {"records_per_second": round(serial_rps, 2), "telemetry": serial_stats},
        "thread_pool": {
            "jobs": JOBS,
            "records_per_second": round(threaded_rps, 2),
            "telemetry": threaded_stats,
        },
        "warm_cache": {
            "records_per_second": round(cached_rps, 2),
            "telemetry": cached_stats,
        },
        "speedup_thread_pool_vs_serial": round(speedup, 2),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print()
    print(
        f"engine throughput: serial {serial_rps:.1f} rec/s, "
        f"thread-pool({JOBS}) {threaded_rps:.1f} rec/s ({speedup:.1f}x), "
        f"warm cache {cached_rps:.1f} rec/s"
    )

    # Pure execution refactor: identical counts on every path.
    assert serial_counts.as_row() == threaded_counts.as_row() == cached_counts.as_row()
    assert cached_stats["cache_hit_rate"] > 0.0
    assert speedup >= 2.0, f"thread pool must be >= 2x serial, got {speedup:.2f}x"
