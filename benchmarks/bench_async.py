"""Async-native model I/O — event-loop awaits vs. thread-offloaded sync calls.

The paper's workload is hundreds of independent detection prompts fanned
out against remote LLM APIs: latency-bound I/O, the regime where threads
are the wrong concurrency primitive.  A thread backend overlaps at most
``--jobs`` blocking calls — inside one chunk, ``generate_batch`` walks its
prompts *serially*, so a chunk of B prompts against a 50 ms API costs
B x 50 ms of wall time no matter how many threads exist.  The async-native
path dispatches each chunk as a coroutine: ``generate_batch_async`` fans
the whole chunk out in one gather, every latency overlaps on one event
loop, and the micro-batch coalescer merges chunks waiting for a slot into
single wire calls.

This benchmark pins that difference at **equal ``--jobs``**: the same
requests against simulated 50 ms-latency adapters (deterministic per-prompt
jitter, so both backends execute identical sleeps), thread backend vs.
async backend.  Responses must be bit-identical — the async path is a pure
transport change — and the async backend must be at least ``MIN_SPEEDUP``
times faster.  Writes ``BENCH_async.json`` (repo root); CI's
``check_bench_regression.py`` compares it against the committed floor.
"""

import json
import time
from pathlib import Path

from conftest import run_once

from repro.engine import ExecutionEngine, build_requests
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy

#: Simulated per-call network latency — the paper's remote-API regime.
MODEL_LATENCY_S = 0.05
#: Deterministic per-prompt jitter (same prompt -> same sleep in each run).
LATENCY_JITTER_S = 0.01
N_RECORDS = 32
#: Equal on both backends: thread-pool width there, offload-pool width here.
JOBS = 4
BATCH_SIZE = 8
#: Asserted floor — equal to the committed baseline (benchmarks/baselines/),
#: like every other benchmark, so the regression gate stays the deciding
#: check on noisy CI runners.
MIN_SPEEDUP = 2.0
#: What the tentpole demands on a healthy machine (~5x measured); tracked
#: in the emitted payload, enforced as a floor only through MIN_SPEEDUP.
TARGET_SPEEDUP = 3.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_async.json"


def _build_requests(records):
    model = create_model(
        "gpt-4", latency_s=MODEL_LATENCY_S, latency_jitter_s=LATENCY_JITTER_S
    )
    return build_requests(model, PromptStrategy.BP1, records)


def _fingerprint(store):
    return [(r.model, r.strategy, r.record_name, r.response) for r in store]


def _measure(records, executor_kind):
    """Fresh engine and model per measurement; returns (fingerprint, s, stats)."""
    requests = _build_requests(records)
    with ExecutionEngine(
        jobs=JOBS, executor_kind=executor_kind, batch_size=BATCH_SIZE
    ) as engine:
        start = time.perf_counter()
        store = engine.run(requests)
        elapsed = time.perf_counter() - start
        return _fingerprint(store), elapsed, engine.telemetry.snapshot()


def test_async_native_vs_thread_backend(benchmark, subset):
    records = subset.records[:N_RECORDS]

    thread_results, thread_s, _ = _measure(records, "thread")
    async_results, async_s, async_stats = run_once(
        benchmark, lambda: _measure(records, "async")
    )

    n_requests = len(thread_results)
    speedup = thread_s / async_s
    payload = {
        "requests": n_requests,
        "jobs": JOBS,
        "batch_size": BATCH_SIZE,
        "simulated_latency_s": MODEL_LATENCY_S,
        "simulated_latency_jitter_s": LATENCY_JITTER_S,
        "thread_backend": {
            "seconds": round(thread_s, 4),
            "requests_per_second": round(n_requests / thread_s, 2),
        },
        "async_backend": {
            "seconds": round(async_s, 4),
            "requests_per_second": round(n_requests / async_s, 2),
            "inflight_peak": async_stats["async_inflight_peak"],
            "coalesce_flushes": async_stats["coalesce_flushes"],
            "coalesce_merged": async_stats["coalesce_merged"],
        },
        "speedup_async_vs_thread": round(speedup, 2),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print()
    print(
        f"async I/O: thread backend {thread_s * 1000:.0f}ms, "
        f"async-native {async_s * 1000:.0f}ms ({speedup:.1f}x) at jobs={JOBS} "
        f"(target {TARGET_SPEEDUP}x, floor {MIN_SPEEDUP}x)"
    )

    # Pure transport refactor: identical responses either way.
    assert async_results == thread_results
    assert speedup >= MIN_SPEEDUP, (
        f"async-native backend must be >= {MIN_SPEEDUP}x the thread backend "
        f"at equal jobs, got {speedup:.2f}x"
    )
