"""Table 5 — advanced detection with variable identification (no fine-tuning).

Paper values: GPT-3.5 F1 0.145, GPT-4 0.193, StarChat 0.081, Llama 0.059 —
an order of magnitude below the plain detection F1, with the GPT models ahead
of the open-source ones.
"""

from conftest import run_once

from repro.eval.experiments import run_table5
from repro.eval.reporting import format_confusion_table


def test_table5_variable_identification(benchmark, subset, engine):
    rows = run_once(benchmark, lambda: run_table5(subset, engine=engine))
    print()
    print(format_confusion_table(rows, title="Table 5 — variable identification (pre-trained)"))

    f1 = {row.model: row.counts.f1 for row in rows}
    # Variable identification is drastically harder than detection.
    assert all(value < 0.35 for value in f1.values())
    # The GPT models lead the open-source models on this task.
    assert max(f1["gpt-4"], f1["gpt-3.5-turbo"]) > max(f1["starchat-beta"], f1["llama2-7b"])
    # Every model still finds at least one fully correct pair... except the
    # weakest ones, which the paper also shows near zero.
    assert f1["gpt-4"] > 0.0
