"""Table 4 — basic fine-tuning (detection) under stratified 5-fold CV.

Paper shape: fine-tuning improves StarChat-beta's F1 (0.546 → 0.598) and its
consistency; Llama2-7b stays roughly flat (0.584 → 0.586), with a recall dip
but a precision gain.
"""

from conftest import run_once

from repro.eval.experiments import run_table4
from repro.eval.reporting import format_crossval_table


def test_table4_basic_finetuning(benchmark, subset, engine):
    results = run_once(benchmark, lambda: run_table4(subset, engine=engine))
    print()
    for model_name, result in results.items():
        print(format_crossval_table(result.as_rows(), title=f"Table 4 — {model_name}"))

    starchat = results["starchat-beta"]
    llama = results["llama2-7b"]
    # Fine-tuning must not hurt StarChat and must stay roughly flat for Llama.
    assert starchat.tuned_stats.avg_f1 >= starchat.base_stats.avg_f1 - 0.01
    assert abs(llama.tuned_stats.avg_f1 - llama.base_stats.avg_f1) < 0.08
    # Fine-tuning improves consistency (lower F1 standard deviation) for StarChat.
    assert starchat.tuned_stats.sd_f1 <= starchat.base_stats.sd_f1 + 0.01
