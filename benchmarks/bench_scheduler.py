"""Cross-table scheduler throughput — interleaved vs. sequential table runs.

The five table drivers used to execute one after another: each table's
final chunks leave most executor workers idle (a table with 4 chunks on a
16-wide pool wastes 12 slots for its whole wave), and the pool drains
completely between tables.  The scheduler concatenates every table's
requests into **one** engine run, so chunks from all tables fill the pool
at once.

The simulated models take *heterogeneous* per-call latencies
(``MODEL_LATENCY_S`` — a slow Llama, a fast GPT-3.5, models in between)
plus deterministic per-prompt jitter (``LATENCY_JITTER_S``), standing in
for the network round-trips that dominate real API calls; a uniform
latency would hide exactly the straggler effects the scheduler exists to
absorb.  The jitter is drawn from the prompt text, so both schedules sleep
identically for identical requests — the comparison stays apples to
apples.  The tables are shrunk so that each one alone cannot saturate the
pool — exactly the regime (few in-flight requests per table, many tables,
wildly uneven per-table cost) where cross-table interleaving pays.  Plans
are built outside the timed region (fine-tuning the cross-validation folds
is CPU work both paths share), and each path gets freshly built plans so
neither benefits from the models' warm feature caches.  The Inspector
baseline is excluded: it is not model work.

Responses are unaffected by scheduling, so both paths must produce
identical table rows — and the interleaved run must be at least
``MIN_SPEEDUP`` times faster.  Writes ``BENCH_scheduler.json`` (repo root);
CI's ``check_bench_regression.py`` compares it against the committed
baseline.
"""

import json
import time
from pathlib import Path

from conftest import run_once

from repro.dataset.drbml import DRBMLDataset
from repro.engine import (
    ExecutionEngine,
    results_fingerprint,
    run_plans,
    run_plans_sequential,
)
from repro.eval.experiments import (
    plan_table2,
    plan_table3,
    plan_table4,
    plan_table5,
    plan_table6,
)
from repro.llm.zoo import create_model
from repro.prompting.strategy import PromptStrategy

#: Simulated per-call latency per model (cheap stand-ins for network time).
#: Distinct values per model: the slow Llama's chunks are the stragglers
#: the interleaved schedule has to absorb.
MODEL_LATENCY_S = {
    "gpt-3.5-turbo": 0.004,
    "gpt-4": 0.012,
    "starchat-beta": 0.008,
    "llama2-7b": 0.025,
}
#: Deterministic per-prompt jitter on top (same prompt -> same sleep).
LATENCY_JITTER_S = 0.004
N_RECORDS = 12
JOBS = 16
#: Two chunks per (model, strategy) group: no single table fills the pool.
BATCH_SIZE = 6
N_FOLDS = 2
#: The committed floor CI enforces (see benchmarks/baselines/).
MIN_SPEEDUP = 1.5

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"


def _build_plans(records):
    """All five tables, shrunk and latency-simulated."""
    dataset = DRBMLDataset(records=list(records))

    def factory(name):
        return create_model(
            name, latency_s=MODEL_LATENCY_S[name], latency_jitter_s=LATENCY_JITTER_S
        )

    return [
        plan_table2(dataset, model_factory=factory),
        plan_table3(
            dataset,
            include_inspector=False,
            models=("gpt-4", "gpt-3.5-turbo"),
            strategies=(PromptStrategy.BP1, PromptStrategy.AP1),
            model_factory=factory,
        ),
        plan_table4(dataset, models=("starchat-beta",), n_folds=N_FOLDS, model_factory=factory),
        plan_table5(dataset, models=("gpt-4", "llama2-7b"), model_factory=factory),
        plan_table6(dataset, models=("llama2-7b",), n_folds=N_FOLDS, model_factory=factory),
    ]


def _measure(runner, plans):
    """Fresh engine per measurement; returns (results, seconds, telemetry)."""
    with ExecutionEngine(jobs=JOBS, batch_size=BATCH_SIZE) as engine:
        start = time.perf_counter()
        results = runner(plans, engine=engine)
        elapsed = time.perf_counter() - start
        return results, elapsed, engine.telemetry.snapshot()


def test_scheduler_interleaved_vs_sequential_tables(benchmark, subset):
    records = subset.records[:N_RECORDS]

    sequential_results, sequential_s, sequential_stats = _measure(
        run_plans_sequential, _build_plans(records)
    )
    interleaved_results, interleaved_s, interleaved_stats = run_once(
        benchmark, lambda: _measure(run_plans, _build_plans(records))
    )

    n_requests = interleaved_stats["requests"]
    speedup = sequential_s / interleaved_s
    payload = {
        "tables": sorted(interleaved_results),
        "records_per_table": len(records),
        "requests": n_requests,
        "jobs": JOBS,
        "batch_size": BATCH_SIZE,
        "simulated_latency_s": MODEL_LATENCY_S,
        "simulated_latency_jitter_s": LATENCY_JITTER_S,
        "sequential_tables": {
            "seconds": round(sequential_s, 4),
            "requests_per_second": round(n_requests / sequential_s, 2),
            "telemetry": sequential_stats,
        },
        "interleaved_all_tables": {
            "seconds": round(interleaved_s, 4),
            "requests_per_second": round(n_requests / interleaved_s, 2),
            "telemetry": interleaved_stats,
        },
        "speedup_interleaved_vs_sequential": round(speedup, 2),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print()
    print(
        f"scheduler: sequential tables {sequential_s * 1000:.0f}ms, "
        f"interleaved all-tables {interleaved_s * 1000:.0f}ms ({speedup:.1f}x)"
    )

    # Pure scheduling refactor: identical rows either way.
    assert results_fingerprint(interleaved_results) == results_fingerprint(sequential_results)
    assert interleaved_stats["runs"] == 1, "interleaving must be a single engine run"
    assert speedup >= MIN_SPEEDUP, (
        f"interleaved all-tables must be >= {MIN_SPEEDUP}x sequential, got {speedup:.2f}x"
    )
