"""Benchmark regression gate: floors from the baseline, trends from history.

Run after ``bench_engine_throughput.py``, ``bench_scheduler.py``,
``bench_dispatch.py``, ``bench_async.py``, ``bench_speculation.py``,
``bench_cascade.py``, ``bench_cache_plane.py``, ``bench_corpus_stream.py``,
``bench_chaos.py`` and ``bench_static_tier.py`` have written
``BENCH_engine.json`` / ``BENCH_scheduler.json`` / ``BENCH_dispatch.json``
/ ``BENCH_async.json`` / ``BENCH_speculation.json`` /
``BENCH_cascade.json`` / ``BENCH_cache_plane.json`` /
``BENCH_corpus_stream.json`` / ``BENCH_chaos.json`` /
``BENCH_static_tier.json`` to the repo root::

    python benchmarks/check_bench_regression.py

Exits non-zero (failing the CI job) when any measured number falls below
its floor in ``benchmarks/baselines/BENCH_baseline.json``.  The floors are
deliberately conservative — CI machines are slower and noisier than dev
boxes — so a failure here means a real scheduling/executor regression, not
jitter.

Every invocation also appends one JSON line per run to
``benchmarks/BENCH_history.jsonl`` — the measured numbers, the floors they
were held to, and the verdict — so performance over time can be read
straight out of the repo checkout (CI uploads the file as an artifact).

On top of the static floors, the gate holds each metric to its own
**trailing trend**: a fresh measurement below ``p50_fraction`` (0.7×) of
the trailing-window median of previously *passing* runs fails the gate
even when it clears the static floor — catching slow driftic regressions
the conservative floors would let through.  The trailing p95 is printed
alongside for context.  With fewer than ``min_points`` (3) historical
points the trend check is warn-only, so fresh clones and newly added
benchmarks never fail on an empty history.
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "BENCH_baseline.json"
HISTORY_PATH = Path(__file__).resolve().parent / "BENCH_history.jsonl"

#: Trend gate tuning: how far below the trailing median a passing run may
#: fall, how many history points arm the gate, and how far back it looks.
TREND_P50_FRACTION = 0.7
TREND_MIN_POINTS = 3
TREND_WINDOW = 20


def _load(path: Path) -> dict:
    if not path.exists():
        sys.exit(f"missing {path.name}: run the benchmarks first")
    return json.loads(path.read_text(encoding="utf-8"))


def load_history(path: Path) -> List[dict]:
    """Parsed ``BENCH_history.jsonl`` records, oldest first.

    Corrupt lines (interrupted appends, merge damage) are skipped — the
    trend gate degrades to warn-only rather than crashing the CI job over
    a damaged history artifact.
    """
    if not path.exists():
        return []
    records: List[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def _quantile(ordered: List[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample."""
    position = (len(ordered) - 1) * q
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def evaluate_trends(
    measured: Dict[str, float],
    history: List[dict],
    *,
    min_points: int = TREND_MIN_POINTS,
    window: int = TREND_WINDOW,
    p50_fraction: float = TREND_P50_FRACTION,
) -> Tuple[List[str], bool]:
    """Hold each fresh measurement to its trailing-window history.

    For every metric label, collects that metric from the last ``window``
    *passing* history records (failed runs would drag the reference down
    and mask a real regression).  With at least ``min_points`` points the
    check is enforcing: a fresh value below ``p50_fraction`` × trailing
    p50 is a trend regression.  Below that many points it only reports.
    Returns the report lines and whether any metric failed.
    """
    lines: List[str] = []
    failed = False
    for label, value in measured.items():
        series: List[float] = []
        for record in history:
            if record.get("status") != "ok":
                continue
            results = record.get("results")
            if not isinstance(results, dict):
                continue
            point = results.get(label)
            if isinstance(point, (int, float)) and not isinstance(point, bool):
                series.append(float(point))
        series = series[-window:]
        if len(series) < min_points:
            lines.append(
                f"[bench-trend] {label}: {len(series)} historical point(s),"
                f" need {min_points} — warn-only"
            )
            continue
        ordered = sorted(series)
        p50 = _quantile(ordered, 0.50)
        p95 = _quantile(ordered, 0.95)
        threshold = p50 * p50_fraction
        if value < threshold:
            failed = True
            lines.append(
                f"[bench-trend] {label}: {value:g} < {p50_fraction:g}× trailing"
                f" p50 {p50:g} (n={len(series)}, p95 {p95:g}) TREND-REGRESSION"
            )
        else:
            lines.append(
                f"[bench-trend] {label}: {value:g} vs trailing p50 {p50:g}"
                f" / p95 {p95:g} (n={len(series)}) ok"
            )
    return lines, failed


def main() -> int:
    baseline = _load(BASELINE_PATH)
    engine = _load(REPO_ROOT / "BENCH_engine.json")
    scheduler = _load(REPO_ROOT / "BENCH_scheduler.json")
    dispatch = _load(REPO_ROOT / "BENCH_dispatch.json")
    async_io = _load(REPO_ROOT / "BENCH_async.json")
    speculation = _load(REPO_ROOT / "BENCH_speculation.json")
    cascade = _load(REPO_ROOT / "BENCH_cascade.json")
    cache_plane = _load(REPO_ROOT / "BENCH_cache_plane.json")
    corpus_stream = _load(REPO_ROOT / "BENCH_corpus_stream.json")
    chaos = _load(REPO_ROOT / "BENCH_chaos.json")
    static_tier = _load(REPO_ROOT / "BENCH_static_tier.json")

    checks = [
        (
            "engine thread-pool speedup vs serial",
            engine["speedup_thread_pool_vs_serial"],
            baseline["engine"]["min_speedup_thread_pool_vs_serial"],
        ),
        (
            "scheduler interleaved speedup vs sequential tables",
            scheduler["speedup_interleaved_vs_sequential"],
            baseline["scheduler"]["min_speedup_interleaved_vs_sequential"],
        ),
        (
            "scheduler interleaved throughput (req/s)",
            scheduler["interleaved_all_tables"]["requests_per_second"],
            baseline["scheduler"]["min_interleaved_requests_per_second"],
        ),
        (
            "dispatch dynamic+LPT speedup vs ordered static map",
            dispatch["speedup_dynamic_lpt_vs_ordered"],
            baseline["dispatch"]["min_speedup_dynamic_lpt_vs_ordered"],
        ),
        (
            "async-native backend speedup vs thread backend",
            async_io["speedup_async_vs_thread"],
            baseline["async"]["min_speedup_async_vs_thread"],
        ),
        (
            "speculative p95 speedup vs non-speculative (tail-heavy adapter)",
            speculation["speedup_speculative_vs_off_p95"],
            baseline["speculation"]["min_speedup_speculative_vs_off_p95"],
        ),
        (
            "cascade end-to-end speedup vs LLM-only (remote backend)",
            cascade["speedup_cascade_vs_llm_only"],
            baseline["cascade"]["min_speedup_cascade_vs_llm_only"],
        ),
        (
            "cascade accuracy margin (1pt budget + gain, in points)",
            cascade["accuracy_margin_pts"],
            baseline["cascade"]["min_accuracy_margin_pts"],
        ),
        (
            "cache-plane shm broadcast speedup vs temp-file pickle",
            cache_plane["speedup_shm_vs_file"],
            baseline["cache_plane"]["min_speedup_shm_vs_file"],
        ),
        (
            "corpus-stream throughput ratio (stream vs materialised)",
            corpus_stream["throughput_ratio_stream_vs_materialised"],
            baseline["corpus_stream"]["min_throughput_ratio_stream_vs_materialised"],
        ),
        (
            "corpus-stream peak-RSS reduction (materialised vs stream)",
            corpus_stream["rss_reduction_materialised_vs_stream"],
            baseline["corpus_stream"]["min_rss_reduction_materialised_vs_stream"],
        ),
        (
            "chaos goodput ratio under 10% injected transient faults",
            chaos["goodput_ratio_vs_fault_free"],
            baseline["chaos"]["min_goodput_ratio_vs_fault_free"],
        ),
        (
            "chaos completed-run fraction (zero aborts)",
            chaos["completed_run_fraction"],
            baseline["chaos"]["min_completed_run_fraction"],
        ),
        (
            "static-tier recall on the full corpus",
            static_tier["recall"],
            baseline["static_tier"]["min_recall"],
        ),
        (
            "static-tier precision on the full corpus",
            static_tier["precision"],
            baseline["static_tier"]["min_precision"],
        ),
        (
            "static-tier analyzer throughput (records/s)",
            static_tier["records_per_second"],
            baseline["static_tier"]["min_records_per_second"],
        ),
    ]

    failed = False
    for label, measured, floor in checks:
        status = "ok" if measured >= floor else "REGRESSION"
        print(f"[bench-gate] {label}: {measured:g} (floor {floor:g}) {status}")
        if measured < floor:
            failed = True

    # Trend gate: reference history is read before this run is appended,
    # so a run never competes against itself.
    history = load_history(HISTORY_PATH)
    measured_by_label = {label: measured for label, measured, _ in checks}
    trend_lines, trend_failed = evaluate_trends(measured_by_label, history)
    for line in trend_lines:
        print(line)
    failed = failed or trend_failed

    record = {
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "status": "regression" if failed else "ok",
        "trend_failed": trend_failed,
        "results": measured_by_label,
        "floors": {label: floor for label, _, floor in checks},
    }
    with HISTORY_PATH.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"[bench-gate] appended run to {HISTORY_PATH.relative_to(REPO_ROOT)}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
