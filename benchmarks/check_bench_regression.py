"""Benchmark regression gate: compare fresh results to the committed floors.

Run after ``bench_engine_throughput.py``, ``bench_scheduler.py``,
``bench_dispatch.py``, ``bench_async.py``, ``bench_speculation.py`` and
``bench_cache_plane.py`` have written ``BENCH_engine.json`` /
``BENCH_scheduler.json`` / ``BENCH_dispatch.json`` / ``BENCH_async.json``
/ ``BENCH_speculation.json`` / ``BENCH_cache_plane.json`` to the repo
root::

    python benchmarks/check_bench_regression.py

Exits non-zero (failing the CI job) when any measured number falls below
its floor in ``benchmarks/baselines/BENCH_baseline.json``.  The floors are
deliberately conservative — CI machines are slower and noisier than dev
boxes — so a failure here means a real scheduling/executor regression, not
jitter.

Every invocation also appends one JSON line per run to
``benchmarks/BENCH_history.jsonl`` — the measured numbers, the floors they
were held to, and the verdict — so performance over time can be read
straight out of the repo checkout (CI uploads the file as an artifact).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "BENCH_baseline.json"
HISTORY_PATH = Path(__file__).resolve().parent / "BENCH_history.jsonl"


def _load(path: Path) -> dict:
    if not path.exists():
        sys.exit(f"missing {path.name}: run the benchmarks first")
    return json.loads(path.read_text(encoding="utf-8"))


def main() -> int:
    baseline = _load(BASELINE_PATH)
    engine = _load(REPO_ROOT / "BENCH_engine.json")
    scheduler = _load(REPO_ROOT / "BENCH_scheduler.json")
    dispatch = _load(REPO_ROOT / "BENCH_dispatch.json")
    async_io = _load(REPO_ROOT / "BENCH_async.json")
    speculation = _load(REPO_ROOT / "BENCH_speculation.json")
    cache_plane = _load(REPO_ROOT / "BENCH_cache_plane.json")

    checks = [
        (
            "engine thread-pool speedup vs serial",
            engine["speedup_thread_pool_vs_serial"],
            baseline["engine"]["min_speedup_thread_pool_vs_serial"],
        ),
        (
            "scheduler interleaved speedup vs sequential tables",
            scheduler["speedup_interleaved_vs_sequential"],
            baseline["scheduler"]["min_speedup_interleaved_vs_sequential"],
        ),
        (
            "scheduler interleaved throughput (req/s)",
            scheduler["interleaved_all_tables"]["requests_per_second"],
            baseline["scheduler"]["min_interleaved_requests_per_second"],
        ),
        (
            "dispatch dynamic+LPT speedup vs ordered static map",
            dispatch["speedup_dynamic_lpt_vs_ordered"],
            baseline["dispatch"]["min_speedup_dynamic_lpt_vs_ordered"],
        ),
        (
            "async-native backend speedup vs thread backend",
            async_io["speedup_async_vs_thread"],
            baseline["async"]["min_speedup_async_vs_thread"],
        ),
        (
            "speculative p95 speedup vs non-speculative (tail-heavy adapter)",
            speculation["speedup_speculative_vs_off_p95"],
            baseline["speculation"]["min_speedup_speculative_vs_off_p95"],
        ),
        (
            "cache-plane shm broadcast speedup vs temp-file pickle",
            cache_plane["speedup_shm_vs_file"],
            baseline["cache_plane"]["min_speedup_shm_vs_file"],
        ),
    ]

    failed = False
    for label, measured, floor in checks:
        status = "ok" if measured >= floor else "REGRESSION"
        print(f"[bench-gate] {label}: {measured:g} (floor {floor:g}) {status}")
        if measured < floor:
            failed = True

    record = {
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "status": "regression" if failed else "ok",
        "results": {label: measured for label, measured, _ in checks},
        "floors": {label: floor for label, _, floor in checks},
    }
    with HISTORY_PATH.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"[bench-gate] appended run to {HISTORY_PATH.relative_to(REPO_ROOT)}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
