"""Cache-plane broadcast — shm snapshot vs per-worker temp-file pickle.

A distributed run must show every process worker the parent's warm
response cache.  The reference transport pickles the whole entry dict to
a temp file and every worker deserialises a private copy — O(entries)
CPU *per worker* plus N private dicts of fresh heap.  The shm transport
(:mod:`repro.engine.snapshot`) encodes the snapshot once into a
shared-memory block; workers attach in O(1) and binary-search the shared
buffer in place, so nothing is deserialised and no private copies exist.

Methodology: each transport is timed in a **fresh subprocess** that
performs exactly one distribution (publish -> 4 forked workers load +
probe -> retire), because that is what a real engine run does — one
broadcast per process lifetime.  Timing repeated distributions inside
one long-lived process instead lets the allocator and page cache
amortise the per-worker heap growth that real runs pay on their only
broadcast, which flatters the file transport with a steady state that
production never reaches.  A small same-transport warm-up distribution
runs first inside each subprocess to absorb CPU-governor ramp and
interpreter warmth without pre-growing the worker heaps under test.

Each worker reports what it loaded (``"shm"`` attach vs ``"file"``
deserialisation), its load time, its RSS growth, and a digest over the
probed responses.  The digests must be identical across every worker and
both transports — the broadcast is a pure transport change.  Writes
``BENCH_cache_plane.json`` (repo root); CI's ``check_bench_regression.py``
compares the speedup against the committed floor.
"""

import argparse
import hashlib
import json
import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

#: Warm-cache size each subprocess distributes (the issue floor is 50k).
N_ENTRIES = 120_000
#: Forked process workers per distribution.
N_WORKERS = 4
#: Keys each worker probes (evenly spaced over the key space).
N_PROBES = 1_000
#: Entries in the untimed warm-up distribution — large enough to take the
#: same vectorised encode path as the timed run (see ``_VECTOR_SORT_MIN``).
WARMUP_ENTRIES = 8_000
#: The committed floor CI enforces (see benchmarks/baselines/).
MIN_SPEEDUP = 2.0

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_cache_plane.json"


def _rss_kb() -> int:
    """Resident set size in kB (0 where /proc is unavailable)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def _make_records(count):
    """A deterministic warm cache: hash keys, realistic response bodies."""
    response = "race: yes\nvariables: " + "x" * 200
    return [
        (
            hashlib.sha256(b"bench-cache-plane-%d" % index).hexdigest(),
            f"{response}#{index}",
            "bench-model",
        )
        for index in range(count)
    ]


def _probe_worker(ref, probe_keys, queue):
    """One forked worker: load the snapshot, ack, then probe and digest.

    The loaded-ack and the digest travel separately so the parent can
    time *distribution* (publish until every worker holds a usable
    snapshot) without charging either transport for the probe phase,
    which is cache use, not distribution.  Probing continues after the
    parent retires the broadcast — exactly the in-flight-chunk scenario
    retirement must tolerate.
    """
    from repro.engine.snapshot import load_snapshot

    rss_before = _rss_kb()
    start = time.perf_counter()
    view, loaded_kind = load_snapshot(ref)
    load_s = time.perf_counter() - start
    queue.put(
        {
            "loaded": True,
            "loaded_kind": loaded_kind,
            "load_s": round(load_s, 4),
            "rss_delta_kb": max(0, _rss_kb() - rss_before),
        }
    )
    digest = hashlib.sha256()
    for key in probe_keys:
        digest.update(view.get(key, "").encode("utf-8"))
    queue.put({"digest": digest.hexdigest()})


def _distribute(records, probe_keys, transport):
    """One broadcast: publish -> N workers hold a view -> retire.  Timed
    up to retirement; the workers' probe/digest phase is collected after."""
    from repro.engine.snapshot import publish_snapshot, retire_snapshot

    context = multiprocessing.get_context("fork")
    start = time.perf_counter()
    published = publish_snapshot(records, transport=transport)
    publish_s = time.perf_counter() - start
    queue = context.SimpleQueue()
    workers = [
        context.Process(target=_probe_worker, args=(published.payload, probe_keys, queue))
        for _ in range(N_WORKERS)
    ]
    for worker in workers:
        worker.start()
    # One queue carries both message kinds; a fast worker's digest can
    # overtake a slow worker's ack, so sort arrivals by type and stop the
    # clock at the moment the last loaded-ack lands.
    acks, digests, digest_count = [], set(), 0
    while len(acks) < N_WORKERS:
        message = queue.get()
        if message.get("loaded"):
            acks.append(message)
        else:
            digests.add(message["digest"])
            digest_count += 1
    retire_snapshot(published)
    total_s = time.perf_counter() - start

    while digest_count < N_WORKERS:
        digests.add(queue.get()["digest"])
        digest_count += 1
    for worker in workers:
        worker.join()
    if len(digests) != 1:
        raise AssertionError(f"workers disagree on probed responses: {digests}")
    kinds = [ack["loaded_kind"] for ack in acks]
    return {
        "transport": transport,
        "entries": len(records),
        "workers": N_WORKERS,
        "probes_per_worker": len(probe_keys),
        "total_s": round(total_s, 4),
        "publish_s": round(publish_s, 4),
        "payload_bytes": published.nbytes,
        "worker_load_s": sorted(ack["load_s"] for ack in acks),
        "worker_rss_delta_kb": sorted(ack["rss_delta_kb"] for ack in acks),
        "full_deserialisations": kinds.count("file"),
        "shm_attaches": kinds.count("shm"),
        "digest": digests.pop(),
    }


def _measure_fresh(transport):
    """What the subprocess runs: warm up, then one timed distribution."""
    warmup = _make_records(WARMUP_ENTRIES)
    for _ in range(2):
        _distribute(warmup, [warmup[0][0]], transport)
    records = _make_records(N_ENTRIES)
    probe_keys = [records[i][0] for i in range(0, N_ENTRIES, N_ENTRIES // N_PROBES)]
    return _distribute(records, probe_keys, transport)


def _run_in_fresh_process(transport):
    """Time ``transport`` in its own interpreter (one broadcast per process)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")])
    )
    completed = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--transport", transport],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"{transport} measurement subprocess failed:\n{completed.stderr}"
        )
    return json.loads(completed.stdout.splitlines()[-1])


def test_shm_broadcast_vs_temp_file(benchmark):
    import pytest
    from conftest import run_once

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("cache-plane benchmark needs the fork start method")

    # shm first: any residual OS-level warmth then benefits the file run.
    shm = run_once(benchmark, lambda: _run_in_fresh_process("shm"))
    file = _run_in_fresh_process("file")

    speedup = file["total_s"] / shm["total_s"]
    payload = {
        "entries": N_ENTRIES,
        "workers": N_WORKERS,
        "probes_per_worker": file["probes_per_worker"],
        "file": {k: v for k, v in file.items() if k != "digest"},
        "shm": {k: v for k, v in shm.items() if k != "digest"},
        "speedup_shm_vs_file": round(speedup, 2),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print()
    print(
        f"cache plane: file {file['total_s']:.2f}s "
        f"({file['full_deserialisations']} full deserialisations), "
        f"shm {shm['total_s']:.2f}s ({shm['shm_attaches']} attaches, "
        f"0 deserialisations) -> {speedup:.1f}x"
    )

    # Pure transport change: every worker on both paths probed identical data.
    assert shm["digest"] == file["digest"]
    # The file path deserialises once per worker; shm never deserialises.
    assert file["full_deserialisations"] == N_WORKERS
    assert shm["full_deserialisations"] == 0
    assert shm["shm_attaches"] == N_WORKERS
    assert speedup >= MIN_SPEEDUP, (
        f"shm broadcast must be >= {MIN_SPEEDUP}x the temp-file transport, "
        f"got {speedup:.2f}x"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transport", choices=("shm", "file"), required=True)
    print(json.dumps(_measure_fresh(parser.parse_args().transport)))
