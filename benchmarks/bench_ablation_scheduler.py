"""Ablation — worksharing schedules explored by the Inspector-like detector.

A dynamic detector only sees conflicts that the executed schedule exposes.
Running both the static and round-robin schedules (the default) can only
find more races than a single schedule, at roughly twice the cost (DESIGN.md
§5.2).
"""

from conftest import run_once

from repro.dynamic import InspectorLikeDetector
from repro.eval.experiments import evaluate_inspector
from repro.eval.reporting import PromptEvaluationRow, format_confusion_table


def test_ablation_inspector_schedules(benchmark, corpus, subset):
    subset_names = {record.name for record in subset.records}
    benchmarks_ = [b for b in corpus if b.name in subset_names]

    def run():
        rows = []
        for label, schedules in (
            ("static-only", ("static",)),
            ("roundrobin", ("roundrobin",)),
            ("both", ("static", "roundrobin")),
        ):
            detector = InspectorLikeDetector(schedules=schedules)
            counts = evaluate_inspector(benchmarks_, detector=detector)
            rows.append(PromptEvaluationRow(model="Inspector", prompt=label, counts=counts))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_confusion_table(rows, title="Ablation — Inspector schedule coverage"))

    by_label = {row.prompt: row.counts for row in rows}
    assert by_label["both"].recall >= by_label["static-only"].recall
    assert by_label["both"].recall >= by_label["roundrobin"].recall
    assert by_label["both"].fp == 0, "the detector must not invent races under any schedule"
