"""Static-tier quality gate — analyzer accuracy over the full corpus.

The phase-aware static analyzer is the cascade's first tier: its verdict
quality bounds how much work can be kept away from the expensive models
without losing accuracy.  This benchmark scores the detector against the
ground truth of every corpus record and pins the confusion matrix:

* **recall** must stay at 1.0 — a missed race would silently weaken every
  configuration that trusts the cheap tier;
* **precision** must not regress below the committed floor — false
  positives inflate the racy class and erode the cascade's accuracy win;
* **throughput** is reported (records/s) so a pathological slowdown of the
  multi-pass pipeline shows up in the trend gate.

Writes ``BENCH_static_tier.json`` (repo root); CI's
``check_bench_regression.py`` compares it against the committed floors in
``benchmarks/baselines/BENCH_baseline.json`` and the trailing trend.
"""

import json
import time
from pathlib import Path

from conftest import run_once

from repro.analysis import StaticRaceDetector

#: Asserted floors — equal to the committed baseline so the regression
#: gate stays the deciding check on noisy CI runners.
MIN_RECALL = 1.0
MIN_PRECISION = 1.0
MIN_ACCURACY = 1.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_static_tier.json"


def test_static_tier_scores_the_corpus(benchmark, corpus):
    detector = StaticRaceDetector()
    tp = fp = tn = fn = crashes = 0
    suppressions = 0
    elapsed = 0.0

    def _score():
        nonlocal tp, fp, tn, fn, crashes, suppressions, elapsed
        start = time.perf_counter()
        for record in corpus:
            try:
                report = detector.analyze_source(record.code)
            except Exception:
                crashes += 1
                continue
            suppressions += sum(report.suppressions.values())
            if record.has_race:
                if report.has_race:
                    tp += 1
                else:
                    fn += 1
            elif report.has_race:
                fp += 1
            else:
                tn += 1
        elapsed = time.perf_counter() - start

    run_once(benchmark, _score)

    total = tp + fp + tn + fn
    recall = tp / (tp + fn) if tp + fn else 0.0
    precision = tp / (tp + fp) if tp + fp else 0.0
    accuracy = (tp + tn) / total if total else 0.0
    throughput = total / elapsed if elapsed > 0 else 0.0

    payload = {
        "records": total,
        "tp": tp,
        "fp": fp,
        "tn": tn,
        "fn": fn,
        "crashes": crashes,
        "suppressed_pairs": suppressions,
        "recall": round(recall, 4),
        "precision": round(precision, 4),
        "accuracy": round(accuracy, 4),
        "seconds": round(elapsed, 4),
        "records_per_second": round(throughput, 1),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print()
    print(
        f"static tier: n={total} tp={tp} fp={fp} tn={tn} fn={fn} "
        f"crashes={crashes} acc={accuracy:.3f} prec={precision:.3f} "
        f"rec={recall:.3f} ({throughput:.0f} records/s)"
    )

    assert crashes == 0, f"analyzer crashed on {crashes} corpus record(s)"
    assert recall >= MIN_RECALL, (
        f"static tier lost recall: {recall:.3f} < {MIN_RECALL} "
        f"({fn} false negative(s))"
    )
    assert precision >= MIN_PRECISION, (
        f"static tier lost precision: {precision:.3f} < {MIN_PRECISION} "
        f"({fp} false positive(s))"
    )
    assert accuracy >= MIN_ACCURACY
