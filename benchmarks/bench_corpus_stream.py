"""Corpus scale-out — streamed vs materialised end-to-end evaluation.

The paper's corpus is 201 microbenchmarks; the streaming path exists so
the same pipeline can score corpora three orders of magnitude larger
without holding them in memory.  This benchmark drives both paths over a
100k-record corpus (``CorpusConfig(repeats=498)`` — 498 shuffled blocks
of the 201 patterns, every record name unique) end to end: generate →
featurise → build requests → score through the execution engine → fold
into confusion counts.

* **materialised** — the historical shape: ``list()`` every record,
  build the full request list, ``engine.run_counts``.  Peak RSS grows
  with the corpus (records + requests + result store all resident).
* **stream** — the ``--stream`` shape: ``iter_default_records`` →
  ``iter_requests`` → ``engine.run_streaming_counts``, everything lazy,
  the engine dispatching windows of ``STREAM_WINDOW`` requests and
  folding results as they complete.  Peak RSS is O(window).

Methodology: each mode runs in a **fresh subprocess** so its peak RSS
(``VmHWM``) is its own — a shared interpreter would let the first mode's
high-water mark mask the second's.  The deterministic instant model
keeps model simulation out of the measurement (the subject is the
pipeline, and both modes use the same model), and featurisation — the
dominant per-record cost — is sharded across ``FEATURISE_JOBS`` worker
processes in *both* modes, so the comparison stays apples-to-apples.
Both modes must produce identical confusion counts: streaming is a pure
execution-shape change.

Writes ``BENCH_corpus_stream.json`` (repo root); CI's
``check_bench_regression.py`` holds the throughput ratio and the
peak-RSS reduction to the committed floors.
"""

import argparse
import json
import os
import subprocess
import sys
import time
import zlib
from pathlib import Path

#: The acceptance floor: at least this many records end to end.
N_RECORDS_MIN = 100_000
#: 498 blocks x 201 benchmarks/block = 100,098 records.
REPEATS = 498
#: Requests resident at once on the streaming path (the engine default).
STREAM_WINDOW = 2048
#: Featurisation shards in flight; capped so a laptop is not overwhelmed,
#: floored at 1 so single-CPU runners take the serial path without
#: process-pool overhead.
FEATURISE_JOBS = max(1, min(4, (os.cpu_count() or 1) - 1))
#: Committed floors (see benchmarks/baselines/BENCH_baseline.json):
#: streaming must hold >= 0.9x the materialised throughput while peaking
#: at <= 0.5x its RSS (expressed as a >= 2x reduction ratio).
MIN_THROUGHPUT_RATIO = 0.9
MIN_RSS_REDUCTION = 2.0

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_corpus_stream.json"


def _peak_rss_kb() -> int:
    """Lifetime peak resident set size in kB (0 where /proc is unavailable)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def _measure(mode):
    """One end-to-end evaluation of the 100k-record corpus in ``mode``."""
    from repro.corpus.generator import CorpusConfig, corpus_size
    from repro.dataset.drbml import iter_default_records
    from repro.engine import ExecutionEngine, build_requests, iter_requests
    from repro.llm.base import LanguageModel
    from repro.prompting.strategy import PromptStrategy

    class InstantModel(LanguageModel):
        """Deterministic, latency-free verdicts keyed on the prompt bytes."""

        name = "bench-instant"

        def generate(self, prompt: str) -> str:
            return "yes" if zlib.crc32(prompt.encode("utf-8")) & 1 else "no"

    config = CorpusConfig(repeats=REPEATS)
    expected = corpus_size(config)
    model = InstantModel()
    strategy = PromptStrategy.BP1
    engine = ExecutionEngine(cache=None, stream_window=STREAM_WINDOW)
    start = time.perf_counter()
    if mode == "materialised":
        records = list(iter_default_records(config, jobs=FEATURISE_JOBS))
        requests = build_requests(model, strategy, records)
        counts = engine.run_counts(requests)
    else:
        requests = iter_requests(
            model, strategy, iter_default_records(config, jobs=FEATURISE_JOBS)
        )
        counts = engine.run_streaming_counts(requests)
    elapsed = time.perf_counter() - start
    resident_peak = engine.telemetry.snapshot()["resident_requests_peak"]
    engine.close()
    if counts.total != expected:
        raise AssertionError(f"{mode}: scored {counts.total} of {expected} records")
    return {
        "mode": mode,
        "records": counts.total,
        "elapsed_s": round(elapsed, 2),
        "records_per_second": round(counts.total / elapsed, 1),
        "peak_rss_kb": _peak_rss_kb(),
        "resident_requests_peak": resident_peak,
        "stream_window": STREAM_WINDOW,
        "featurise_jobs": FEATURISE_JOBS,
        "counts": {"tp": counts.tp, "fp": counts.fp, "tn": counts.tn, "fn": counts.fn},
    }


def _run_in_fresh_process(mode):
    """Measure ``mode`` in its own interpreter so VmHWM is its own."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")])
    )
    completed = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--mode", mode],
        capture_output=True,
        text=True,
        env=env,
        timeout=1800,
    )
    if completed.returncode != 0:
        raise RuntimeError(f"{mode} measurement subprocess failed:\n{completed.stderr}")
    return json.loads(completed.stdout.splitlines()[-1])


def test_streamed_vs_materialised(benchmark):
    from conftest import run_once

    materialised = run_once(
        benchmark, lambda: _run_in_fresh_process("materialised")
    )
    stream = _run_in_fresh_process("stream")

    throughput_ratio = (
        stream["records_per_second"] / materialised["records_per_second"]
    )
    rss_reduction = materialised["peak_rss_kb"] / max(1, stream["peak_rss_kb"])
    payload = {
        "records": materialised["records"],
        "stream_window": STREAM_WINDOW,
        "featurise_jobs": FEATURISE_JOBS,
        "materialised": materialised,
        "stream": stream,
        "throughput_ratio_stream_vs_materialised": round(throughput_ratio, 3),
        "rss_reduction_materialised_vs_stream": round(rss_reduction, 2),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    print()
    print(
        f"corpus stream: materialised {materialised['records_per_second']:g} rec/s "
        f"@ {materialised['peak_rss_kb'] / 1024:.0f}MB peak, "
        f"stream {stream['records_per_second']:g} rec/s "
        f"@ {stream['peak_rss_kb'] / 1024:.0f}MB peak -> "
        f"{throughput_ratio:.2f}x throughput, {rss_reduction:.1f}x less RSS"
    )

    # A pure execution-shape change: both modes scored the same corpus to
    # the same verdicts.
    assert stream["counts"] == materialised["counts"]
    assert materialised["records"] >= N_RECORDS_MIN
    # The engine's own gauge agrees with the O(window) claim: the streamed
    # run never held more than one window of requests, the materialised
    # run held the whole corpus.
    assert stream["resident_requests_peak"] <= STREAM_WINDOW
    assert materialised["resident_requests_peak"] == materialised["records"]
    assert throughput_ratio >= MIN_THROUGHPUT_RATIO, (
        f"streaming must hold >= {MIN_THROUGHPUT_RATIO}x the materialised "
        f"throughput, got {throughput_ratio:.2f}x"
    )
    assert rss_reduction >= MIN_RSS_REDUCTION, (
        f"streaming must peak at <= 1/{MIN_RSS_REDUCTION}x the materialised "
        f"RSS, got 1/{rss_reduction:.2f}x"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("materialised", "stream"), required=True)
    print(json.dumps(_measure(parser.parse_args().mode)))
