"""Table 6 — advanced fine-tuning (variable identification) under 5-fold CV.

Paper shape: StarChat-beta improves slightly after fine-tuning (F1 0.081 →
0.083) at the cost of more variance; Llama2-7b shows no significant change
(0.063 → 0.064).  Both stay an order of magnitude below detection F1.
"""

from conftest import run_once

from repro.eval.experiments import run_table6
from repro.eval.reporting import format_crossval_table


def test_table6_advanced_finetuning(benchmark, subset, engine):
    results = run_once(benchmark, lambda: run_table6(subset, engine=engine))
    print()
    for model_name, result in results.items():
        print(format_crossval_table(result.as_rows(), title=f"Table 6 — {model_name}"))

    for result in results.values():
        # Variable identification stays far below detection quality.
        assert result.base_stats.avg_f1 < 0.3
        assert result.tuned_stats.avg_f1 < 0.35
        # Fine-tuning never hurts by more than noise on this task.
        assert result.tuned_stats.avg_f1 >= result.base_stats.avg_f1 - 0.02
