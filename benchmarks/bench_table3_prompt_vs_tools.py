"""Table 3 — traditional tool (Inspector-like) vs four LLMs × {BP1, AP1, AP2}.

Paper shape: the traditional dynamic tool has the best F1 overall (0.762);
GPT-4 is the best LLM (F1 ≈ 0.75) and comes close to the tool; GPT-3.5,
StarChat-beta and Llama2-7b sit in the 0.54–0.63 F1 band.
"""

from collections import defaultdict

from conftest import run_once

from repro.eval.experiments import run_table3
from repro.eval.reporting import format_confusion_table


def test_table3_tools_vs_llms(benchmark, subset, corpus_config, engine):
    rows = run_once(
        benchmark, lambda: run_table3(subset, corpus_config=corpus_config, engine=engine)
    )
    print()
    print(format_confusion_table(rows, title="Table 3 — Inspector vs LLM prompt strategies"))

    best_f1 = defaultdict(float)
    for row in rows:
        best_f1[row.model] = max(best_f1[row.model], row.counts.f1)

    inspector_f1 = best_f1.pop("Inspector")
    best_llm = max(best_f1, key=best_f1.get)
    # Shape assertions from the paper's Table 3.
    assert inspector_f1 == max([inspector_f1, *best_f1.values()]), (
        "the traditional tool must have the best overall F1"
    )
    assert best_llm == "gpt-4", "GPT-4 must be the best-performing LLM"
    for weaker in ("gpt-3.5-turbo", "starchat-beta", "llama2-7b"):
        assert best_f1["gpt-4"] > best_f1[weaker]
