"""Ablation — calibrated behavioral profiles vs. the raw internal heuristic.

The simulated models blend their internal static-analysis heuristic with a
calibrated response profile (DESIGN.md §5.1).  This ablation measures what
the models would score if they followed the heuristic directly
(``calibrated=False``): the raw heuristic is *stronger* than the published
LLM results, which is exactly why the calibration layer is needed to
reproduce the paper's numbers rather than flatter ones.
"""

from conftest import run_once

from repro.eval.experiments import evaluate_model_prompt
from repro.eval.metrics import ConfusionCounts
from repro.eval.reporting import PromptEvaluationRow, format_confusion_table
from repro.llm import create_model
from repro.prompting import PromptStrategy


def test_ablation_calibration(benchmark, subset):
    def run():
        rows = []
        for calibrated in (True, False):
            model = create_model("gpt-4", calibrated=calibrated)
            counts = evaluate_model_prompt(model, PromptStrategy.BP1, subset.records)
            label = "gpt-4" if calibrated else "gpt-4-raw"
            rows.append(PromptEvaluationRow(model=label, prompt="BP1", counts=counts))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_confusion_table(rows, title="Ablation — calibration on/off (GPT-4, BP1)"))

    calibrated = next(r for r in rows if r.model == "gpt-4").counts
    raw = next(r for r in rows if r.model == "gpt-4-raw").counts
    assert raw.f1 > calibrated.f1, "the uncalibrated heuristic outperforms the calibrated model"
