"""Fine-tuning study: basic-FT cross-validation for the open-source models.

Reproduces the Table 4 workflow (and optionally Table 6 with ``--advanced``)
on the full DRB-ML subset: stratified 5-fold cross-validation, fine-tuning a
low-rank adapter per fold, and reporting AVG/SD of recall, precision and F1
for the base and fine-tuned variants.

Run with::

    python examples/finetune_study.py [--advanced]
"""

import sys

from repro.core import DataRacePipeline
from repro.eval.crossval import run_finetune_crossval
from repro.eval.reporting import format_crossval_table


def main(kind: str = "basic") -> None:
    pipeline = DataRacePipeline()
    subset = pipeline.evaluation_subset()
    print(f"{kind}-FT cross-validation on {len(subset)} records, 5 folds\n")

    for model_name in ("starchat-beta", "llama2-7b"):
        result = run_finetune_crossval(subset, model_name, kind=kind)
        title = f"{'Table 6' if kind == 'advanced' else 'Table 4'} workflow — {model_name}"
        print(format_crossval_table(result.as_rows(), title=title))
        print()


if __name__ == "__main__":
    main("advanced" if "--advanced" in sys.argv else "basic")
