"""Prompt-engineering study on a slice of the DRB-ML evaluation subset.

Reproduces the Table 2 / Table 3 workflow at reduced scale so it finishes in
a few seconds: every model is evaluated under BP1, AP1 and AP2 on a stratified
sample of the subset, next to the Inspector-like baseline.

Run with::

    python examples/prompt_engineering_study.py [sample_size]
"""

import sys

from repro.core import DataRacePipeline
from repro.dataset import DRBMLDataset
from repro.eval.experiments import (
    PromptEvaluationRow,
    evaluate_inspector,
    evaluate_model_prompt,
)
from repro.eval.reporting import format_confusion_table
from repro.llm import create_model
from repro.prompting import PromptStrategy


def main(sample_size: int = 40) -> None:
    pipeline = DataRacePipeline()
    subset = pipeline.evaluation_subset()

    positives = [r for r in subset.records if r.has_race][: sample_size // 2]
    negatives = [r for r in subset.records if not r.has_race][: sample_size // 2]
    sample = DRBMLDataset(records=positives + negatives)
    print(f"evaluating on {len(sample)} records "
          f"({len(positives)} race-yes / {len(negatives)} race-free)\n")

    rows = []
    subset_names = {r.name for r in sample.records}
    benchmarks = [b for b in pipeline.registry if b.name in subset_names]
    rows.append(
        PromptEvaluationRow(
            model="Inspector", prompt="N/A", counts=evaluate_inspector(benchmarks)
        )
    )
    for model_name in pipeline.models():
        model = create_model(model_name)
        for strategy in (PromptStrategy.BP1, PromptStrategy.AP1, PromptStrategy.AP2):
            counts = evaluate_model_prompt(model, strategy, sample.records)
            rows.append(PromptEvaluationRow(model=model_name, prompt=strategy.value, counts=counts))

    print(format_confusion_table(rows, title="Prompt-engineering study (Table 3 workflow)"))


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    main(size)
