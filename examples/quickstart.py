"""Quickstart: ask a (simulated) LLM whether an OpenMP kernel has a data race.

Run with::

    python examples/quickstart.py

The example mirrors the paper's Listing 1 / Listing 4 workflow: take an
OpenMP C kernel, render the BP1 prompt, query a model, parse the yes/no
verdict, and compare against the traditional dynamic detector.
"""

from repro.core import DataRacePipeline
from repro.prompting import PromptStrategy

#: The classic DataRaceBench anti-dependence kernel (paper Listing 1).
ANTIDEP_KERNEL = """\
#include <stdio.h>
int main(int argc, char *argv[])
{
  int i;
  int len = 1000;
  int a[1000];
  for (i = 0; i < len; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < len - 1; i++)
    a[i] = a[i+1] + 1;
  printf("a[500]=%d\\n", a[500]);
  return 0;
}
"""


def main() -> None:
    pipeline = DataRacePipeline()

    print("=== prompt-engineering route (BP1) ===")
    for model_name in pipeline.models():
        outcome = pipeline.detect(ANTIDEP_KERNEL, model=model_name, strategy=PromptStrategy.BP1)
        verdict = "race" if outcome.says_race else "no race"
        print(f"{model_name:<16s} -> {verdict:8s} | {outcome.response.splitlines()[0]}")

    print()
    print("=== variable identification (advanced prompt) ===")
    outcome = pipeline.identify_variables(ANTIDEP_KERNEL, model="gpt-4")
    print(outcome.response)

    print()
    print("=== traditional dynamic detector (Inspector-like) ===")
    result = pipeline.inspector().analyze_source(ANTIDEP_KERNEL, num_threads=4)
    print(f"race detected: {result.has_race}")
    for pair in result.pairs[:3]:
        print("  conflicting accesses:", pair.describe())


if __name__ == "__main__":
    main()
