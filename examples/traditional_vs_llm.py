"""Traditional detectors vs LLMs, per pattern family.

The paper's headline observation is that traditional tools still beat LLMs
when detailed information is needed.  This example breaks the comparison down
by DataRaceBench pattern family: for each family it reports the detection
accuracy of the static detector, the Inspector-like dynamic detector, and the
strongest simulated LLM (GPT-4 with BP1).

Run with::

    python examples/traditional_vs_llm.py
"""

from collections import defaultdict

from repro.core import DataRacePipeline
from repro.prompting import PromptStrategy


def main() -> None:
    pipeline = DataRacePipeline()
    subset = pipeline.evaluation_subset()
    records_by_name = {r.name: r for r in subset.records}
    benchmarks = [b for b in pipeline.registry if b.name in records_by_name]

    static = pipeline.static_detector()
    inspector = pipeline.inspector()

    correct = defaultdict(lambda: defaultdict(int))
    totals = defaultdict(int)

    for bench in benchmarks:
        record = records_by_name[bench.name]
        family = bench.label.value[1]
        totals[family] += 1
        truth = bench.has_race

        if static.analyze_source(record.trimmed_code).has_race == truth:
            correct[family]["static"] += 1
        if inspector.predict(bench) == truth:
            correct[family]["inspector"] += 1
        outcome = pipeline.detect(record.trimmed_code, model="gpt-4", strategy=PromptStrategy.BP1)
        if outcome.says_race == truth:
            correct[family]["gpt-4 (BP1)"] += 1

    print(f"{'family':<8s} {'n':>4s} {'static':>8s} {'inspector':>10s} {'gpt-4 (BP1)':>12s}")
    print("-" * 48)
    for family in sorted(totals):
        n = totals[family]
        row = [
            f"{correct[family][tool] / n:>{width}.2f}"
            for tool, width in (("static", 8), ("inspector", 10), ("gpt-4 (BP1)", 12))
        ]
        print(f"{family:<8s} {n:>4d} " + " ".join(row))

    print()
    print("Families: 1 loop-carried dependences, 2 missing synchronization, 3 reductions,")
    print("4 privatization, 5 SIMD, 6 tasking/sections, 7 indirect/control-dependent accesses.")


if __name__ == "__main__":
    main()
