"""Behavioral profiles of the simulated models.

A simulated model's verdict is a stochastic function of the *evidence its own
analysis produced* (the internal heuristic's race/no-race finding), never of
the ground-truth label.  The per-(model, prompt-strategy) profile fixes

* ``p_yes_given_evidence`` — probability of answering "yes" when the internal
  heuristic found conflicting accesses;
* ``p_yes_given_no_evidence`` — probability of answering "yes" when it did
  not (hallucinated races / over-caution);
* ``format_fidelity`` — probability of keeping the requested structured
  output format (failures force the regex fallback parser, §4.5);
* ``pair_fidelity`` — probability that a reported variable pair is taken from
  the analysis rather than made up (variable identification, Table 5).

Calibration
-----------
The two response rates are derived from the recall/false-positive rates the
paper reports (Tables 2, 3 and 5) given the measured quality of the internal
heuristic on the corpus (``HEURISTIC_TPR``/``HEURISTIC_FPR``):

    TPR_target = P(yes | race)    = TPR_h * p1 + (1 - TPR_h) * p0
    FPR_target = P(yes | no race) = FPR_h * p1 + (1 - FPR_h) * p0

solving for ``p1`` (= ``p_yes_given_evidence``) and ``p0``.  This keeps the
published *shape* of the comparison (which model wins, by roughly how much,
how each prompt strategy shifts the balance) while every individual decision
still flows through the real prompt → analysis → response → parsing pipeline.
Disable calibration (``calibrated=False`` on the zoo models) to see the raw
heuristic behaviour — that ablation is exercised by
``benchmarks/bench_ablation_calibration.py``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.prompting.strategy import PromptStrategy

__all__ = [
    "HEURISTIC_TPR",
    "HEURISTIC_FPR",
    "BehaviorProfile",
    "profile_for",
    "deterministic_uniform",
    "simulated_latency",
]

#: Measured quality of the internal heuristic (the static detector) on the
#: DRB-ML ≤4k-token subset.  The phase-aware MHP/value-range analysis proves
#: every race-free corpus kernel safe, so the false-positive rate is zero.
#: Re-measure with ``python -m examples.traditional_vs_llm`` if the corpus
#: generator or the analysis rules change.
HEURISTIC_TPR = 1.00
HEURISTIC_FPR = 0.00


def _solve_response_rates(tpr_target: float, fpr_target: float) -> Tuple[float, float]:
    """Solve the two response rates from target TPR/FPR (see module docstring)."""
    denom = HEURISTIC_TPR - HEURISTIC_FPR
    if denom <= 0:
        raise ValueError("heuristic must be better than chance to calibrate against")
    p1 = (tpr_target * (1 - HEURISTIC_FPR) - fpr_target * (1 - HEURISTIC_TPR)) / denom
    p0 = (fpr_target * HEURISTIC_TPR - tpr_target * HEURISTIC_FPR) / denom
    return (min(max(p1, 0.0), 1.0), min(max(p0, 0.0), 1.0))


@dataclass(frozen=True)
class BehaviorProfile:
    """Stochastic response profile of one model under one prompt strategy."""

    model: str
    strategy: PromptStrategy
    p_yes_given_evidence: float
    p_yes_given_no_evidence: float
    format_fidelity: float = 0.9
    pair_fidelity: float = 0.2

    @classmethod
    def from_targets(
        cls,
        model: str,
        strategy: PromptStrategy,
        *,
        tpr: float,
        fpr: float,
        format_fidelity: float = 0.9,
        pair_fidelity: float = 0.2,
    ) -> "BehaviorProfile":
        p1, p0 = _solve_response_rates(tpr, fpr)
        return cls(
            model=model,
            strategy=strategy,
            p_yes_given_evidence=p1,
            p_yes_given_no_evidence=p0,
            format_fidelity=format_fidelity,
            pair_fidelity=pair_fidelity,
        )


#: Target rates taken from the paper:
#: Table 2 (GPT-3.5 BP1/BP2), Table 3 (all models × BP1/AP1/AP2) and
#: Table 5 (advanced variable identification, column "ADVANCED").
#: Each entry is (TPR, FPR, format_fidelity, pair_fidelity).
_TARGETS: Dict[Tuple[str, PromptStrategy], Tuple[float, float, float, float]] = {
    # GPT-3.5-turbo
    ("gpt-3.5-turbo", PromptStrategy.BP1): (0.660, 0.561, 0.95, 0.25),
    ("gpt-3.5-turbo", PromptStrategy.BP2): (0.350, 0.265, 0.80, 0.25),
    ("gpt-3.5-turbo", PromptStrategy.AP1): (0.630, 0.571, 0.95, 0.25),
    ("gpt-3.5-turbo", PromptStrategy.AP2): (0.690, 0.551, 0.95, 0.25),
    ("gpt-3.5-turbo", PromptStrategy.ADVANCED): (0.500, 0.551, 0.80, 0.25),
    # GPT-4
    ("gpt-4", PromptStrategy.BP1): (0.770, 0.286, 0.98, 0.24),
    ("gpt-4", PromptStrategy.BP2): (0.600, 0.250, 0.90, 0.24),
    ("gpt-4", PromptStrategy.AP1): (0.780, 0.306, 0.98, 0.24),
    ("gpt-4", PromptStrategy.AP2): (0.780, 0.286, 0.98, 0.24),
    ("gpt-4", PromptStrategy.ADVANCED): (0.600, 0.316, 0.90, 0.24),
    # StarChat-beta
    ("starchat-beta", PromptStrategy.BP1): (0.630, 0.694, 0.75, 0.13),
    ("starchat-beta", PromptStrategy.BP2): (0.500, 0.600, 0.60, 0.13),
    ("starchat-beta", PromptStrategy.AP1): (0.620, 0.684, 0.75, 0.13),
    ("starchat-beta", PromptStrategy.AP2): (0.630, 0.622, 0.75, 0.13),
    ("starchat-beta", PromptStrategy.ADVANCED): (0.550, 0.673, 0.60, 0.13),
    # Llama2-7b
    ("llama2-7b", PromptStrategy.BP1): (0.650, 0.582, 0.75, 0.10),
    ("llama2-7b", PromptStrategy.BP2): (0.520, 0.500, 0.60, 0.10),
    ("llama2-7b", PromptStrategy.AP1): (0.650, 0.582, 0.75, 0.10),
    ("llama2-7b", PromptStrategy.AP2): (0.660, 0.561, 0.75, 0.10),
    ("llama2-7b", PromptStrategy.ADVANCED): (0.500, 0.663, 0.60, 0.10),
}


def profile_for(model: str, strategy: PromptStrategy) -> BehaviorProfile:
    """Look up (or derive) the behavioral profile of a model under a strategy."""
    key = (model, strategy)
    if key not in _TARGETS:
        # Unknown combinations fall back to the model's BP1 behaviour.
        key = (model, PromptStrategy.BP1)
    if key not in _TARGETS:
        raise KeyError(f"no behavioral profile for model {model!r}")
    tpr, fpr, fmt, pair = _TARGETS[key]
    return BehaviorProfile.from_targets(
        model, strategy, tpr=tpr, fpr=fpr, format_fidelity=fmt, pair_fidelity=pair
    )


def deterministic_uniform(*parts: str) -> float:
    """A reproducible pseudo-uniform in [0, 1) derived from the given strings.

    The simulated models use this instead of a global random number generator
    so that every (model, strategy, benchmark) decision is stable across
    processes and runs — the tables regenerate bit-identically.
    """
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


def simulated_latency(base_s: float, jitter_s: float, *salt_parts: str) -> float:
    """Base latency plus deterministic jitter in ``[0, jitter_s)``.

    The one latency model every simulated transport uses (the zoo models
    and :class:`~repro.llm.adapters.AsyncRemoteAdapter`): the jitter is
    drawn via :func:`deterministic_uniform` from ``salt_parts`` — salt it
    with the model name and the prompt so each call gets its own stable
    delay, and benchmarks comparing two schedules over the same requests
    stay apples-to-apples.
    """
    delay = base_s
    if jitter_s > 0:
        delay += jitter_s * deterministic_uniform(*salt_parts)
    return delay
