"""Response text rendering for the simulated models.

The simulated models answer in natural language (optionally with an embedded
JSON block), exactly like the real chat models: the evaluation harness never
receives a boolean, it receives text that must go through the response
parsers in :mod:`repro.prompting.parsing` — including malformed output that
forces the regex fallback (paper §4.5).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.llm.features import CodeFeatures

__all__ = [
    "render_detection_response",
    "render_analysis_response",
    "render_pairs_response",
]

#: (expr, line, col, op) — the pair element tuples produced by extract_features.
PairElement = Tuple[str, int, int, str]


def render_detection_response(verdict: bool, features: CodeFeatures) -> str:
    """Plain yes/no answer with a short natural-language justification."""
    if verdict:
        subject = features.predicted_pairs[0][0] if features.predicted_pairs else "a shared variable"
        return (
            "yes. The provided code exhibits a potential data race: concurrent "
            f"threads may update {subject} without sufficient synchronization."
        )
    if features.synchronization_score > 0:
        return (
            "no. The shared updates are protected by the synchronization "
            "constructs present in the code, so no data race is expected."
        )
    return "no. Each iteration works on independent data, so no data race is expected."


def render_analysis_response(features: CodeFeatures) -> str:
    """Dependence-analysis answer used as chain 1 of the AP2 strategy."""
    lines: List[str] = []
    if not features.parses:
        lines.append("The code could not be fully analyzed; treating accesses conservatively.")
    if features.predicted_pairs:
        lines.append("The following conflicting accesses were found by data dependence analysis:")
        for expr, line, _col, op in features.predicted_pairs[:6]:
            kind = "write" if op == "W" else "read"
            lines.append(f"- {kind} of {expr} at line {line}")
    else:
        lines.append(
            "No loop-carried data dependences between concurrent iterations were identified."
        )
    if features.has_reduction_clause:
        lines.append("A reduction clause covers the accumulation variables.")
    if features.has_critical or features.has_atomic or features.has_lock_calls:
        lines.append("Mutual exclusion constructs guard some of the shared updates.")
    return "\n".join(lines)


def _format_pair_json(
    names: Tuple[str, str], lines: Tuple[int, int], ops: Tuple[str, str], *, word_ops: bool
) -> str:
    def op_text(op: str) -> str:
        if word_ops:
            return "write" if op == "W" else "read"
        return op

    return (
        "{\n"
        '"data_race": 1,\n'
        f'"variable_names": ["{names[0]}", "{names[1]}"],\n'
        f'"variable_locations": [{lines[0]}, {lines[1]}],\n'
        f'"operation_types": ["{op_text(ops[0])}", "{op_text(ops[1])}"]\n'
        "}"
    )


def render_pairs_response(
    verdict: bool,
    pair: Optional[Sequence[PairElement]],
    *,
    well_formed: bool,
    word_ops: bool = True,
) -> str:
    """Answer for a prompt that requested variable pairs.

    Parameters
    ----------
    verdict:
        The yes/no detection verdict.
    pair:
        Two pair elements (expr, line, col, op) to report, or ``None`` when the
        model has nothing concrete to point at.
    well_formed:
        When ``False`` the answer is prose instead of the requested JSON,
        exercising the regex fallback of the parser.
    """
    if not verdict:
        return 'no.\n{\n"data_race": 0\n}' if well_formed else "no, this code looks race free."
    if pair is None or len(pair) < 2:
        if well_formed:
            return (
                'yes.\n{\n"data_race": 1,\n"variable_names": ["unknown", "unknown"],\n'
                '"variable_locations": [0, 0],\n"operation_types": ["write", "write"]\n}'
            )
        return "yes, there appears to be a data race, but the exact variables are unclear."
    (expr_a, line_a, _col_a, op_a), (expr_b, line_b, _col_b, op_b) = pair[0], pair[1]
    if well_formed:
        return "yes.\n" + _format_pair_json(
            (expr_a, expr_b), (line_a, line_b), (op_a, op_b), word_ops=word_ops
        )
    op_word_a = "write" if op_a == "W" else "read"
    op_word_b = "write" if op_b == "W" else "read"
    return (
        "Yes, the provided code exhibits data race issues. The data race is caused by "
        f"the variable '{expr_a}' at line {line_a} and the variable '{expr_b}' at line "
        f"{line_b}. The first access is a {op_word_a} and the second is a {op_word_b}."
    )
