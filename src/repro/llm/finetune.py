"""Fine-tuning of the open-source simulated models (paper §3.4).

The paper fine-tunes Llama2-7b (lr 2e-4) and StarChat-beta (lr 9.65e-6) with
QLoRA (rank 64, dropout 0.1, batch size 4 per GPU, cross-entropy loss) on the
DRB-ML prompt–response pairs, under stratified 5-fold cross validation.

:class:`FineTuner` mirrors that setup at simulation scale: it consumes the
same :class:`~repro.dataset.pairs.PromptResponsePair` sets, trains a
:class:`~repro.llm.adapters.LowRankAdapter` on hashed n-gram features of the
code inside each prompt, and produces a :class:`FineTunedModel` that blends
the adapter's score with the frozen base model's score.  The blend weight
plays the role of the adapter scaling: with a 198-example dataset the
adapter can only nudge, not replace, the base behaviour — which is exactly
the regime the paper reports (small recall/precision movements, Tables 4
and 6).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.dataset.pairs import PromptResponsePair
from repro.llm.adapters import LowRankAdapter
from repro.llm.base import LanguageModel
from repro.llm.behavior import deterministic_uniform
from repro.llm.features import extract_code_from_prompt, hashed_ngram_vector
from repro.llm.responses import render_detection_response, render_pairs_response
from repro.llm.zoo import SimulatedChatModel
from repro.prompting.strategy import PromptStrategy

__all__ = ["FineTuneConfig", "FineTuner", "FineTunedModel"]


@dataclass(frozen=True)
class FineTuneConfig:
    """Hyper-parameters of a fine-tuning run.

    Defaults follow the paper where a direct analogue exists: LoRA rank 64,
    dropout 0.1, batch size 4; the learning rate is per-model (2e-4 for
    Llama2-7b, 9.65e-6 for StarChat-beta in the paper — here both map onto
    stable values for the logistic adapter, preserving the "StarChat uses a
    much smaller step" relationship).
    """

    lora_rank: int = 64
    dropout: float = 0.1
    batch_size: int = 4
    epochs: int = 40
    learning_rate: float = 0.2
    feature_dim: int = 512
    adapter_weight: float = 0.45
    seed: int = 0

    @classmethod
    def for_model(cls, model_name: str, **overrides) -> "FineTuneConfig":
        """Per-model defaults mirroring the paper's two learning rates."""
        if model_name == "starchat-beta":
            base = cls(learning_rate=0.1, seed=1)
        elif model_name == "llama2-7b":
            base = cls(learning_rate=0.2, seed=2)
        else:
            base = cls()
        if overrides:
            return FineTuneConfig(**{**base.__dict__, **overrides})
        return base


class FineTunedModel(LanguageModel):
    """A frozen base model plus a trained low-rank adapter."""

    def __init__(
        self,
        base: SimulatedChatModel,
        adapter: LowRankAdapter,
        config: FineTuneConfig,
        *,
        kind: str = "basic",
    ) -> None:
        self.base = base
        self.adapter = adapter
        self.config = config
        self.kind = kind
        self.name = f"{base.name}-ft"
        self.table_label = f"{base.table_label}-FT"
        self.context_window = base.context_window

    @property
    def cache_identity(self) -> str:
        """Name plus a content fingerprint of everything that shapes output.

        Cross-validation trains one adapter per fold; all of them share the
        ``"<base>-ft"`` name, so the name alone would let the response cache
        hand fold 1's answers to fold 2's model.  The fingerprint covers the
        trained adapter state, the fine-tune config (``adapter_weight`` and
        ``feature_dim`` change the blended score even for equal weights),
        the task kind and the base model's own identity (which encodes its
        calibration mode).
        """
        digest = hashlib.sha256()
        digest.update(self.adapter.weights.tobytes())
        digest.update(repr(self.adapter.bias).encode("utf-8"))
        digest.update(str(self.adapter.seed).encode("utf-8"))
        digest.update(repr(self.config).encode("utf-8"))
        digest.update(self.kind.encode("utf-8"))
        digest.update(self.base.cache_identity.encode("utf-8"))
        return f"{self.name}#{digest.hexdigest()[:16]}"

    # -- scoring ------------------------------------------------------------------

    def score(self, code: str) -> float:
        """Blended race probability of the fine-tuned model."""
        base_score = self.base.score(code)
        adapter_score = self.adapter.predict_proba(
            hashed_ngram_vector(code, dim=self.config.feature_dim)
        )
        w = self.config.adapter_weight
        return (1.0 - w) * base_score + w * float(adapter_score)

    def _verdict(self, code: str) -> bool:
        probability = self.score(code)
        draw = deterministic_uniform(self.name, self.kind, "verdict", code)
        return draw < probability

    # -- generation ---------------------------------------------------------------

    def generate(self, prompt: str) -> str:
        code = extract_code_from_prompt(prompt)
        verdict = self._verdict(code)
        features = self.base._features(code)
        if self.kind == "advanced":
            profile = self.base._profile(PromptStrategy.ADVANCED)
            # Fine-tuning on structured responses improves format adherence
            # noticeably and pair fidelity slightly (paper §4.3).
            format_fidelity = min(1.0, profile.format_fidelity + 0.15)
            pair_fidelity = min(1.0, profile.pair_fidelity + 0.03)
            well_formed = (
                deterministic_uniform(self.name, "format", code) < format_fidelity
            )
            pair = None
            if verdict:
                faithful = (
                    deterministic_uniform(self.name, "pair", code) < pair_fidelity
                    and len(features.predicted_pairs) >= 2
                )
                if faithful:
                    pair = (features.predicted_pairs[0], features.predicted_pairs[1])
                else:
                    guess_line = 1 + int(deterministic_uniform(self.name, "guessline", code) * 20)
                    pair = (("i", guess_line, 1, "W"), ("i", guess_line, 1, "R"))
            return render_pairs_response(verdict, pair, well_formed=well_formed)
        return render_detection_response(verdict, features)


@dataclass
class FineTuner:
    """Trains a :class:`FineTunedModel` from prompt–response pairs."""

    base: SimulatedChatModel
    config: Optional[FineTuneConfig] = None
    history: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = FineTuneConfig.for_model(self.base.name)

    def _dataset(self, pairs: Sequence[PromptResponsePair]):
        features = np.stack(
            [
                hashed_ngram_vector(
                    extract_code_from_prompt(pair.prompt), dim=self.config.feature_dim
                )
                for pair in pairs
            ]
        )
        labels = np.array([pair.label for pair in pairs], dtype=np.float64)
        return features, labels

    def fit(self, pairs: Sequence[PromptResponsePair]) -> FineTunedModel:
        """Fine-tune on the given pair set and return the tuned model."""
        if not pairs:
            raise ValueError("cannot fine-tune on an empty pair set")
        kind = pairs[0].kind
        features, labels = self._dataset(pairs)
        adapter = LowRankAdapter(
            input_dim=self.config.feature_dim,
            rank=self.config.lora_rank,
            dropout=self.config.dropout,
            seed=self.config.seed,
        )
        loss = adapter.fit(
            features,
            labels,
            learning_rate=self.config.learning_rate,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
        )
        self.history.append(loss)
        return FineTunedModel(self.base, adapter, self.config, kind=kind)
