"""Low-rank adapters for fine-tuning (the QLoRA analogue).

The paper fine-tunes Llama2-7b and StarChat-beta with QLoRA (LoRA attention
dimension 64, dropout 0.1).  At simulation scale the trainable component is a
logistic head over hashed n-gram code features, factored through a fixed
random projection of rank ``rank`` — i.e. only ``rank + 1`` parameters are
trained on top of a frozen featurisation, which is the structural point of a
LoRA adapter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["LowRankAdapter"]


def _sigmoid(z: np.ndarray | float) -> np.ndarray | float:
    return 1.0 / (1.0 + np.exp(-z))


@dataclass
class LowRankAdapter:
    """A trainable low-rank logistic head.

    Parameters
    ----------
    input_dim:
        Dimensionality of the (frozen) feature vectors.
    rank:
        LoRA rank: the trained weight vector lives in a ``rank``-dimensional
        subspace spanned by a fixed random projection.
    dropout:
        Feature dropout applied during training only.
    seed:
        Seed for the projection matrix and dropout masks.
    """

    input_dim: int = 512
    rank: int = 64
    dropout: float = 0.1
    seed: int = 0
    projection: np.ndarray = field(init=False, repr=False)
    weights: np.ndarray = field(init=False, repr=False)
    bias: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        # Scale so that projected coordinates of an L2-normalised feature
        # vector have roughly unit variance — keeps the logistic head's
        # gradients (and therefore the learning-rate scale) well conditioned.
        self.projection = rng.standard_normal((self.input_dim, self.rank))
        self.weights = np.zeros(self.rank, dtype=np.float64)
        self.bias = 0.0

    # -- inference ----------------------------------------------------------------

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class for one vector or a batch."""
        single = features.ndim == 1
        batch = features.reshape(1, -1) if single else features
        logits = batch @ self.projection @ self.weights + self.bias
        probs = _sigmoid(logits)
        return float(probs[0]) if single else probs

    # -- training -----------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        *,
        learning_rate: float = 0.2,
        epochs: int = 40,
        batch_size: int = 4,
        l2: float = 1e-3,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Mini-batch gradient descent on the cross-entropy loss.

        Returns the final average training loss (useful for tests asserting
        that training actually reduces the loss).
        """
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same length")
        rng = rng or np.random.default_rng(self.seed + 1)
        projected = features @ self.projection  # (n, rank), frozen
        n = projected.shape[0]
        last_loss = float("inf")
        for _epoch in range(epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                batch = projected[idx]
                if self.dropout > 0:
                    mask = rng.random(batch.shape) >= self.dropout
                    batch = batch * mask / (1.0 - self.dropout)
                target = labels[idx]
                logits = batch @ self.weights + self.bias
                probs = _sigmoid(logits)
                error = probs - target
                grad_w = batch.T @ error / len(idx) + l2 * self.weights
                grad_b = float(np.mean(error))
                self.weights -= learning_rate * grad_w
                self.bias -= learning_rate * grad_b
                eps = 1e-9
                losses.append(
                    float(
                        -np.mean(
                            target * np.log(probs + eps)
                            + (1 - target) * np.log(1 - probs + eps)
                        )
                    )
                )
            last_loss = float(np.mean(losses)) if losses else last_loss
        return last_loss
