"""Model adapters: fine-tuning heads and transport wrappers.

Two kinds of adapter live here:

* :class:`LowRankAdapter` — the QLoRA analogue.  The paper fine-tunes
  Llama2-7b and StarChat-beta with QLoRA (LoRA attention dimension 64,
  dropout 0.1).  At simulation scale the trainable component is a logistic
  head over hashed n-gram code features, factored through a fixed random
  projection of rank ``rank`` — i.e. only ``rank + 1`` parameters are
  trained on top of a frozen featurisation, which is the structural point
  of a LoRA adapter.
* :class:`AsyncRemoteAdapter` — a *transport* adapter: it wraps any
  :class:`~repro.llm.base.LanguageModel` in a simulated remote API client
  with configurable per-call network latency and jitter, implemented
  natively on asyncio.  The sync path blocks for the latency like a
  requests-style client; the async path awaits it like an aiohttp-style
  client, so an event loop can keep thousands of calls in flight at once.
  This is the shape a real ``AsyncAnthropic``/``AsyncOpenAI`` adapter
  takes — swap the ``asyncio.sleep`` for the real awaited HTTP call.
* :class:`FlakyTailAdapter` — a transport adapter simulating a *heavy-tail*
  remote API: a deterministic subset of prompts hangs for ``tail_latency_s``
  on its **first** attempt (a flaky connection, a stuck provider queue) and
  answers at base latency on retries.  Response *content* is always the
  wrapped model's and never changes — only timing is flaky — which is
  exactly the regime the engine's speculative re-execution targets: a
  duplicate of the straggling chunk completes at base speed while the
  original is still hanging.
* :class:`ChaosAdapter` — the fault-injection harness: it wraps any model
  in *deterministic* schedules of transient exceptions, malformed (wrong
  length) batch responses and hangs, selected per prompt from the prompt
  text.  Which prompts misbehave, how many attempts they misbehave for,
  and what every prompt ultimately answers are all pure functions of the
  inputs — so a run with chaos on plus enough retries must produce
  confusion counts bit-identical to a fault-free run, which is exactly
  the property ``tests/engine/test_faults.py`` pins.
* :class:`StaticAnalyzerModel` / :class:`InspectorTierModel` — *tier*
  adapters: they present the repo's non-LLM detectors (the static race
  analyzer from ``repro.analysis`` and the dynamic inspector from
  ``repro.dynamic``) behind the :class:`LanguageModel` interface so the
  cascade router in ``repro.engine.cascade`` can schedule, price and cache
  them exactly like any model.  Responses are rendered in the same shapes
  the simulated zoo produces (so ``score_response`` parses them unchanged)
  and carry an explicit ``[confidence=X.XX]`` marker that
  ``repro.engine.requests.response_confidence`` reads for escalation
  decisions.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.static_race import StaticRaceDetector, StaticRaceReport
from repro.dynamic.inspector import InspectorLikeDetector, InspectorRunResult
from repro.llm.base import LanguageModel
from repro.llm.behavior import deterministic_uniform, simulated_latency
from repro.llm.features import extract_code_from_prompt
from repro.llm.responses import render_pairs_response
from repro.llm.zoo import _classify_request, _is_analysis_request
from repro.prompting.strategy import PromptStrategy

__all__ = [
    "AsyncRemoteAdapter",
    "ChaosAdapter",
    "FlakyTailAdapter",
    "InspectorTierModel",
    "LowRankAdapter",
    "StaticAnalyzerModel",
    "reset_chaos_attempts",
]

#: Process-wide chaos attempt registry: (model name, salt, prompt) ->
#: calls that have touched the prompt in *this* process.  Module-level on
#: purpose: process-pool chunk payloads re-pickle their ChaosAdapter per
#: submission, so instance counters would reset on every retry attempt
#: and a chaotic prompt could never recover in a pool worker.  The worker
#: process outlives its payloads; this registry is the state that
#: persists with it.
_CHAOS_ATTEMPTS: Dict[Tuple[str, str, str], int] = {}
_CHAOS_LOCK = threading.Lock()


def reset_chaos_attempts() -> None:
    """Forget all chaos attempt counts (test isolation between runs)."""
    with _CHAOS_LOCK:
        _CHAOS_ATTEMPTS.clear()


def _sigmoid(z: np.ndarray | float) -> np.ndarray | float:
    return 1.0 / (1.0 + np.exp(-z))


class AsyncRemoteAdapter(LanguageModel):
    """A simulated remote API client around any language model.

    Parameters
    ----------
    inner:
        The wrapped model; it supplies the response *content* (and the
        cache identity).  It should itself be latency-free — this adapter
        owns the transport latency.
    latency_s:
        Base per-call network latency in seconds.
    latency_jitter_s:
        Extra per-call latency in ``[0, latency_jitter_s)``, drawn
        deterministically from the prompt text, so two runs over the same
        prompts sleep identically (benchmarks stay apples-to-apples).
    max_concurrency:
        Optional cap on concurrently in-flight async calls through this
        adapter — the analogue of an HTTP client's connection-pool limit.
        ``None`` leaves concurrency to the caller (the engine's
        ``max_inflight`` semaphore).
    """

    def __init__(
        self,
        inner: LanguageModel,
        *,
        latency_s: float = 0.05,
        latency_jitter_s: float = 0.0,
        max_concurrency: Optional[int] = None,
    ) -> None:
        if latency_s < 0 or latency_jitter_s < 0:
            raise ValueError("latencies must be >= 0")
        if max_concurrency is not None and max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1 or None")
        self.inner = inner
        self.name = inner.name
        self.context_window = inner.context_window
        self.latency_s = latency_s
        self.latency_jitter_s = latency_jitter_s
        self.max_concurrency = max_concurrency
        # asyncio primitives bind to a loop; create the semaphore lazily on
        # the loop that first uses it and rebuild if the loop changes (the
        # AsyncExecutor recreates its loop after close()).
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._semaphore_loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def cache_identity(self) -> str:
        # Transport latency never changes the response content, so the
        # adapter shares cached responses with its inner model.
        return self.inner.cache_identity

    def _call_delay(self, prompt: str) -> float:
        return simulated_latency(
            self.latency_s, self.latency_jitter_s, self.name, "remote-latency", prompt
        )

    def generate(self, prompt: str) -> str:
        """Sync client behaviour: block the calling thread for the latency."""
        delay = self._call_delay(prompt)
        if delay > 0:
            time.sleep(delay)
        return self.inner.generate(prompt)

    async def generate_async(self, prompt: str) -> str:
        """Async client behaviour: await the latency on the event loop."""
        semaphore = self._ensure_semaphore()
        if semaphore is None:
            return await self._call(prompt)
        async with semaphore:
            return await self._call(prompt)

    # generate_batch_async comes from the LanguageModel default, which
    # gathers the native generate_async — every call's latency (and the
    # max_concurrency semaphore) applies per call within one gather.

    async def _call(self, prompt: str) -> str:
        delay = self._call_delay(prompt)
        if delay > 0:
            await asyncio.sleep(delay)
        return self.inner.generate(prompt)

    def _ensure_semaphore(self) -> Optional[asyncio.Semaphore]:
        if self.max_concurrency is None:
            return None
        loop = asyncio.get_running_loop()
        if self._semaphore is None or self._semaphore_loop is not loop:
            self._semaphore = asyncio.Semaphore(self.max_concurrency)
            self._semaphore_loop = loop
        return self._semaphore

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AsyncRemoteAdapter inner={self.inner!r} latency_s={self.latency_s}"
            f" jitter_s={self.latency_jitter_s}>"
        )


class FlakyTailAdapter(LanguageModel):
    """A simulated remote API with deterministic heavy-tail first-call latency.

    Parameters
    ----------
    inner:
        The wrapped model; it supplies the response content (and the cache
        identity — timing never changes what a prompt answers).
    latency_s:
        Base per-call latency in seconds, paid by every call.
    tail_latency_s:
        What a *tail* call costs instead: the first attempt at a tail
        prompt hangs this long, modelling a flaky wire call.  Later
        attempts at the same prompt (a speculative duplicate, a retry)
        pay only ``latency_s`` — the hang is per *call*, not per prompt.
    tail_ratio:
        Fraction of prompts that are tail prompts, selected
        deterministically from the prompt text (same prompts hang in
        every run, so benchmarks comparing schedules stay
        apples-to-apples).

    Determinism: *which* prompts hang and *what* every prompt answers are
    both pure functions of the inputs.  Only the per-prompt attempt
    counter is stateful, and it only ever shortens latency — so confusion
    counts are bit-identical across executors, speculation on/off and
    repeated runs.
    """

    def __init__(
        self,
        inner: LanguageModel,
        *,
        latency_s: float = 0.01,
        tail_latency_s: float = 0.5,
        tail_ratio: float = 0.1,
    ) -> None:
        if latency_s < 0 or tail_latency_s < 0:
            raise ValueError("latencies must be >= 0")
        if not 0.0 <= tail_ratio <= 1.0:
            raise ValueError("tail_ratio must be in [0, 1]")
        self.inner = inner
        self.name = inner.name
        self.context_window = inner.context_window
        self.latency_s = latency_s
        self.tail_latency_s = tail_latency_s
        self.tail_ratio = tail_ratio
        self._attempts: Dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def cache_identity(self) -> str:
        # Transport flakiness never changes response content, so the
        # adapter shares cached responses with its inner model.
        return self.inner.cache_identity

    def is_tail_prompt(self, prompt: str) -> bool:
        """Whether ``prompt`` is one of the deterministically flaky ones."""
        return (
            deterministic_uniform(self.name, "flaky-tail", prompt) < self.tail_ratio
        )

    def _call_delay(self, prompt: str) -> float:
        with self._lock:
            attempt = self._attempts.get(prompt, 0)
            self._attempts[prompt] = attempt + 1
        if attempt == 0 and self.is_tail_prompt(prompt):
            return self.tail_latency_s
        return self.latency_s

    def generate(self, prompt: str) -> str:
        delay = self._call_delay(prompt)
        if delay > 0:
            time.sleep(delay)
        return self.inner.generate(prompt)

    async def generate_async(self, prompt: str) -> str:
        """Await the (possibly tail) latency on the loop, never a thread."""
        delay = self._call_delay(prompt)
        if delay > 0:
            await asyncio.sleep(delay)
        return self.inner.generate(prompt)

    # generate_batch / generate_batch_async come from the LanguageModel
    # defaults: the sync batch walks prompts serially (one hung call stalls
    # the whole chunk — the straggler regime), while the async batch
    # gathers generate_async so only the tail call itself hangs.

    def __getstate__(self):
        # Process-pool payloads pickle the model: drop the lock and the
        # attempt history — a worker's copy starts its own attempt count,
        # which only affects timing, never content.
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_attempts"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FlakyTailAdapter inner={self.inner!r} latency_s={self.latency_s}"
            f" tail_latency_s={self.tail_latency_s} tail_ratio={self.tail_ratio}>"
        )


class ChaosAdapter(LanguageModel):
    """Deterministic fault injection around any language model.

    Each prompt is assigned at most one chaos mode by partitioning a
    single deterministic uniform draw over the prompt text:

    * **transient** — the first ``fail_attempts`` calls touching the
      prompt raise :class:`~repro.engine.faults.TransientModelError`;
    * **malformed** — the first ``fail_attempts`` batch calls containing
      the prompt return a batch of the *wrong length* (and single-prompt
      calls raise
      :class:`~repro.engine.faults.MalformedResponseError` directly), so
      the engine's batch-length guard is what classifies the failure;
    * **hang** — the first ``fail_attempts`` calls sleep/await
      ``hang_s`` extra before answering (timing chaos only).

    After its scheduled misbehaviour a prompt answers exactly what the
    wrapped model answers — content is never perturbed, so with enough
    retries a chaotic run is bit-identical to a fault-free one.  One
    failing call consumes the schedule of *every* chaotic prompt it
    carried, and attempt counters live in a process-wide registry keyed
    on ``(model name, salt, prompt)`` — process-pool payloads re-pickle
    the adapter per chunk submission, so instance counters would reset
    every attempt and a chaotic prompt would never recover there.  Per
    process, a chunk's calls misbehave at most ``fail_attempts`` times,
    so ``retries >= jobs * fail_attempts`` guarantees recovery by
    pigeonhole (some worker process sees the chunk again).  Counters
    only change *when* a prompt recovers, never *what* it answers; tests
    sharing a salt should call :func:`reset_chaos_attempts` between
    runs.
    """

    def __init__(
        self,
        inner: LanguageModel,
        *,
        transient_ratio: float = 0.0,
        malformed_ratio: float = 0.0,
        hang_ratio: float = 0.0,
        hang_s: float = 0.05,
        fail_attempts: int = 1,
        salt: str = "chaos",
    ) -> None:
        for label, ratio in (
            ("transient_ratio", transient_ratio),
            ("malformed_ratio", malformed_ratio),
            ("hang_ratio", hang_ratio),
        ):
            if not 0.0 <= ratio <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {ratio}")
        if transient_ratio + malformed_ratio + hang_ratio > 1.0:
            raise ValueError("chaos ratios must sum to <= 1.0")
        if hang_s < 0:
            raise ValueError("hang_s must be >= 0")
        if fail_attempts < 0:
            raise ValueError("fail_attempts must be >= 0")
        self.inner = inner
        self.name = inner.name
        self.context_window = inner.context_window
        self.transient_ratio = transient_ratio
        self.malformed_ratio = malformed_ratio
        self.hang_ratio = hang_ratio
        self.hang_s = hang_s
        self.fail_attempts = fail_attempts
        self.salt = salt

    @property
    def cache_identity(self) -> str:
        # Chaos never changes response content, so the adapter shares
        # cached responses (and its circuit breaker) with its inner model.
        return self.inner.cache_identity

    def chaos_mode(self, prompt: str) -> Optional[str]:
        """The prompt's scheduled misbehaviour, or ``None``.

        One uniform draw partitioned into disjoint intervals, so a
        prompt has exactly one mode and the schedule is a pure function
        of ``(name, salt, prompt)``.
        """
        draw = deterministic_uniform(self.name, f"{self.salt}-mode", prompt)
        if draw < self.transient_ratio:
            return "transient"
        if draw < self.transient_ratio + self.malformed_ratio:
            return "malformed"
        if draw < self.transient_ratio + self.malformed_ratio + self.hang_ratio:
            return "hang"
        return None

    def _misbehaves(self, prompt: str, mode: Optional[str]) -> bool:
        if mode is None:
            return False
        key = (self.name, self.salt, prompt)
        with _CHAOS_LOCK:
            attempt = _CHAOS_ATTEMPTS.get(key, 0)
            _CHAOS_ATTEMPTS[key] = attempt + 1
        return attempt < self.fail_attempts

    def _survey(self, prompts: List[str]) -> Tuple[int, int, bool]:
        """Consume every prompt's schedule for one call, then report.

        Returns ``(transient, drop, hang)``.  Surveying the whole batch
        before misbehaving matters: raising on the first chaotic prompt
        would leave later prompts' budgets unconsumed, so a chunk with k
        chaotic prompts would need k failing attempts to drain — the
        required retry budget would scale with fault density instead of
        worker count.
        """
        transient = drop = 0
        hang = False
        for prompt in prompts:
            mode = self.chaos_mode(prompt)
            if self._misbehaves(prompt, mode):
                if mode == "transient":
                    transient += 1
                elif mode == "malformed":
                    drop += 1
                else:
                    hang = True
        return transient, drop, hang

    def generate(self, prompt: str) -> str:
        from repro.engine.faults import MalformedResponseError, TransientModelError

        mode = self.chaos_mode(prompt)
        if self._misbehaves(prompt, mode):
            if mode == "transient":
                raise TransientModelError(
                    f"injected transient fault ({self.name})"
                )
            if mode == "malformed":
                raise MalformedResponseError(
                    f"injected malformed response ({self.name})"
                )
            time.sleep(self.hang_s)
        return self.inner.generate(prompt)

    def generate_batch(self, prompts) -> List[str]:
        from repro.engine.faults import TransientModelError

        prompts = list(prompts)
        transient, drop, hang = self._survey(prompts)
        if hang:
            time.sleep(self.hang_s)
        if transient:
            raise TransientModelError(f"injected transient fault ({self.name})")
        responses = self.inner.generate_batch(prompts)
        # A wrong-length batch: the engine's length guard is what turns
        # this into MalformedResponseError.
        return responses[: len(responses) - drop] if drop else responses

    async def generate_batch_async(self, prompts) -> List[str]:
        from repro.engine.faults import TransientModelError

        prompts = list(prompts)
        transient, drop, hang = self._survey(prompts)
        if hang:
            await asyncio.sleep(self.hang_s)
        if transient:
            raise TransientModelError(f"injected transient fault ({self.name})")
        responses = await self.inner.generate_batch_async(prompts)
        return responses[: len(responses) - drop] if drop else responses

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ChaosAdapter inner={self.inner!r}"
            f" transient={self.transient_ratio} malformed={self.malformed_ratio}"
            f" hang={self.hang_ratio} fail_attempts={self.fail_attempts}>"
        )


@dataclass
class LowRankAdapter:
    """A trainable low-rank logistic head.

    Parameters
    ----------
    input_dim:
        Dimensionality of the (frozen) feature vectors.
    rank:
        LoRA rank: the trained weight vector lives in a ``rank``-dimensional
        subspace spanned by a fixed random projection.
    dropout:
        Feature dropout applied during training only.
    seed:
        Seed for the projection matrix and dropout masks.
    """

    input_dim: int = 512
    rank: int = 64
    dropout: float = 0.1
    seed: int = 0
    projection: np.ndarray = field(init=False, repr=False)
    weights: np.ndarray = field(init=False, repr=False)
    bias: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        # Scale so that projected coordinates of an L2-normalised feature
        # vector have roughly unit variance — keeps the logistic head's
        # gradients (and therefore the learning-rate scale) well conditioned.
        self.projection = rng.standard_normal((self.input_dim, self.rank))
        self.weights = np.zeros(self.rank, dtype=np.float64)
        self.bias = 0.0

    # -- inference ----------------------------------------------------------------

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class for one vector or a batch."""
        single = features.ndim == 1
        batch = features.reshape(1, -1) if single else features
        logits = batch @ self.projection @ self.weights + self.bias
        probs = _sigmoid(logits)
        return float(probs[0]) if single else probs

    # -- training -----------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        *,
        learning_rate: float = 0.2,
        epochs: int = 40,
        batch_size: int = 4,
        l2: float = 1e-3,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Mini-batch gradient descent on the cross-entropy loss.

        Returns the final average training loss (useful for tests asserting
        that training actually reduces the loss).
        """
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same length")
        rng = rng or np.random.default_rng(self.seed + 1)
        projected = features @ self.projection  # (n, rank), frozen
        n = projected.shape[0]
        last_loss = float("inf")
        for _epoch in range(epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                batch = projected[idx]
                if self.dropout > 0:
                    mask = rng.random(batch.shape) >= self.dropout
                    batch = batch * mask / (1.0 - self.dropout)
                target = labels[idx]
                logits = batch @ self.weights + self.bias
                probs = _sigmoid(logits)
                error = probs - target
                grad_w = batch.T @ error / len(idx) + l2 * self.weights
                grad_b = float(np.mean(error))
                self.weights -= learning_rate * grad_w
                self.bias -= learning_rate * grad_b
                eps = 1e-9
                losses.append(
                    float(
                        -np.mean(
                            target * np.log(probs + eps)
                            + (1 - target) * np.log(1 - probs + eps)
                        )
                    )
                )
            last_loss = float(np.mean(losses)) if losses else last_loss
        return last_loss


def _confidence_marker(value: float) -> str:
    return f"\n[confidence={max(0.0, min(1.0, value)):.2f}]"


def _pair_element(site) -> Tuple[str, int, int, str]:
    """(expr, line, col, op) element from an AccessSite or AccessEvent."""
    expr = getattr(site, "expr_text", "") or getattr(site, "variable", "unknown")
    return (expr, site.line, site.col, "W" if site.is_write else "R")


class _DetectorTierModel(LanguageModel):
    """Common scaffolding for cascade tier adapters over non-LLM detectors.

    Subclasses implement :meth:`_analyze` returning ``(verdict, pairs,
    confidence)`` where ``verdict`` is ``None`` when the detector could not
    process the snippet at all, ``pairs`` is a list of 2-tuples of pair
    elements and ``confidence`` is the detector's self-assessment in
    ``[0, 1]``.  Responses reuse the zoo's renderer shapes so
    ``score_response`` parses them unchanged, and end with a
    ``[confidence=X.XX]`` marker for the cascade's escalation decision.
    """

    #: Planning-time cost prior in seconds/request; consumed by the engine's
    #: CostModel cold-start path so an unobserved tier prices as
    #: cheap-but-unknown instead of blocking LPT ordering.
    cost_prior_s: float = 0.01
    #: Human label used in dependence-analysis (AP2 chain 1) responses.
    analysis_label = "analysis"
    context_window = 1 << 20

    def _analyze(self, code: str):
        raise NotImplementedError

    def _verdict_text(self, verdict: Optional[bool], pairs: List) -> str:
        raise NotImplementedError

    def generate(self, prompt: str) -> str:
        code = extract_code_from_prompt(prompt)
        verdict, pairs, confidence = self._analyze(code)
        if _is_analysis_request(prompt):
            # AP2 chain 1: intermediate text, never scored — no marker.
            return self._render_analysis(verdict, pairs)
        strategy = _classify_request(prompt)
        if strategy.requests_pairs:
            if verdict is None:
                body = "analysis unavailable for this snippet."
            else:
                pair = pairs[0] if (verdict and pairs) else None
                body = render_pairs_response(
                    bool(verdict),
                    pair,
                    well_formed=True,
                    word_ops=strategy is PromptStrategy.ADVANCED,
                )
        else:
            body = self._verdict_text(verdict, pairs)
        return body + _confidence_marker(confidence)

    def _render_analysis(self, verdict: Optional[bool], pairs: List) -> str:
        if verdict is None:
            return "The code could not be fully analyzed; treating accesses conservatively."
        lines: List[str] = []
        if pairs:
            lines.append(
                f"The following conflicting accesses were found by {self.analysis_label}:"
            )
            for (expr, line, _col, op), _second in pairs[:6]:
                kind = "write" if op == "W" else "read"
                lines.append(f"- {kind} of {expr} at line {line}")
        else:
            lines.append(
                "No loop-carried data dependences between concurrent iterations were identified."
            )
        return "\n".join(lines)

    @staticmethod
    def _subject(pairs: List) -> str:
        if pairs:
            return pairs[0][0][0]
        return "a shared variable"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class StaticAnalyzerModel(_DetectorTierModel):
    """The static race analyzer behind the :class:`LanguageModel` interface.

    Extremely cheap — the canonical tier-0 of the cascade.  The confidence
    marker is the report's own self-assessment: for racy verdicts the
    per-rule calibrated confidence of the strongest fired ``DRD-*``
    diagnostic, for clean verdicts the MHP/mutex proof certainty minus a
    deduction per assumption-bearing suppression class (see
    :class:`repro.analysis.static_race.StaticRaceReport.confidence`) — so
    well-supported verdicts on either side clear the cascade's default
    escalation threshold and only genuinely uncertain records pay for a
    stronger tier.  Carries its own ``cache_identity`` (``tier:static``) so the
    :class:`~repro.engine.costmodel.CostModel` prices and the cache stores
    it independently of any LLM.
    """

    name = "tier:static"
    cost_prior_s = 0.002
    analysis_label = "static data dependence analysis"

    def __init__(self, detector: Optional[StaticRaceDetector] = None) -> None:
        self.detector = detector or StaticRaceDetector()

    def _analyze(self, code: str):
        try:
            report: StaticRaceReport = self.detector.analyze_source(code)
        except Exception:
            # Parse failures and interpreter gaps: unusable verdict.
            return None, [], 0.0
        pairs = [(_pair_element(p.first), _pair_element(p.second)) for p in report.pairs]
        return report.has_race, pairs, report.confidence

    def _verdict_text(self, verdict: Optional[bool], pairs: List) -> str:
        if verdict is None:
            return "static analysis could not process the snippet."
        if verdict:
            return (
                f"yes. Static analysis flagged {len(pairs)} conflicting access pair(s): "
                f"concurrent iterations may update {self._subject(pairs)} without "
                "sufficient synchronization."
            )
        return (
            "no. Static analysis proved every shared access either synchronized "
            "or iteration-private."
        )


class InspectorTierModel(_DetectorTierModel):
    """The dynamic inspector behind the :class:`LanguageModel` interface.

    Under-approximate and moderately priced: a witnessed conflict is near
    ground truth, a clean run only covers the schedules executed.  The
    natural mid-tier between the static analyzer and a full LLM.
    """

    name = "tier:inspector"
    cost_prior_s = 0.01
    analysis_label = "dynamic execution"

    def __init__(
        self,
        detector: Optional[InspectorLikeDetector] = None,
        *,
        num_threads: int = 4,
    ) -> None:
        self.detector = detector or InspectorLikeDetector()
        self.num_threads = num_threads

    def _analyze(self, code: str):
        try:
            result: InspectorRunResult = self.detector.analyze_source(
                code, name="cascade-tier", num_threads=self.num_threads
            )
        except Exception:
            return None, [], 0.0
        if result.failed and result.runs <= 0:
            return None, [], result.confidence
        pairs = [(_pair_element(p.first), _pair_element(p.second)) for p in result.pairs]
        return result.has_race, pairs, result.confidence

    def _verdict_text(self, verdict: Optional[bool], pairs: List) -> str:
        if verdict is None:
            return "the interpreter could not execute this snippet."
        if verdict:
            return (
                f"yes. The interpreter witnessed conflicting concurrent accesses to "
                f"{self._subject(pairs)} during execution."
            )
        return (
            "no. All exercised interleavings executed cleanly with the shared "
            "accesses properly synchronized."
        )
