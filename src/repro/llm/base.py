"""Language model interface.

Every model in the zoo — and every fine-tuned wrapper — implements
:class:`LanguageModel`: plain text in, plain text out, plus a convenience
chat form.  The evaluation harness and the prompt chains only ever talk to
this interface, so swapping a simulated model for a real API client would not
change any downstream code.
"""

from __future__ import annotations

import abc
import asyncio
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["ChatMessage", "LanguageModel"]


@dataclass(frozen=True)
class ChatMessage:
    """One message of a chat conversation."""

    role: str  # "system" | "user" | "assistant"
    content: str


class LanguageModel(abc.ABC):
    """Abstract text-in/text-out model.

    Error contract
    --------------
    Adapters wrapping fallible transports should raise the engine's
    error taxonomy (:mod:`repro.engine.faults`):
    :class:`~repro.engine.faults.TransientModelError` for failures a
    retry may fix (rate limits, timeouts, dropped connections),
    :class:`~repro.engine.faults.PermanentModelError` for failures it
    cannot (bad credentials, unknown model), and
    :class:`~repro.engine.faults.MalformedResponseError` when the
    backend answered with an unusable payload.  Unclassified exceptions
    are mapped by :func:`~repro.engine.faults.classify_error`, so
    pre-taxonomy adapters keep working — the taxonomy just routes
    retries and circuit breakers more precisely.
    """

    #: Human-readable model identifier (e.g. ``"gpt-4"``).
    name: str = "model"
    #: Maximum prompt size in tokens (the paper filters inputs to 4k).
    context_window: int = 4096

    @abc.abstractmethod
    def generate(self, prompt: str) -> str:
        """Produce a completion for ``prompt``."""

    def generate_batch(self, prompts: Sequence[str]) -> List[str]:
        """Produce completions for many prompts (same order as the input).

        The default implementation simply loops over :meth:`generate`;
        adapters wrapping real APIs or local inference servers should
        override it with a true batched call.  The execution engine only
        ever talks to models through this method.  A per-prompt
        completion that is not text raises
        :class:`~repro.engine.faults.MalformedResponseError` here rather
        than corrupting scoring downstream.
        """
        completions = []
        for prompt in prompts:
            completion = self.generate(prompt)
            if not isinstance(completion, str):
                # Imported lazily: repro.engine.requests imports this
                # module, so a module-level engine import would cycle.
                from repro.engine.faults import MalformedResponseError

                raise MalformedResponseError(
                    f"model {self.name!r} returned a non-text completion "
                    f"({type(completion).__name__})"
                )
            completions.append(completion)
        return completions

    async def generate_async(self, prompt: str) -> str:
        """Produce a completion without blocking the event loop.

        The default offloads the synchronous :meth:`generate` to a worker
        thread, so any model is usable from the async execution path.
        Adapters whose transport is natively asynchronous (aiohttp-style
        API clients, the simulated zoo models) override this with a real
        coroutine — that is what lets thousands of calls be in flight on
        one event loop instead of one per pool thread.
        """
        return await asyncio.to_thread(self.generate, prompt)

    async def generate_batch_async(self, prompts: Sequence[str]) -> List[str]:
        """Batched async generation (same order as the input).

        The default picks the most concurrent correct path available: a
        model that overrides :meth:`generate_async` gets a gather over it
        (every call's latency overlaps on the loop); a sync-only model
        gets its own :meth:`generate_batch` offloaded to a worker thread
        in one piece, preserving whatever batching the adapter implements.
        Natively-batched adapters should override this with one awaited
        call — the engine's async dispatch path and the micro-batch
        coalescer only ever talk to models through this method.
        """
        prompts = list(prompts)
        if self.has_native_async:
            return list(
                await asyncio.gather(*(self.generate_async(p) for p in prompts))
            )
        return await asyncio.to_thread(self.generate_batch, prompts)

    @property
    def has_native_async(self) -> bool:
        """Whether this model's async methods are more than a thread offload.

        True when :meth:`generate_async` or :meth:`generate_batch_async`
        is overridden.  The engine's micro-batch coalescer checks this: a
        merged mega-batch only helps when the batch call genuinely fans
        out on the loop — for a sync-only model it would *serialise* many
        chunks' calls into one worker thread, so coalescing is skipped.
        """
        return (
            type(self).generate_async is not LanguageModel.generate_async
            or type(self).generate_batch_async is not LanguageModel.generate_batch_async
        )

    @property
    def cache_identity(self) -> str:
        """Key namespace for the response cache.

        Two model instances may share cached responses only when their
        identities match.  The default — the model name — is right for
        stateless models whose behaviour is fully determined by the name;
        models with trained state (see
        :class:`~repro.llm.finetune.FineTunedModel`) must extend it with a
        content fingerprint of that state.
        """
        return self.name

    def chat(self, messages: Sequence[ChatMessage]) -> str:
        """Chat-style entry point: concatenates the conversation and generates.

        The simulated models do not maintain conversational state beyond what
        is present in the transcript, which matches how the paper drives the
        real models (one detection request per code snippet).
        """
        transcript = "\n\n".join(f"[{m.role}] {m.content}" for m in messages)
        return self.generate(transcript)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
