"""Language model interface.

Every model in the zoo — and every fine-tuned wrapper — implements
:class:`LanguageModel`: plain text in, plain text out, plus a convenience
chat form.  The evaluation harness and the prompt chains only ever talk to
this interface, so swapping a simulated model for a real API client would not
change any downstream code.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["ChatMessage", "LanguageModel"]


@dataclass(frozen=True)
class ChatMessage:
    """One message of a chat conversation."""

    role: str  # "system" | "user" | "assistant"
    content: str


class LanguageModel(abc.ABC):
    """Abstract text-in/text-out model."""

    #: Human-readable model identifier (e.g. ``"gpt-4"``).
    name: str = "model"
    #: Maximum prompt size in tokens (the paper filters inputs to 4k).
    context_window: int = 4096

    @abc.abstractmethod
    def generate(self, prompt: str) -> str:
        """Produce a completion for ``prompt``."""

    def chat(self, messages: Sequence[ChatMessage]) -> str:
        """Chat-style entry point: concatenates the conversation and generates.

        The simulated models do not maintain conversational state beyond what
        is present in the transcript, which matches how the paper drives the
        real models (one detection request per code snippet).
        """
        transcript = "\n\n".join(f"[{m.role}] {m.content}" for m in messages)
        return self.generate(transcript)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
