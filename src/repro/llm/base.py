"""Language model interface.

Every model in the zoo — and every fine-tuned wrapper — implements
:class:`LanguageModel`: plain text in, plain text out, plus a convenience
chat form.  The evaluation harness and the prompt chains only ever talk to
this interface, so swapping a simulated model for a real API client would not
change any downstream code.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["ChatMessage", "LanguageModel"]


@dataclass(frozen=True)
class ChatMessage:
    """One message of a chat conversation."""

    role: str  # "system" | "user" | "assistant"
    content: str


class LanguageModel(abc.ABC):
    """Abstract text-in/text-out model."""

    #: Human-readable model identifier (e.g. ``"gpt-4"``).
    name: str = "model"
    #: Maximum prompt size in tokens (the paper filters inputs to 4k).
    context_window: int = 4096

    @abc.abstractmethod
    def generate(self, prompt: str) -> str:
        """Produce a completion for ``prompt``."""

    def generate_batch(self, prompts: Sequence[str]) -> List[str]:
        """Produce completions for many prompts (same order as the input).

        The default implementation simply loops over :meth:`generate`;
        adapters wrapping real APIs or local inference servers should
        override it with a true batched call.  The execution engine only
        ever talks to models through this method.
        """
        return [self.generate(prompt) for prompt in prompts]

    @property
    def cache_identity(self) -> str:
        """Key namespace for the response cache.

        Two model instances may share cached responses only when their
        identities match.  The default — the model name — is right for
        stateless models whose behaviour is fully determined by the name;
        models with trained state (see
        :class:`~repro.llm.finetune.FineTunedModel`) must extend it with a
        content fingerprint of that state.
        """
        return self.name

    def chat(self, messages: Sequence[ChatMessage]) -> str:
        """Chat-style entry point: concatenates the conversation and generates.

        The simulated models do not maintain conversational state beyond what
        is present in the transcript, which matches how the paper drives the
        real models (one detection request per code snippet).
        """
        transcript = "\n\n".join(f"[{m.role}] {m.content}" for m in messages)
        return self.generate(transcript)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
