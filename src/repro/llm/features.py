"""Code feature extraction shared by the simulated models and fine-tuning.

Two kinds of features are produced:

* :class:`CodeFeatures` — the structural evidence a simulated model reasons
  about: did its internal static analysis find conflicting accesses, which
  variable pairs, what synchronization is present;
* :func:`hashed_ngram_vector` — the bag-of-n-grams vector the fine-tuning
  adapter trains on.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.static_race import StaticRaceDetector, StaticRaceReport
from repro.dataset.tokenizer import CodeTokenizer

__all__ = [
    "CodeFeatures",
    "extract_code_from_prompt",
    "extract_features",
    "hashed_ngram_vector",
]

_CODE_START_RE = re.compile(r"^\s*(#include|int\s+main|void\s+main)", re.MULTILINE)

#: Shared tokenizer instance.  :class:`CodeTokenizer` is a frozen, stateless
#: dataclass, and both :func:`extract_features` and :func:`hashed_ngram_vector`
#: sit in hot loops (the fine-tuning cross-validation featurises every prompt
#: of every fold) — constructing a fresh tokenizer per call was pure waste.
_TOKENIZER = CodeTokenizer()


def extract_code_from_prompt(prompt: str) -> str:
    """Pull the C code snippet out of a detection prompt.

    The prompt templates place the code after the instructions, so the code
    is taken from the first ``#include`` / ``int main`` line onwards.  When no
    code marker is found the whole prompt is returned (the heuristic then
    simply sees extra natural-language tokens).
    """
    match = _CODE_START_RE.search(prompt)
    if match is None:
        return prompt
    # Slice from the directive/definition itself (group 1), not from the
    # ``^\s*`` anchor — the anchor may sit on the preceding blank line, which
    # would shift every line number of the extracted snippet by one.
    return prompt[match.start(1) :]


@dataclass
class CodeFeatures:
    """Structural evidence extracted from one code snippet."""

    parses: bool
    heuristic_race: bool
    predicted_pairs: List[Tuple[str, int, int, str]] = field(default_factory=list)
    has_parallel_pragma: bool = False
    has_reduction_clause: bool = False
    has_critical: bool = False
    has_atomic: bool = False
    has_lock_calls: bool = False
    has_barrier: bool = False
    has_task: bool = False
    has_simd: bool = False
    shared_compound_update: bool = False
    token_count: int = 0
    # Structured evidence from the static analyzer's diagnostic engine:
    # which DRD-* rules fired and the report's calibrated self-assessment.
    static_rule_ids: List[str] = field(default_factory=list)
    static_confidence: float = 0.5

    @property
    def synchronization_score(self) -> int:
        """How much explicit synchronization the snippet contains."""
        return sum(
            [
                self.has_reduction_clause,
                self.has_critical,
                self.has_atomic,
                self.has_lock_calls,
                self.has_barrier,
            ]
        )


def extract_features(code: str, *, detector: Optional[StaticRaceDetector] = None) -> CodeFeatures:
    """Extract :class:`CodeFeatures` from C source text.

    The static detector provides the main evidence (conflicting access
    pairs); lexical scans provide the synchronization context.  Parse
    failures degrade gracefully to lexical-only features with a conservative
    "no race found" heuristic.
    """
    detector = detector or StaticRaceDetector()
    lowered = code
    features = CodeFeatures(
        parses=True,
        heuristic_race=False,
        has_parallel_pragma="#pragma omp" in lowered and "parallel" in lowered,
        has_reduction_clause="reduction(" in lowered.replace(" ", ""),
        has_critical="critical" in lowered,
        has_atomic="atomic" in lowered,
        has_lock_calls="omp_set_lock" in lowered,
        has_barrier="barrier" in lowered,
        has_task="omp task" in lowered or "sections" in lowered,
        has_simd="simd" in lowered,
        shared_compound_update=bool(re.search(r"\w+\s*(\+=|-=|\*=)", lowered)),
        token_count=_TOKENIZER.count(code),
    )
    try:
        report: StaticRaceReport = detector.analyze_source(code)
    except Exception:
        features.parses = False
        return features
    features.heuristic_race = report.has_race
    features.static_confidence = report.confidence
    for diagnostic in report.diagnostics:
        if diagnostic.rule_id not in features.static_rule_ids:
            features.static_rule_ids.append(diagnostic.rule_id)
    for pair in report.pairs:
        features.predicted_pairs.append(
            (pair.first.expr_text, pair.first.line, pair.first.col, pair.first.operation)
        )
        features.predicted_pairs.append(
            (pair.second.expr_text, pair.second.line, pair.second.col, pair.second.operation)
        )
    return features


def hashed_ngram_vector(code: str, *, dim: int = 512, ngram: int = 2) -> np.ndarray:
    """Bag-of-hashed-n-grams feature vector used by the fine-tuning adapter.

    Tokens come from the word-piece tokenizer; unigrams up to ``ngram``-grams
    are hashed into ``dim`` buckets, and the vector is L2-normalised so the
    logistic adapter's learning rate is scale independent.
    """
    tokens = _TOKENIZER.tokenize(code)
    vector = np.zeros(dim, dtype=np.float64)
    for order in range(1, ngram + 1):
        for start in range(0, max(0, len(tokens) - order + 1)):
            gram = " ".join(tokens[start : start + order])
            digest = hashlib.blake2b(gram.encode("utf-8"), digest_size=8).digest()
            bucket = int.from_bytes(digest, "little") % dim
            vector[bucket] += 1.0
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector /= norm
    return vector
