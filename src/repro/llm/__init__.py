"""Simulated large language models and LoRA-style fine-tuning.

The paper evaluates GPT-3.5-turbo, GPT-4, Llama2-7b and StarChat-beta and
fine-tunes the two open-source models with QLoRA on a single GPU.  Neither
the closed APIs nor GPU fine-tuning are available in this offline
environment, so this package provides *simulated* chat models with the same
text-in/text-out interface:

* each model extracts the code from the prompt, runs an internal (imperfect)
  static heuristic over it, and converts that evidence into a yes/no verdict
  and (when requested) a variable-pair report;
* a per-(model, prompt-strategy) :class:`~repro.llm.behavior.BehaviorProfile`
  controls how reliably the model follows its own analysis, how often it
  keeps the requested output format, and how often a reported variable pair
  is the right one — the profiles are calibrated against the confusion
  matrices the paper reports (Tables 2, 3 and 5), so the reproduction keeps
  the published shape of the comparison;
* fine-tuning (:mod:`repro.llm.finetune`) trains a real low-rank adapter
  (numpy logistic head over hashed n-gram code features) on the DRB-ML
  prompt–response pairs and blends it with the base model, mirroring the
  paper's QLoRA setup at simulation scale.

See DESIGN.md §2 for the substitution rationale.
"""

from repro.llm.base import ChatMessage, LanguageModel
from repro.llm.features import CodeFeatures, extract_code_from_prompt, extract_features
from repro.llm.behavior import BehaviorProfile, HEURISTIC_FPR, HEURISTIC_TPR, profile_for
from repro.llm.zoo import (
    GPT35TurboSim,
    GPT4Sim,
    Llama2Sim,
    StarChatBetaSim,
    available_models,
    create_model,
)
from repro.llm.adapters import AsyncRemoteAdapter, FlakyTailAdapter, LowRankAdapter
from repro.llm.finetune import FineTuneConfig, FineTunedModel, FineTuner

__all__ = [
    "ChatMessage",
    "LanguageModel",
    "CodeFeatures",
    "extract_code_from_prompt",
    "extract_features",
    "BehaviorProfile",
    "HEURISTIC_TPR",
    "HEURISTIC_FPR",
    "profile_for",
    "GPT35TurboSim",
    "GPT4Sim",
    "Llama2Sim",
    "StarChatBetaSim",
    "available_models",
    "create_model",
    "AsyncRemoteAdapter",
    "FlakyTailAdapter",
    "LowRankAdapter",
    "FineTuneConfig",
    "FineTuner",
    "FineTunedModel",
]
