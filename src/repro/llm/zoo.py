"""The simulated model zoo: GPT-3.5-turbo, GPT-4, Llama2-7b, StarChat-beta.

Each model implements :class:`~repro.llm.base.LanguageModel` and follows the
same internal pipeline:

1. classify the request from the prompt text (detection, dependence analysis,
   or pair identification) — the model only ever sees the prompt;
2. extract the code snippet and run the internal heuristic
   (:func:`repro.llm.features.extract_features`);
3. turn the evidence into a verdict using the per-(model, strategy)
   :class:`~repro.llm.behavior.BehaviorProfile` and a deterministic
   pseudo-random draw keyed by (model, strategy, code);
4. render a natural-language / JSON response
   (:mod:`repro.llm.responses`), occasionally breaking the requested format
   as the real models do.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.llm.base import LanguageModel
from repro.llm.behavior import (
    BehaviorProfile,
    deterministic_uniform,
    profile_for,
    simulated_latency,
)
from repro.llm.features import CodeFeatures, extract_code_from_prompt, extract_features
from repro.llm.responses import (
    render_analysis_response,
    render_detection_response,
    render_pairs_response,
)
from repro.prompting.strategy import PromptStrategy

__all__ = [
    "SimulatedChatModel",
    "GPT35TurboSim",
    "GPT4Sim",
    "Llama2Sim",
    "StarChatBetaSim",
    "available_models",
    "create_model",
]


def _classify_request(prompt: str) -> PromptStrategy:
    """Infer which prompt template produced this request.

    The simulated models key their behaviour on the *shape* of the request,
    mirroring how differently the real models respond to the different
    prompt styles.
    """
    text = prompt.lower()
    if "analyze data dependence in the given code" in text:
        return PromptStrategy.AP2  # chain 1
    if "based on the given data dependence information" in text:
        return PromptStrategy.AP2  # chain 2
    if "variable_names" in text:
        return PromptStrategy.ADVANCED
    if '"name"' in text and "json" in text:
        return PromptStrategy.BP2
    if "data dependence" in text or "it's crucial to analyze" in text:
        return PromptStrategy.AP1
    return PromptStrategy.BP1


def _is_analysis_request(prompt: str) -> bool:
    text = prompt.lower()
    return (
        "analyze data dependence in the given code" in text
        and "begin with a concise response" not in text
    )


class SimulatedChatModel(LanguageModel):
    """Base class for the simulated chat models."""

    #: Model identifier reported in tables.
    name = "simulated"
    #: Short label used in the paper's tables ("GPT3", "Llama", ...).
    table_label = "SIM"
    context_window = 4096

    def __init__(
        self,
        *,
        calibrated: bool = True,
        latency_s: float = 0.0,
        latency_jitter_s: float = 0.0,
    ) -> None:
        self.calibrated = calibrated
        #: Simulated per-call latency.  The real models sit behind network
        #: APIs, so a call is dominated by I/O wait; setting this lets the
        #: throughput benchmarks exercise that regime (threads overlap the
        #: sleep exactly as they would overlap network time).  It never
        #: affects the response content.
        self.latency_s = latency_s
        #: Extra per-call latency in ``[0, latency_jitter_s)``, drawn
        #: *deterministically* from the prompt text — two calls with the
        #: same prompt sleep identically, so benchmarks comparing two
        #: schedules over the same requests stay an apples-to-apples
        #: comparison while still exercising non-uniform call times.
        self.latency_jitter_s = latency_jitter_s
        self._feature_cache: Dict[str, CodeFeatures] = {}

    # -- internals ----------------------------------------------------------------

    def _features(self, code: str) -> CodeFeatures:
        key = hashlib.sha256(code.encode("utf-8")).hexdigest()
        if key not in self._feature_cache:
            self._feature_cache[key] = extract_features(code)
        return self._feature_cache[key]

    def _profile(self, strategy: PromptStrategy) -> BehaviorProfile:
        return profile_for(self.name, strategy)

    def _decide(self, strategy: PromptStrategy, code: str, features: CodeFeatures) -> bool:
        """Turn heuristic evidence into a yes/no verdict."""
        if not self.calibrated:
            return features.heuristic_race
        profile = self._profile(strategy)
        p_yes = (
            profile.p_yes_given_evidence
            if features.heuristic_race
            else profile.p_yes_given_no_evidence
        )
        draw = deterministic_uniform(self.name, strategy.value, "verdict", code)
        return draw < p_yes

    def _pair_to_report(
        self, strategy: PromptStrategy, code: str, features: CodeFeatures
    ):
        """Choose the variable pair the model reports (possibly a wrong one)."""
        profile = self._profile(strategy)
        draw = deterministic_uniform(self.name, strategy.value, "pair", code)
        faithful = draw < profile.pair_fidelity and len(features.predicted_pairs) >= 2
        if faithful:
            return features.predicted_pairs[0], features.predicted_pairs[1]
        # Fabricated pair: a plausible-looking but analysis-free guess.
        guess_line = 1 + int(deterministic_uniform(self.name, "guessline", code) * 20)
        return (
            ("i", guess_line, 1, "W"),
            ("i", guess_line, 1, "R"),
        )

    # -- public API ---------------------------------------------------------------

    @property
    def cache_identity(self) -> str:
        # An uncalibrated instance answers differently from the calibrated
        # default, so it must not share cached responses with it.
        return self.name if self.calibrated else f"{self.name}#uncalibrated"

    def score(self, code: str) -> float:
        """The model's internal probability that ``code`` has a data race.

        Exposed for the fine-tuning wrapper, which blends this base score
        with the trained adapter's score.
        """
        features = self._features(code)
        profile = self._profile(PromptStrategy.BP1)
        return (
            profile.p_yes_given_evidence
            if features.heuristic_race
            else profile.p_yes_given_no_evidence
        )

    def _call_delay(self, prompt: str) -> float:
        """Simulated network latency for one call (deterministic per prompt)."""
        return simulated_latency(
            self.latency_s, self.latency_jitter_s, self.name, "latency", prompt
        )

    def generate(self, prompt: str) -> str:
        delay = self._call_delay(prompt)
        if delay > 0:
            time.sleep(delay)
        return self._respond(prompt)

    async def generate_async(self, prompt: str) -> str:
        """Natively-async call: the simulated latency awaits on the loop.

        Only the I/O wait is asynchronous — ``asyncio.sleep`` stands in for
        a real client awaiting its HTTP response — so thousands of calls
        can be in flight on one event loop.  The response itself is the
        same deterministic function of the prompt as :meth:`generate`.
        """
        delay = self._call_delay(prompt)
        if delay > 0:
            await asyncio.sleep(delay)
        return self._respond(prompt)

    # generate_batch_async needs no override: the LanguageModel default
    # sees the native generate_async and gathers it, so every call's
    # latency overlaps in one event-loop pass.

    def _respond(self, prompt: str) -> str:
        """The pure-compute response (no latency): shared by sync and async."""
        code = extract_code_from_prompt(prompt)
        features = self._features(code)
        if _is_analysis_request(prompt):
            return render_analysis_response(features)
        strategy = _classify_request(prompt)
        verdict = self._decide(strategy, code, features)
        if strategy.requests_pairs:
            profile = self._profile(strategy)
            well_formed = (
                deterministic_uniform(self.name, strategy.value, "format", code)
                < profile.format_fidelity
            )
            pair = self._pair_to_report(strategy, code, features) if verdict else None
            return render_pairs_response(
                verdict, pair, well_formed=well_formed,
                word_ops=strategy is PromptStrategy.ADVANCED,
            )
        return render_detection_response(verdict, features)


class GPT35TurboSim(SimulatedChatModel):
    """Simulated GPT-3.5-turbo (16k context in the paper)."""

    name = "gpt-3.5-turbo"
    table_label = "GPT3"
    context_window = 16384


class GPT4Sim(SimulatedChatModel):
    """Simulated GPT-4 — the strongest pre-trained model in the paper."""

    name = "gpt-4"
    table_label = "GPT4"
    context_window = 8192


class Llama2Sim(SimulatedChatModel):
    """Simulated Llama2-7b."""

    name = "llama2-7b"
    table_label = "Llama"
    context_window = 4096


class StarChatBetaSim(SimulatedChatModel):
    """Simulated StarChat-beta (16B parameters in the paper)."""

    name = "starchat-beta"
    table_label = "StarChat"
    context_window = 8192


_MODEL_REGISTRY: Dict[str, Type[SimulatedChatModel]] = {
    cls.name: cls for cls in (GPT35TurboSim, GPT4Sim, Llama2Sim, StarChatBetaSim)
}


def available_models() -> List[str]:
    """Names of every model in the zoo (paper §3.2 order)."""
    return ["gpt-3.5-turbo", "gpt-4", "starchat-beta", "llama2-7b"]


def create_model(
    name: str,
    *,
    calibrated: bool = True,
    latency_s: float = 0.0,
    latency_jitter_s: float = 0.0,
) -> SimulatedChatModel:
    """Instantiate a zoo model by name."""
    try:
        cls = _MODEL_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(f"unknown model {name!r}; available: {sorted(_MODEL_REGISTRY)}") from exc
    return cls(calibrated=calibrated, latency_s=latency_s, latency_jitter_s=latency_jitter_s)
