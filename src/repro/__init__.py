"""Reproduction of "Data Race Detection Using Large Language Models" (SC-W 2023).

This package contains:

* :mod:`repro.cparse` — a C-with-OpenMP front end (lexer, parser, pragmas);
* :mod:`repro.corpus` — a DataRaceBench-style microbenchmark generator;
* :mod:`repro.analysis` — a static data-race analysis substrate;
* :mod:`repro.dynamic` — an execution-based race detector (Inspector-like);
* :mod:`repro.dataset` — the DRB-ML dataset pipeline (paper §3.1);
* :mod:`repro.llm` — simulated large language models and LoRA-style fine-tuning;
* :mod:`repro.prompting` — the BP1/BP2/AP1/AP2 prompt strategies (paper §3.3);
* :mod:`repro.eval` — metrics, stratified cross-validation and the per-table
  experiment drivers (paper §3.5–§4);
* :mod:`repro.core` — the high-level :class:`~repro.core.pipeline.DataRacePipeline`.

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured results of every table.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
