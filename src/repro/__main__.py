"""Command-line entry point: regenerate the paper's tables from the terminal.

Usage::

    python -m repro table2            # GPT-3.5 BP1 vs BP2
    python -m repro table3            # Inspector + 4 LLMs x 3 prompts
    python -m repro table4            # basic fine-tuning cross-validation
    python -m repro table5            # variable identification (pre-trained)
    python -m repro table6            # advanced fine-tuning cross-validation
    python -m repro summary           # corpus + dataset statistics
    python -m repro all               # everything above in sequence

    python -m repro table3 --jobs 8   # thread-pool execution (same results)
    python -m repro all --cache /tmp/repro-cache.json   # persist responses

Every table run goes through one shared
:class:`~repro.engine.core.ExecutionEngine`; after each table the engine
prints its stats line (request count, cache hit rate, wall time) unless
``--no-stats`` is given.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.engine import ExecutionEngine, ResponseCache
from repro.eval.experiments import (
    default_subset,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)
from repro.eval.reporting import format_confusion_table, format_crossval_table

__all__ = ["main"]


def _print_summary() -> None:
    from repro.corpus import CorpusRegistry

    registry = CorpusRegistry.build()
    print(registry.summary())
    print()
    print(default_subset().summary())


def _run(table: str, engine: ExecutionEngine) -> None:
    subset = default_subset()
    if table == "table2":
        print(
            format_confusion_table(
                run_table2(subset, engine=engine), title="Table 2 — GPT-3.5-turbo, BP1 vs BP2"
            )
        )
    elif table == "table3":
        print(
            format_confusion_table(
                run_table3(subset, engine=engine),
                title="Table 3 — Inspector vs LLM prompt strategies",
            )
        )
    elif table == "table4":
        for name, result in run_table4(subset, engine=engine).items():
            print(format_crossval_table(result.as_rows(), title=f"Table 4 — {name}"))
            print()
    elif table == "table5":
        print(
            format_confusion_table(
                run_table5(subset, engine=engine),
                title="Table 5 — variable identification (pre-trained)",
            )
        )
    elif table == "table6":
        for name, result in run_table6(subset, engine=engine).items():
            print(format_crossval_table(result.as_rows(), title=f"Table 6 — {name}"))
            print()
    elif table == "summary":
        _print_summary()
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown command {table!r}")


def _build_engine(args: argparse.Namespace) -> ExecutionEngine:
    cache: Optional[ResponseCache] = None
    if args.cache_entries > 0:
        cache = ResponseCache(args.cache_entries, path=args.cache)
    return ExecutionEngine(jobs=args.jobs, cache=cache, batch_size=args.batch_size)


def main(argv: List[str] | None = None) -> int:
    """Entry point used by ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables of 'Data Race Detection Using Large Language Models'.",
    )
    parser.add_argument(
        "command",
        choices=["table2", "table3", "table4", "table5", "table6", "summary", "all"],
        help="which experiment to regenerate",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="engine parallelism: 1 = serial, N > 1 = thread pool (default: 1)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="JSON file to load/save the model-response cache (default: in-memory only)",
    )
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=65536,
        metavar="N",
        help="in-memory response-cache capacity; 0 disables caching (default: 65536)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=32,
        metavar="N",
        help="requests per engine chunk (default: 32)",
    )
    parser.add_argument(
        "--no-stats",
        action="store_true",
        help="suppress the [engine] stats line after table runs",
    )
    args = parser.parse_args(argv)
    if args.batch_size < 1:
        parser.error("--batch-size must be >= 1")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0 (0 and 1 both mean serial)")
    if args.cache_entries < 0:
        parser.error("--cache-entries must be >= 0 (0 disables caching)")
    if args.cache is not None and args.cache_entries == 0:
        parser.error("--cache has no effect with --cache-entries 0 (caching disabled)")
    engine = _build_engine(args)
    commands = (
        ("summary", "table2", "table3", "table4", "table5", "table6")
        if args.command == "all"
        else (args.command,)
    )
    for table in commands:
        before = engine.telemetry.snapshot()
        _run(table, engine)
        if table != "summary" and not args.no_stats:
            print(
                engine.telemetry.format_stats(
                    executor_name=engine.executor.name, since=before
                )
            )
        if args.command == "all":
            print()
    if engine.cache is not None and args.cache is not None:
        engine.cache.save()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
