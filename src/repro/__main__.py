"""Command-line entry point: regenerate the paper's tables from the terminal.

Usage::

    python -m repro table2            # GPT-3.5 BP1 vs BP2
    python -m repro table3            # Inspector + 4 LLMs x 3 prompts
    python -m repro table4            # basic fine-tuning cross-validation
    python -m repro table5            # variable identification (pre-trained)
    python -m repro table6            # advanced fine-tuning cross-validation
    python -m repro summary           # corpus + dataset statistics
    python -m repro all               # every table through ONE interleaved
                                      # engine run (the cross-table scheduler)

    python -m repro table3 --jobs 8             # thread pool (same results)
    python -m repro table3 --executor process   # shard across processes
    python -m repro all --executor async --jobs 16   # asyncio backend
    python -m repro all --executor async --max-inflight 256
                                      # async-native model I/O: chunk work
                                      # awaits on one event loop; concurrent
                                      # same-model calls coalesce into
                                      # batched wire calls (--no-coalesce,
                                      # --coalesce-window-ms to tune)
    python -m repro all --sequential            # one engine run per table
    python -m repro all --cache /tmp/repro-cache    # persist responses as
                                      # append-only JSONL segments; legacy
                                      # single-file JSON caches still load
    python -m repro all --dispatch ordered      # reference blocking-map path
    python -m repro all --no-lpt                # keep plan-order chunk dispatch
    python -m repro all --cache ./cache-dir --shared-cache
                                      # serve disk hits through the host-wide
                                      # mmap-backed shared segment store
    python -m repro all --cache ./c --cache-max-bytes 50000000 --cache-ttl 3600
                                      # size/TTL-tiered in-memory eviction
    python -m repro table3 --executor process --snapshot-transport file
                                      # pin the temp-file broadcast fallback
    python -m repro all --stream                 # bounded-memory streaming:
                                      # requests are planned and dispatched
                                      # in windows (peak RSS O(window), not
                                      # O(corpus)); identical results
    python -m repro all --stream --stream-window 512   # window size
    python -m repro table3 --cascade             # tiered detection cascade:
                                      # static analyzer, then a fast zoo
                                      # model, answer first; only low-
                                      # confidence or disagreeing verdicts
                                      # escalate to the requested LLM
    python -m repro table3 --cascade --cascade-tiers static,inspector,gpt-3.5-turbo
    python -m repro table3 --cascade --escalate-below 0.9   # stricter: more
                                      # records reach the expensive model
    python -m repro all --cascade --speculate    # cross-backend speculation:
                                      # straggler chunks race a cheaper
                                      # tier's model, first verdict wins
    python -m repro all --retries 3              # fault tolerance: failing
                                      # chunks back off and re-enter the
                                      # dispatcher; models that keep failing
                                      # trip per-model circuit breakers
    python -m repro all --retries 3 --journal ./run.journal
                                      # checkpoint completed chunks; an
                                      # interrupted run re-invoked with the
                                      # same journal resumes without new
                                      # model calls for finished work
    python -m repro cache stats --cache ./cache-dir     # segments, dead
                                      # ratio, promotions — no evaluation run
    python -m repro cache compact --cache ./cache-dir
    python -m repro analyze file.c               # static race analyzer:
                                      # structured DRD-* diagnostics with
                                      # line/col spans, text or --json
    python -m repro analyze --corpus --stats     # per-rule fire counts +
                                      # phase-partition telemetry
    python -m repro analyze --corpus --self-lint # CI gate: nonzero exit on
                                      # crashes or malformed diagnostics

``repro all`` plans every table first (requests + reducer), then feeds all
of them to :func:`repro.engine.scheduler.run_all_tables`, which interleaves
the mixed-model request batches into a single
:class:`~repro.engine.core.ExecutionEngine` run — model latency overlaps
across tables instead of the drivers running one after another.  Chunks
are dispatched in completion order by default (``--dispatch dynamic``) and
ordered longest-first by the cost model (``--lpt``); with ``--cache`` the
cost model persists as ``costmodel.json`` inside the cache directory, so
the next invocation schedules its *first* run with measured latencies.
Results are bit-identical to the sequential path and across every
dispatch/executor combination.  After the run the engine prints one stats
line (request count, cache hit rate, wall time) plus the slowest
(model, strategy) groups, unless ``--no-stats`` is given; per-table lines
appear under ``--sequential``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.engine import (
    DEFAULT_BREAKER_COOLDOWN_S,
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_CASCADE_TIERS,
    DEFAULT_ESCALATE_BELOW,
    DEFAULT_RETRY_BASE_MS,
    DEFAULT_STREAM_WINDOW,
    DISPATCH_MODES,
    CascadePolicy,
    CostModel,
    ExecutionEngine,
    ResponseCache,
    available_executors,
    run_all_tables,
)
from repro.eval.experiments import (
    default_subset,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)
from repro.eval.reporting import format_confusion_table, format_crossval_table

__all__ = ["main"]

_TABLE_TITLES = {
    "table2": "Table 2 — GPT-3.5-turbo, BP1 vs BP2",
    "table3": "Table 3 — Inspector vs LLM prompt strategies",
    "table4": "Table 4",
    "table5": "Table 5 — variable identification (pre-trained)",
    "table6": "Table 6",
}


def _print_summary() -> None:
    from repro.corpus import CorpusRegistry

    registry = CorpusRegistry.build()
    print(registry.summary())
    print()
    print(default_subset().summary())


def _print_result(table: str, result) -> None:
    """Render one table's result in the paper layout."""
    if table in ("table4", "table6"):
        for name, crossval in result.items():
            print(format_crossval_table(crossval.as_rows(), title=f"{_TABLE_TITLES[table]} — {name}"))
            print()
    else:
        print(format_confusion_table(result, title=_TABLE_TITLES[table]))


def _run(
    table: str,
    engine: ExecutionEngine,
    *,
    stream: bool = False,
    stream_window: Optional[int] = None,
) -> None:
    subset = default_subset()
    drivers = {
        "table2": run_table2,
        "table3": run_table3,
        "table4": run_table4,
        "table5": run_table5,
        "table6": run_table6,
    }
    if table == "summary":
        _print_summary()
    elif table in drivers:
        if stream:
            # Route the single table through its plan builder and the
            # streaming plan runner — same rows, O(window) residency.
            from repro.engine import collect_default_plans, run_plans_streaming

            plans = collect_default_plans(subset, tables=(table,))
            results = run_plans_streaming(plans, engine=engine, window=stream_window)
            _print_result(table, results[table])
        else:
            _print_result(table, drivers[table](subset, engine=engine))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown command {table!r}")


def _print_group_stats(engine: ExecutionEngine, top_k: int = 3) -> None:
    """The slowest (model, strategy) groups of the run, if any were recorded."""
    breakdown = engine.telemetry.format_group_stats(top_k)
    if breakdown:
        print(breakdown)


def _run_all(
    engine: ExecutionEngine,
    *,
    sequential: bool,
    stats: bool,
    stream: bool = False,
    stream_window: Optional[int] = None,
) -> None:
    """``repro all``: summary, then every table through the scheduler."""
    _print_summary()
    print()
    if sequential:
        for table in ("table2", "table3", "table4", "table5", "table6"):
            before = engine.telemetry.snapshot()
            _run(table, engine, stream=stream, stream_window=stream_window)
            if stats:
                print(engine.telemetry.format_stats(executor_name=engine.executor.name, since=before))
            print()
        if stats:
            _print_group_stats(engine)
        return
    before = engine.telemetry.snapshot()
    results = run_all_tables(
        default_subset(), engine=engine, stream=stream, stream_window=stream_window
    )
    for table, result in results.items():
        _print_result(table, result)
        print()
    if stats:
        print(engine.telemetry.format_stats(executor_name=engine.executor.name, since=before))
        _print_group_stats(engine)


def _build_engine(args: argparse.Namespace) -> ExecutionEngine:
    # Built (and validated) in main() before any engine exists.
    cascade_policy: Optional[CascadePolicy] = getattr(args, "cascade_policy", None)
    # The cost model persists beside the cache segments, so a later
    # invocation schedules its first run with this run's latencies.  It is
    # built before the cache because cost-aware eviction weighs cache
    # entries with the same model's estimates.
    cost_model = (
        CostModel(path=Path(args.cache) / "costmodel.json")
        if args.cache is not None
        else CostModel()
    )
    cache: Optional[ResponseCache] = None
    if args.cache_entries > 0:
        cache = ResponseCache(
            args.cache_entries,
            path=args.cache,
            cost_aware_eviction=args.cost_aware_eviction,
            cost_model=cost_model,
            max_bytes=args.cache_max_bytes,
            ttl_s=args.cache_ttl,
            shared_read=args.shared_cache,
        )
    jobs = args.jobs
    if jobs is None:
        # --executor without --jobs: parallel backends get a sensible
        # default width instead of a one-worker pool.
        jobs = 4 if args.executor not in (None, "serial") else 1
    return ExecutionEngine(
        jobs=jobs,
        executor_kind=args.executor,
        cache=cache,
        batch_size=args.batch_size,
        dispatch=args.dispatch,
        lpt=args.lpt,
        adaptive_batching=args.adaptive_batching,
        cost_model=cost_model,
        max_inflight=args.max_inflight,
        coalesce=args.coalesce,
        coalesce_window_s=args.coalesce_window_ms / 1000.0,
        coalesce_max_batch=args.coalesce_max_batch,
        speculate=args.speculate,
        speculate_after=args.speculate_after,
        deadline=args.deadline,
        snapshot_transport=args.snapshot_transport,
        stream_window=args.stream_window,
        cascade=cascade_policy,
        speculate_fallback=(
            cascade_policy.fallback_model
            if cascade_policy is not None and args.speculate
            else None
        ),
        retries=args.retries,
        retry_base_ms=args.retry_base_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        journal=args.journal,
    )


def _run_cache_command(args: argparse.Namespace) -> int:
    """``repro cache stats|compact``: inspect or fold a store, no evaluation."""
    from repro.engine import SharedSegmentStore

    path = Path(args.cache)
    if args.subcommand == "stats":
        if path.is_file():
            print(f"[cache] {path}: legacy single-file cache (format v1); "
                  "run any cached command to migrate it to segments")
            return 0
        stats = SharedSegmentStore(path).stats()
        print(f"[cache] {path}")
        print(f"[cache]   segments={stats['segments']}")
        print(f"[cache]   live_entries={stats['live_entries']}")
        print(f"[cache]   entry_lines={stats['entry_lines']} (dead={stats['dead_entries']})")
        print(f"[cache]   dead_ratio={stats['dead_ratio'] * 100:.1f}%")
        print(f"[cache]   total_bytes={stats['total_bytes']}")
        print(
            f"[cache]   scan: rescanned={stats['segments_rescanned']}"
            f" reused={stats['segments_reused']}"
        )
        print(f"[cache]   promotions={stats['promotions']}")
        return 0
    # compact: fold every live entry into a minimal set of fresh segments.
    before = SharedSegmentStore(path).stats() if path.is_dir() else None
    cache = ResponseCache(path=args.cache)
    if cache.compact() is None:
        print(f"[cache] {path}: nothing on disk to compact")
        return 0
    after = SharedSegmentStore(path).stats()
    if before is not None:
        print(
            f"[cache] compacted {path}: segments {before['segments']} -> "
            f"{after['segments']}, entry_lines {before['entry_lines']} -> "
            f"{after['entry_lines']}, bytes {before['total_bytes']} -> "
            f"{after['total_bytes']}"
        )
    return 0


def main(argv: List[str] | None = None) -> int:
    """Entry point used by ``python -m repro``."""
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "analyze":
        # The static-analyzer CLI has its own flag set (--json, --stats,
        # --self-lint, --corpus); delegate before the table parser sees it.
        from repro.analysis.cli import main as analyze_main

        return analyze_main(raw[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables of 'Data Race Detection Using Large Language Models'.",
        epilog=(
            "examples: 'repro all --executor async --jobs 16' runs every table "
            "through one interleaved engine run on the asyncio backend; "
            "'repro table3 --executor process' shards CPU-bound work across "
            "processes; 'repro all --cache ./cache-dir' persists responses as "
            "append-only JSONL segments plus the scheduling cost model; "
            "'repro all --dispatch ordered --no-lpt --no-adaptive-batching' "
            "selects the reference blocking-map, plan-order, static-chunk "
            "path (identical results, more straggler wall time)."
        ),
    )
    parser.add_argument(
        "command",
        choices=["table2", "table3", "table4", "table5", "table6", "summary", "all", "cache"],
        help=(
            "which experiment to regenerate ('all' interleaves every table "
            "into one engine run); 'cache' inspects/maintains a --cache "
            "store without running an evaluation; see also 'repro analyze "
            "FILE...' for the static race analyzer CLI"
        ),
    )
    parser.add_argument(
        "subcommand",
        nargs="?",
        default=None,
        help=(
            "for 'cache': stats (segment count, dead-entry ratio, bytes) "
            "or compact (fold the store into minimal fresh segments)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "executor width: 1 = serial, N > 1 = parallel (default: 1, "
            "or 4 when a parallel --executor is selected)"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=list(available_executors()),
        default=None,
        help=(
            "executor backend: serial (reference), thread (overlaps model "
            "latency), process (shards CPU-bound work across processes), "
            "async (asyncio event loop).  Results are identical across "
            "backends (default: derived from --jobs)"
        ),
    )
    parser.add_argument(
        "--dispatch",
        choices=list(DISPATCH_MODES),
        default="dynamic",
        help=(
            "chunk dispatch mode: dynamic (default) merges chunks in "
            "completion order so no worker waits behind a straggler at the "
            "merge barrier; ordered is the reference blocking-map path.  "
            "Results are identical either way"
        ),
    )
    parser.add_argument(
        "--lpt",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "dispatch chunks longest-processing-time first using the cost "
            "model's observed per-(model, strategy) latencies (plan order "
            "until latencies exist; --no-lpt keeps plan order always)"
        ),
    )
    parser.add_argument(
        "--adaptive-batching",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "let the cost model scale chunk sizes per (model, strategy) "
            "group around --batch-size (slow groups split finer, fast ones "
            "batch coarser); --no-adaptive-batching pins every chunk to "
            "exactly --batch-size"
        ),
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help=(
            "async backend: maximum concurrently in-flight chunk coroutines "
            "on the event loop — raise far beyond any sensible --jobs to "
            "saturate a latency-bound remote API (default: --jobs)"
        ),
    )
    parser.add_argument(
        "--coalesce",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "async backend: merge concurrent same-(model, strategy) calls "
            "into single generate_batch_async wire calls (identical "
            "results; --no-coalesce issues one call per chunk)"
        ),
    )
    parser.add_argument(
        "--coalesce-window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="how long the coalescer holds a batch open for joiners (default: 2.0)",
    )
    parser.add_argument(
        "--coalesce-max-batch",
        type=int,
        default=128,
        metavar="N",
        help="coalescer flushes early at this many accumulated prompts (default: 128)",
    )
    parser.add_argument(
        "--speculate",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "tail-latency control: race a duplicate of any chunk running "
            "past the cost model's p95 estimate into idle executor "
            "capacity — first completion wins, results are identical "
            "(default: off)"
        ),
    )
    parser.add_argument(
        "--speculate-after",
        type=float,
        default=1.5,
        metavar="X",
        help=(
            "launch a duplicate once a chunk's elapsed time exceeds X times "
            "its p95 cost-model estimate (default: 1.5; smaller races "
            "sooner, larger duplicates less work)"
        ),
    )
    parser.add_argument(
        "--cascade",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "tiered detection cascade: cheap tiers (--cascade-tiers) answer "
            "each record first and only low-confidence or disagreeing "
            "verdicts escalate to the requested model — with --speculate, "
            "straggler chunks additionally race a cheaper tier's model "
            "(cross-backend speculation).  --no-cascade is the reference "
            "single-model path (default: off)"
        ),
    )
    parser.add_argument(
        "--cascade-tiers",
        default=None,
        metavar="SPEC",
        help=(
            "comma-separated cheap-tier ladder, cheapest first: 'static', "
            "'inspector' (alias 'dynamic'), or any zoo model name "
            f"(default: {DEFAULT_CASCADE_TIERS})"
        ),
    )
    parser.add_argument(
        "--escalate-below",
        type=float,
        default=None,
        metavar="CONF",
        help=(
            "confidence a cheap-tier verdict must reach to resolve a record "
            "without escalating; 1.0 escalates everything (identical to the "
            f"requested model alone) (default: {DEFAULT_ESCALATE_BELOW})"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "retry each failing chunk up to N times with exponential "
            "backoff and deterministic jitter before surfacing explicit "
            "failed results; retried work re-enters the dispatcher instead "
            "of blocking a worker, and per-model circuit breakers route "
            "around models that keep failing (default: 0 — fail fast)"
        ),
    )
    parser.add_argument(
        "--retry-base-ms",
        type=float,
        default=DEFAULT_RETRY_BASE_MS,
        metavar="MS",
        help=(
            "base backoff before the first retry; attempt k waits "
            f"base*2^k ms, jittered (default: {DEFAULT_RETRY_BASE_MS:g})"
        ),
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=DEFAULT_BREAKER_THRESHOLD,
        metavar="N",
        help=(
            "consecutive failures that open a model's circuit breaker; "
            "while open, its chunks reroute to the cascade's next-cheaper "
            "tier (with --cascade) or fail fast (default: "
            f"{DEFAULT_BREAKER_THRESHOLD})"
        ),
    )
    parser.add_argument(
        "--breaker-cooldown-s",
        type=float,
        default=DEFAULT_BREAKER_COOLDOWN_S,
        metavar="SECONDS",
        help=(
            "how long an open breaker waits before letting one half-open "
            f"probe through (default: {DEFAULT_BREAKER_COOLDOWN_S:g})"
        ),
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "append-only JSONL run journal of completed chunk outcomes; "
            "an interrupted run re-invoked with the same journal resumes "
            "by replaying finished work without new model calls "
            "(default: no journal)"
        ),
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-run latency budget: when the cost model predicts the "
            "makespan exceeds it, shed the lowest-value chunks (highest "
            "seconds-per-request) — shed requests come back as explicit "
            "skipped results, and telemetry reports predicted vs actual "
            "makespan (default: no budget)"
        ),
    )
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="with 'all': run one engine run per table instead of the interleaved scheduler",
    )
    parser.add_argument(
        "--stream",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "bounded-memory streaming: build, plan and dispatch requests in "
            "windows of --stream-window instead of materialising the whole "
            "workload — peak RSS is O(window), results are identical "
            "(default: off)"
        ),
    )
    parser.add_argument(
        "--stream-window",
        type=int,
        default=None,
        metavar="N",
        help=(
            "requests resident at once under --stream (default: "
            f"{DEFAULT_STREAM_WINDOW})"
        ),
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help=(
            "on-disk response cache: a directory of append-only JSONL "
            "segments, written incrementally and atomically (legacy "
            "single-file JSON caches load too; default: in-memory only)"
        ),
    )
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=65536,
        metavar="N",
        help="in-memory response-cache capacity; 0 disables caching (default: 65536)",
    )
    parser.add_argument(
        "--cost-aware-eviction",
        action="store_true",
        help=(
            "weight cache eviction by the cost model's per-model latency "
            "estimates: the cheapest-to-regenerate entries go first, slow "
            "models' responses survive longest"
        ),
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "byte budget for the in-memory cache tier: eviction runs until "
            "entries fit, preferring the most bytes reclaimed per cost-model "
            "second-to-regenerate (composes with --cost-aware-eviction; "
            "default: unbounded)"
        ),
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "maximum in-memory age of a cache entry; expired entries are "
            "dropped lazily on lookup and evicted first under pressure "
            "(the on-disk store is unaffected; default: no expiry)"
        ),
    )
    parser.add_argument(
        "--shared-cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "serve --cache disk entries through the host-wide mmap-backed "
            "shared segment store instead of loading a private in-memory "
            "copy — concurrent runs on one host share one physical copy "
            "(results identical; default: private load)"
        ),
    )
    parser.add_argument(
        "--snapshot-transport",
        choices=["shm", "file"],
        default="shm",
        help=(
            "how the warm cache reaches process-executor workers: shm "
            "(default) broadcasts one shared-memory block workers attach "
            "in place, falling back to a temp file where unavailable; "
            "file pins the pickle-temp-file path (one private "
            "deserialisation per worker)"
        ),
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=32,
        metavar="N",
        help="requests per engine chunk (default: 32)",
    )
    parser.add_argument(
        "--no-stats",
        action="store_true",
        help="suppress the [engine] stats line after table runs",
    )
    args = parser.parse_args(argv)
    if args.batch_size < 1:
        parser.error("--batch-size must be >= 1")
    if args.jobs is not None and args.jobs < 0:
        parser.error("--jobs must be >= 0 (0 and 1 both mean serial)")
    if args.cache_entries < 0:
        parser.error("--cache-entries must be >= 0 (0 disables caching)")
    if args.max_inflight is not None and args.max_inflight < 1:
        parser.error("--max-inflight must be >= 1")
    if args.coalesce_window_ms < 0:
        parser.error("--coalesce-window-ms must be >= 0")
    if args.coalesce_max_batch < 1:
        parser.error("--coalesce-max-batch must be >= 1")
    if args.speculate_after <= 0:
        parser.error("--speculate-after must be > 0")
    if args.deadline is not None and args.deadline <= 0:
        parser.error("--deadline must be > 0 seconds")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.retry_base_ms <= 0:
        parser.error("--retry-base-ms must be > 0")
    if args.breaker_threshold < 1:
        parser.error("--breaker-threshold must be >= 1")
    if args.breaker_cooldown_s < 0:
        parser.error("--breaker-cooldown-s must be >= 0")
    if not args.cascade:
        if args.cascade_tiers is not None:
            parser.error("--cascade-tiers requires --cascade")
        if args.escalate_below is not None:
            parser.error("--escalate-below requires --cascade")
    if args.escalate_below is not None and not 0.0 <= args.escalate_below <= 1.0:
        parser.error("--escalate-below must be between 0 and 1")
    args.cascade_policy = None
    if args.cascade:
        try:
            args.cascade_policy = CascadePolicy.from_spec(
                args.cascade_tiers if args.cascade_tiers is not None else DEFAULT_CASCADE_TIERS,
                escalate_below=(
                    args.escalate_below
                    if args.escalate_below is not None
                    else DEFAULT_ESCALATE_BELOW
                ),
            )
        except (KeyError, ValueError) as exc:
            parser.error(f"--cascade-tiers: {exc}")
    if args.cache is not None and args.cache_entries == 0:
        parser.error("--cache has no effect with --cache-entries 0 (caching disabled)")
    if args.cost_aware_eviction and args.cache_entries == 0:
        parser.error(
            "--cost-aware-eviction has no effect with --cache-entries 0 (caching disabled)"
        )
    if args.cache_max_bytes is not None:
        if args.cache_max_bytes <= 0:
            parser.error("--cache-max-bytes must be > 0")
        if args.cache_entries == 0:
            parser.error(
                "--cache-max-bytes has no effect with --cache-entries 0 (caching disabled)"
            )
    if args.cache_ttl is not None:
        if args.cache_ttl <= 0:
            parser.error("--cache-ttl must be > 0 seconds")
        if args.cache_entries == 0:
            parser.error(
                "--cache-ttl has no effect with --cache-entries 0 (caching disabled)"
            )
    if args.shared_cache and args.cache is None:
        parser.error("--shared-cache requires --cache PATH (the store to share)")
    if args.command == "cache":
        if args.subcommand not in ("stats", "compact"):
            parser.error(
                "the 'cache' command takes a subcommand: stats or compact"
            )
        if args.cache is None:
            parser.error("'repro cache' requires --cache PATH (the store to inspect)")
        return _run_cache_command(args)
    if args.subcommand is not None:
        parser.error(
            f"unexpected argument {args.subcommand!r}: only the 'cache' command takes a subcommand"
        )
    if args.sequential and args.command != "all":
        parser.error("--sequential only applies to the 'all' command")
    if args.stream_window is not None:
        if args.stream_window < 1:
            parser.error("--stream-window must be >= 1")
        if not args.stream:
            parser.error("--stream-window requires --stream")
    if args.stream and args.command == "summary":
        parser.error("--stream has no effect on the 'summary' command")
    engine = _build_engine(args)
    try:
        if args.command == "all":
            _run_all(
                engine,
                sequential=args.sequential,
                stats=not args.no_stats,
                stream=args.stream,
                stream_window=args.stream_window,
            )
        else:
            before = engine.telemetry.snapshot()
            _run(args.command, engine, stream=args.stream, stream_window=args.stream_window)
            if args.command != "summary" and not args.no_stats:
                print(
                    engine.telemetry.format_stats(
                        executor_name=engine.executor.name, since=before
                    )
                )
                _print_group_stats(engine)
        if engine.cache is not None and args.cache is not None:
            engine.cache.save()
            engine.cost_model.save()
    finally:
        engine.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
