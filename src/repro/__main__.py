"""Command-line entry point: regenerate the paper's tables from the terminal.

Usage::

    python -m repro table2            # GPT-3.5 BP1 vs BP2
    python -m repro table3            # Inspector + 4 LLMs x 3 prompts
    python -m repro table4            # basic fine-tuning cross-validation
    python -m repro table5            # variable identification (pre-trained)
    python -m repro table6            # advanced fine-tuning cross-validation
    python -m repro summary           # corpus + dataset statistics
    python -m repro all               # everything above in sequence
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.eval.experiments import (
    default_subset,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)
from repro.eval.reporting import format_confusion_table, format_crossval_table

__all__ = ["main"]


def _print_summary() -> None:
    from repro.corpus import CorpusRegistry

    registry = CorpusRegistry.build()
    print(registry.summary())
    print()
    print(default_subset().summary())


def _run(table: str) -> None:
    subset = default_subset()
    if table == "table2":
        print(format_confusion_table(run_table2(subset), title="Table 2 — GPT-3.5-turbo, BP1 vs BP2"))
    elif table == "table3":
        print(
            format_confusion_table(
                run_table3(subset), title="Table 3 — Inspector vs LLM prompt strategies"
            )
        )
    elif table == "table4":
        for name, result in run_table4(subset).items():
            print(format_crossval_table(result.as_rows(), title=f"Table 4 — {name}"))
            print()
    elif table == "table5":
        print(
            format_confusion_table(
                run_table5(subset), title="Table 5 — variable identification (pre-trained)"
            )
        )
    elif table == "table6":
        for name, result in run_table6(subset).items():
            print(format_crossval_table(result.as_rows(), title=f"Table 6 — {name}"))
            print()
    elif table == "summary":
        _print_summary()
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown command {table!r}")


def main(argv: List[str] | None = None) -> int:
    """Entry point used by ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables of 'Data Race Detection Using Large Language Models'.",
    )
    parser.add_argument(
        "command",
        choices=["table2", "table3", "table4", "table5", "table6", "summary", "all"],
        help="which experiment to regenerate",
    )
    args = parser.parse_args(argv)
    if args.command == "all":
        for table in ("summary", "table2", "table3", "table4", "table5", "table6"):
            _run(table)
            print()
    else:
        _run(args.command)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
