"""Sequential prompt chains (the AP2 chain-of-thought strategy).

AP2 issues two chat calls: the first asks for a data-dependence analysis of
the code, the second feeds that analysis back together with the data-race
definition and asks for the yes/no verdict (paper Listing 7; the original
implementation used LangChain's ``SequentialChain``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Awaitable, Callable, List, Sequence

from repro.prompting.strategy import PromptStrategy
from repro.prompting.templates import (
    AP2_CHAIN1_TEMPLATE,
    AP2_CHAIN2_TEMPLATE,
    render_prompt,
)

__all__ = [
    "ChainStep",
    "SequentialChain",
    "run_strategy",
    "run_strategy_batch",
    "run_strategy_batch_async",
]

#: A language model is anything that maps a prompt string to a response string.
GenerateFn = Callable[[str], str]

#: Batched form: a list of prompts in, the list of responses out (same order).
GenerateBatchFn = Callable[[Sequence[str]], List[str]]

#: Awaitable batched form (the engine's async-native dispatch path).
GenerateBatchAsyncFn = Callable[[Sequence[str]], Awaitable[List[str]]]


@dataclass(frozen=True)
class ChainStep:
    """One step of a sequential chain: a prompt built from prior outputs."""

    name: str
    build_prompt: Callable[[dict], str]


class SequentialChain:
    """Minimal LangChain-style sequential chain.

    Each step receives the accumulated context dictionary (the original
    inputs plus every earlier step's output under its step name) and produces
    a prompt; the model's response is stored back under the step's name.
    """

    def __init__(self, steps: Sequence[ChainStep]) -> None:
        if not steps:
            raise ValueError("a chain needs at least one step")
        self.steps = list(steps)

    def run(self, generate: GenerateFn, inputs: dict) -> dict:
        """Run every step in order, returning the final context dictionary."""
        context = dict(inputs)
        for step in self.steps:
            prompt = step.build_prompt(context)
            context[step.name] = generate(prompt)
        return context


def ap2_chain() -> SequentialChain:
    """The two-step AP2 chain (dependence analysis, then detection)."""
    return SequentialChain(
        [
            ChainStep(
                name="analysis",
                build_prompt=lambda ctx: AP2_CHAIN1_TEMPLATE.format(code=ctx["code"]),
            ),
            ChainStep(
                name="verdict",
                build_prompt=lambda ctx: AP2_CHAIN2_TEMPLATE.format(
                    code=ctx["code"], analysis=ctx["analysis"]
                ),
            ),
        ]
    )


def run_strategy(generate: GenerateFn, strategy: PromptStrategy, code: str) -> str:
    """Run a prompt strategy end to end and return the final response text."""
    if strategy is PromptStrategy.AP2:
        context = ap2_chain().run(generate, {"code": code})
        return context["verdict"]
    prompt = render_prompt(strategy, code)
    return generate(prompt)


def _ap2_phase1_prompts(codes: Sequence[str]) -> List[str]:
    """The AP2 chain's dependence-analysis prompts, one per snippet."""
    return [AP2_CHAIN1_TEMPLATE.format(code=code) for code in codes]


def _ap2_phase2_prompts(codes: Sequence[str], analyses: Sequence[str]) -> List[str]:
    """The AP2 chain's verdict prompts, embedding each snippet's analysis."""
    return [
        AP2_CHAIN2_TEMPLATE.format(code=code, analysis=analysis)
        for code, analysis in zip(codes, analyses)
    ]


def _plain_prompts(strategy: PromptStrategy, codes: Sequence[str]) -> List[str]:
    """Single-phase strategies: one rendered prompt per snippet."""
    return [render_prompt(strategy, code) for code in codes]


def run_strategy_batch(
    generate_batch: GenerateBatchFn, strategy: PromptStrategy, codes: Sequence[str]
) -> List[str]:
    """Run a prompt strategy over many snippets with batched model calls.

    Prompt construction is identical to :func:`run_strategy`, so for a
    deterministic model the i-th response equals
    ``run_strategy(generate, strategy, codes[i])``.  The AP2 chain becomes
    two batched phases: all dependence-analysis prompts first, then all
    verdict prompts built from the per-snippet analyses.
    """
    codes = list(codes)
    if not codes:
        return []
    if strategy is PromptStrategy.AP2:
        analyses = generate_batch(_ap2_phase1_prompts(codes))
        return generate_batch(_ap2_phase2_prompts(codes, analyses))
    return generate_batch(_plain_prompts(strategy, codes))


async def run_strategy_batch_async(
    generate_batch: GenerateBatchAsyncFn, strategy: PromptStrategy, codes: Sequence[str]
) -> List[str]:
    """Awaitable mirror of :func:`run_strategy_batch`.

    Both variants build their prompt lists through the same helpers, so
    for a deterministic model the responses are byte-identical — the
    engine's async-native path leans on this for its
    bit-identical-results guarantee.  The AP2 chain stays two
    *sequential* batched phases (phase 2's prompts embed phase 1's
    responses); concurrency lives inside each awaited batch call.
    """
    codes = list(codes)
    if not codes:
        return []
    if strategy is PromptStrategy.AP2:
        analyses = await generate_batch(_ap2_phase1_prompts(codes))
        return await generate_batch(_ap2_phase2_prompts(codes, analyses))
    return await generate_batch(_plain_prompts(strategy, codes))
