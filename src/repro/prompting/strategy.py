"""Prompt strategy enumeration."""

from __future__ import annotations

import enum

__all__ = ["PromptStrategy"]


class PromptStrategy(str, enum.Enum):
    """The prompt strategies evaluated in the paper.

    ``BP2`` is only used in the preliminary Table 2 comparison; Table 3 uses
    ``BP1``, ``AP1`` and ``AP2``.  ``ADVANCED`` denotes the variable-pair
    identification request used for Table 5 (the Listing 9 style output
    format without fine-tuning).
    """

    BP1 = "BP1"
    BP2 = "BP2"
    AP1 = "AP1"
    AP2 = "AP2"
    ADVANCED = "ADVANCED"

    @property
    def is_chained(self) -> bool:
        """AP2 requires two sequential model calls."""
        return self is PromptStrategy.AP2

    @property
    def requests_pairs(self) -> bool:
        """Whether the strategy asks the model for variable pairs."""
        return self in (PromptStrategy.BP2, PromptStrategy.ADVANCED)
