"""Prompt templates (paper Listings 4-7 and the advanced variable-pair prompt)."""

from __future__ import annotations

from repro.prompting.strategy import PromptStrategy

__all__ = [
    "BP1_TEMPLATE",
    "BP2_TEMPLATE",
    "AP1_TEMPLATE",
    "AP2_CHAIN1_TEMPLATE",
    "AP2_CHAIN2_TEMPLATE",
    "ADVANCED_TEMPLATE",
    "render_prompt",
]

#: Listing 4 — Basic Prompt 1: succinct detection.
BP1_TEMPLATE = """You are an expert in High-Performance Computing. Examine the code presented to you and ascertain if it contains any data races.
Begin with a concise response: either 'yes' for the presence of a data race or 'no' if absent.

{code}
"""

#: Listing 5 — Basic Prompt 2: detection plus JSON variable pairs (multi-task).
BP2_TEMPLATE = """You are an expert in High-Performance Computing. Examine the code presented to you and ascertain if it contains any data races.
Begin with a concise response: either 'yes' for the presence of a data race or 'no' if absent.
detail each occurrence of a data race by specifying the variable pairs involved, using the JSON format outlined below:
{{
"name": Names of each pair of variables involved in a data race.
"line": line numbers of the paired variables within the code.
"col": column number of the paird variables with in their line.
"operation_types": Corresponding operations, 'W' for write operation and 'R' for read operation.
}}

{code}
"""

#: Listing 6 — Advanced Prompt 1: adds the definition and dependence analysis.
AP1_TEMPLATE = """You are an expert in High-Performance Computing (HPC). Examine the provided code to identify any data races based on data dependence analysis.
For clarity, a data race occurs when two or more threads access the same memory location simultaneously in a conflicting manner, without sufficient synchronization, with at least one of these accesses involving a write operation. It's crucial to analyze data dependence before determining potential data races.
Begin with a concise response: either 'yes' for the presence of a data race or 'no' if absent.

{code}
"""

#: Listing 7, chain 1 — dependence analysis step of the chain-of-thought prompt.
AP2_CHAIN1_TEMPLATE = """You are an expert in High-Performance Computing (HPC). Analyze data dependence in the given code.

{code}
"""

#: Listing 7, chain 2 — detection step consuming chain 1's output.
AP2_CHAIN2_TEMPLATE = """A data race occurs when two or more threads access the same memory location simultaneously in a conflicting manner, without sufficient synchronization, with at least one of these accesses involving a write operation. Identify any data races based on the given data dependence information.
Begin with a concise response: either 'yes' for the presence of a data race or 'no' if absent.

Data dependence analysis:
{analysis}

{code}
"""

#: Advanced variable-pair identification prompt (pre-fine-tuning, Table 5);
#: mirrors the Listing 9 output schema.
ADVANCED_TEMPLATE = """You are an expert in High-Performance Computing. Examine the code presented to you and ascertain if it contains any data races.
If a data race is present, detail each occurrence by specifying the variable pairs involved using the JSON format outlined below:
{{
"variable_names": Names of each pair of variables involved in a data race.
"variable_locations": line numbers of the paired variables within the code.
"operation_types": Corresponding operations, either 'write' or 'read'.
}}

{code}
"""


def render_prompt(strategy: PromptStrategy, code: str) -> str:
    """Render the (first) prompt of a strategy for a given code snippet.

    For AP2 this returns the chain-1 prompt; the chain runner builds the
    second prompt from the first response.
    """
    if strategy is PromptStrategy.BP1:
        return BP1_TEMPLATE.format(code=code)
    if strategy is PromptStrategy.BP2:
        return BP2_TEMPLATE.format(code=code)
    if strategy is PromptStrategy.AP1:
        return AP1_TEMPLATE.format(code=code)
    if strategy is PromptStrategy.AP2:
        return AP2_CHAIN1_TEMPLATE.format(code=code)
    if strategy is PromptStrategy.ADVANCED:
        return ADVANCED_TEMPLATE.format(code=code)
    raise ValueError(f"unknown strategy {strategy!r}")
