"""Prompt engineering strategies for data race detection (paper §3.3).

The paper evaluates four prompt strategies:

* **BP1** (Listing 4) — succinct yes/no detection prompt;
* **BP2** (Listing 5) — multi-task prompt asking for yes/no plus a JSON
  description of the variable pairs involved;
* **AP1** (Listing 6) — BP1 plus the data-race definition and an instruction
  to perform data-dependence analysis first;
* **AP2** (Listing 7) — chain-of-thought: a dependence-analysis prompt whose
  output feeds a second detection prompt (two chained calls).

This package provides the templates, the sequential chain used by AP2, the
response parsers (yes/no extraction and JSON/regex variable-pair parsing) and
the :class:`PromptStrategy` dispatcher the experiments use.
"""

from repro.prompting.templates import (
    AP1_TEMPLATE,
    AP2_CHAIN1_TEMPLATE,
    AP2_CHAIN2_TEMPLATE,
    BP1_TEMPLATE,
    BP2_TEMPLATE,
    render_prompt,
)
from repro.prompting.strategy import PromptStrategy
from repro.prompting.chains import SequentialChain, run_strategy
from repro.prompting.parsing import ParsedPairs, parse_pairs_response, parse_yes_no

__all__ = [
    "BP1_TEMPLATE",
    "BP2_TEMPLATE",
    "AP1_TEMPLATE",
    "AP2_CHAIN1_TEMPLATE",
    "AP2_CHAIN2_TEMPLATE",
    "render_prompt",
    "PromptStrategy",
    "SequentialChain",
    "run_strategy",
    "ParsedPairs",
    "parse_yes_no",
    "parse_pairs_response",
]
