"""Response parsing: yes/no extraction and variable-pair extraction.

The paper notes (§4.5) that not every model keeps to the requested output
format, which forces regular-expression fallbacks.  The parsers here follow
that structure: JSON first, regex second, and a conservative default when
neither works.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["ParsedPairs", "parse_yes_no", "parse_pairs_response"]

_YES_RE = re.compile(r"\byes\b", re.IGNORECASE)
_NO_RE = re.compile(r"\bno\b", re.IGNORECASE)
_JSON_BLOCK_RE = re.compile(r"\{.*\}", re.DOTALL)
_PAIR_FALLBACK_RE = re.compile(
    r"variable\s*'?(?P<var>[A-Za-z_][\w\[\]\+\-\* %]*)'?\s*(?:at|on)\s*line\s*(?P<line>\d+)",
    re.IGNORECASE,
)


def parse_yes_no(text: str) -> Optional[bool]:
    """Extract the binary detection verdict from a model response.

    The instructions ask the model to *begin* with yes/no, so the first
    occurrence wins; when only one of the two words appears anywhere, that
    one is used; when neither appears the response is unusable (``None``).
    """
    if not text:
        return None
    yes_match = _YES_RE.search(text)
    no_match = _NO_RE.search(text)
    if yes_match and no_match:
        return yes_match.start() < no_match.start()
    if yes_match:
        return True
    if no_match:
        return False
    return None


@dataclass
class ParsedPairs:
    """Structured result of parsing a variable-pair response."""

    race: Optional[bool]
    names: List[Tuple[str, str]] = field(default_factory=list)
    lines: List[Tuple[int, int]] = field(default_factory=list)
    operations: List[Tuple[str, str]] = field(default_factory=list)
    used_fallback: bool = False

    @property
    def has_pairs(self) -> bool:
        return bool(self.names)


def _normalise_op(op: str) -> str:
    op = op.strip().lower()
    if op in ("w", "write"):
        return "W"
    if op in ("r", "read"):
        return "R"
    return op.upper()[:1] or "?"


def _pairs_from_json(payload: dict) -> Optional[ParsedPairs]:
    name_key = next((k for k in ("variable_names", "name", "names") if k in payload), None)
    line_key = next(
        (k for k in ("variable_locations", "line", "lines", "locations") if k in payload), None
    )
    op_key = next((k for k in ("operation_types", "operation", "operations") if k in payload), None)
    if name_key is None:
        return None
    names = payload.get(name_key) or []
    lines = payload.get(line_key) or [] if line_key else []
    ops = payload.get(op_key) or [] if op_key else []
    if len(names) < 2:
        return None
    race_flag = payload.get("data_race")
    parsed = ParsedPairs(race=bool(race_flag) if race_flag is not None else True)
    parsed.names.append((str(names[0]), str(names[1])))
    if len(lines) >= 2:
        try:
            parsed.lines.append((int(lines[0]), int(lines[1])))
        except (TypeError, ValueError):
            pass
    if len(ops) >= 2:
        parsed.operations.append((_normalise_op(str(ops[0])), _normalise_op(str(ops[1]))))
    return parsed


def parse_pairs_response(text: str) -> ParsedPairs:
    """Parse a response that was asked to include variable pairs.

    Tries, in order: a JSON object embedded in the response; a regular
    expression over natural-language phrasing ("the variable 'x' at line 9");
    and finally falls back to just the yes/no verdict with no pairs.
    """
    verdict = parse_yes_no(text)
    match = _JSON_BLOCK_RE.search(text or "")
    if match:
        try:
            payload = json.loads(match.group(0))
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict):
            parsed = _pairs_from_json(payload)
            if parsed is not None:
                if parsed.race is None:
                    parsed.race = verdict
                return parsed
        if isinstance(payload, list) and payload and isinstance(payload[0], dict):
            parsed = _pairs_from_json(payload[0])
            if parsed is not None:
                if parsed.race is None:
                    parsed.race = verdict
                return parsed

    fallback_hits = _PAIR_FALLBACK_RE.findall(text or "")
    if len(fallback_hits) >= 2:
        (var_a, line_a), (var_b, line_b) = fallback_hits[0], fallback_hits[1]
        parsed = ParsedPairs(race=True if verdict is None else verdict, used_fallback=True)
        parsed.names.append((var_a.strip(), var_b.strip()))
        try:
            parsed.lines.append((int(line_a), int(line_b)))
        except ValueError:
            pass
        return parsed

    return ParsedPairs(race=verdict, used_fallback=True)
