"""Affine subscript dependence tests.

The static race detector needs to know whether two subscripted accesses to
the same array can touch the same element in *different* iterations of the
parallelized loop.  For the affine single-index subscripts the corpus uses
(``i``, ``i+1``, ``i-2``, ``2*i``, ``2*i+1``, ``i % 10``, ``idx[i]`` ...),
this module provides:

* :func:`normalize_subscript` — parse a subscript string into the affine form
  ``coeff * loopvar + offset`` when possible (:class:`SubscriptForm`);
* :func:`dependence_distance` — the constant iteration distance between two
  affine subscripts, when defined (a GCD-style exact test for equal
  coefficients);
* :func:`may_overlap` — the conservative decision the detector uses: can the
  two subscripts refer to the same element from different iterations?
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "SubscriptForm",
    "normalize_subscript",
    "dependence_distance",
    "may_overlap",
    "value_interval",
    "intervals_disjoint",
]


@dataclass(frozen=True)
class SubscriptForm:
    """Affine form ``coeff * variable + offset`` of a subscript expression.

    ``variable`` is ``None`` for constant subscripts.  ``is_affine`` is False
    when the subscript could not be reduced to this form (indirect accesses
    like ``idx[i]``, modulus folds, multi-variable expressions); such
    subscripts must be treated conservatively.
    """

    text: str
    variable: Optional[str] = None
    coeff: int = 0
    offset: int = 0
    is_affine: bool = True

    @property
    def is_constant(self) -> bool:
        return self.is_affine and self.variable is None


_TOKEN_RE = re.compile(r"\s+")


def _try_int(text: str) -> Optional[int]:
    try:
        return int(text)
    except ValueError:
        return None


def normalize_subscript(text: str, loop_variables: tuple = ()) -> SubscriptForm:
    """Parse a subscript string into affine form when possible.

    Handles the shapes ``c``, ``v``, ``v+c``, ``v-c``, ``c*v``, ``c*v+d``,
    ``c*v-d`` and their whitespace variants, where ``v`` is an identifier and
    ``c``/``d`` integer literals.  Anything else (nested subscripts, modulus,
    division, two variables) is flagged ``is_affine=False``.
    """
    stripped = _TOKEN_RE.sub("", text)
    if not stripped:
        return SubscriptForm(text=text, is_affine=False)

    # Multi-dimensional subscripts are passed as "i,j" by the access extractor;
    # analyse only per-dimension forms, a comma means the caller should split.
    if "," in stripped:
        return SubscriptForm(text=text, is_affine=False)
    if any(ch in stripped for ch in "%/[]()?"):
        return SubscriptForm(text=text, is_affine=False)

    value = _try_int(stripped)
    if value is not None:
        return SubscriptForm(text=text, variable=None, coeff=0, offset=value)

    match = re.fullmatch(
        r"(?:(?P<coeff>\d+)\*)?(?P<var>[A-Za-z_][A-Za-z_0-9]*)"
        r"(?:(?P<sign>[+-])(?P<off>\d+))?",
        stripped,
    )
    if match is None:
        return SubscriptForm(text=text, is_affine=False)
    variable = match.group("var")
    coeff = int(match.group("coeff")) if match.group("coeff") else 1
    offset = int(match.group("off")) if match.group("off") else 0
    if match.group("sign") == "-":
        offset = -offset
    # A subscript naming something that is not the loop variable (for example
    # another array's element or an unrelated scalar) is not analysable as an
    # affine function of the parallel loop.
    if loop_variables and variable not in loop_variables:
        return SubscriptForm(text=text, variable=variable, coeff=coeff, offset=offset, is_affine=False)
    return SubscriptForm(text=text, variable=variable, coeff=coeff, offset=offset)


def dependence_distance(a: SubscriptForm, b: SubscriptForm) -> Optional[int]:
    """Return the iteration distance ``d`` such that ``a(i) == b(i + d)``.

    Defined only when both forms are affine in the same variable with equal,
    non-zero coefficients and the offset difference is divisible by the
    coefficient (the exact GCD test for this restricted shape).  Returns
    ``None`` when no constant distance exists.
    """
    if not (a.is_affine and b.is_affine):
        return None
    if a.variable is None or b.variable is None or a.variable != b.variable:
        return None
    if a.coeff != b.coeff or a.coeff == 0:
        return None
    delta = a.offset - b.offset
    if delta % a.coeff != 0:
        return None
    return delta // a.coeff


def may_overlap(
    a: SubscriptForm,
    b: SubscriptForm,
    *,
    same_iteration_ok: bool = True,
) -> bool:
    """Conservative test: can ``a`` and ``b`` address the same element from
    two *different* iterations of the parallel loop?

    Rules:

    * non-affine subscripts (indirect, modulus, multi-variable) may overlap;
    * two constants overlap when equal (every iteration touches them);
    * constant vs. affine-in-loop-variable overlaps (some iteration hits it);
    * affine vs. affine with equal coefficients: overlap iff the dependence
      distance exists and is non-zero (distance zero means both touch the
      same element only in the same iteration — not a cross-thread conflict
      when ``same_iteration_ok``);
    * affine vs. affine with different coefficients: solved conservatively as
      overlapping (e.g. ``2*i`` vs ``i`` share even elements).
    """
    if not a.is_affine or not b.is_affine:
        return True
    if a.is_constant and b.is_constant:
        return a.offset == b.offset
    if a.is_constant or b.is_constant:
        return True
    if a.variable != b.variable:
        return True
    if a.coeff == b.coeff:
        distance = dependence_distance(a, b)
        if distance is None:
            return False
        if distance == 0:
            return not same_iteration_ok
        return True
    # Different coefficients over the same variable: check parity-style
    # disjointness for the common 2*i vs 2*i+1 shape, otherwise be
    # conservative.
    if a.coeff != 0 and b.coeff != 0:
        gcd = _gcd(abs(a.coeff), abs(b.coeff))
        return (a.offset - b.offset) % gcd == 0
    return True


def _gcd(x: int, y: int) -> int:
    while y:
        x, y = y, x % y
    return x if x else 1


def value_interval(
    form: SubscriptForm,
    var_range: Optional["tuple[int, int]"],
) -> Optional["tuple[int, int]"]:
    """Inclusive interval of values ``form`` can take over ``var_range``.

    ``var_range`` is the inclusive ``(lo, hi)`` range of the subscript's loop
    variable (``None`` when unknown).  Returns ``None`` when the subscript is
    not affine or the range is unavailable — callers must then fall back to
    the conservative overlap test.
    """
    if not form.is_affine:
        return None
    if form.is_constant:
        return (form.offset, form.offset)
    if var_range is None:
        return None
    lo, hi = var_range
    a = form.coeff * lo + form.offset
    b = form.coeff * hi + form.offset
    return (min(a, b), max(a, b))


def intervals_disjoint(
    a: Optional["tuple[int, int]"], b: Optional["tuple[int, int]"]
) -> bool:
    """True when both intervals are known and do not intersect."""
    if a is None or b is None:
        return False
    return a[1] < b[0] or b[1] < a[0]
