"""Phase-aware static data-race detector.

:class:`StaticRaceDetector` combines access extraction, may-happen-in-parallel
classification (:mod:`repro.analysis.mhp`), data-sharing classification and
affine dependence testing into a purely static prediction: does the program
contain a data race, and between which access pairs?

This plays the role of the static-analysis tool family the paper discusses
(Locksmith / RELAY / ompVerify), upgraded from a flat pairwise heuristic to a
multi-pass pipeline:

1. **extraction** — :func:`~repro.analysis.accesses.extract_access_model`
   yields access sites plus barrier phases, construct/task identities,
   distributed induction variables, constant loop ranges and unit-level facts
   (injective index arrays, atomic-capture ticket variables);
2. **MHP filtering** — :func:`~repro.analysis.mhp.classify_pair` removes
   pairs that provably never run concurrently (phases, taskwait/taskgroup/
   depend edges, single-thread constructs);
3. **conflict testing** — per-dimension subscript analysis, each side
   normalised in *its own* loop context, with value-range disjointness,
   same-iteration pinning under ``collapse``, injective-index and ticket
   value-flow rules, and ``safelen`` windows for simd-only regions.

Every verdict carries structured :class:`~repro.analysis.diagnostics.Diagnostic`
records with stable ``DRD-*`` rule IDs, and suppressed candidate pairs are
tallied per rule for ``repro analyze --stats`` telemetry.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.accesses import (
    AccessModel,
    AccessSite,
    RegionSummary,
    extract_access_model,
)
from repro.analysis.dependence import (
    SubscriptForm,
    dependence_distance,
    intervals_disjoint,
    may_overlap,
    normalize_subscript,
    value_interval,
)
from repro.analysis.diagnostics import (
    ASSUMPTION_RULES,
    Diagnostic,
    Span,
    rule_confidence,
)
from repro.analysis.mhp import classify_pair
from repro.analysis.sharing import classify_sharing
from repro.cparse import ast, parse
from repro.cparse.symbols import SymbolTable, build_symbol_table

__all__ = ["PredictedRacePair", "StaticRaceReport", "StaticRaceDetector"]


@dataclass(frozen=True)
class PredictedRacePair:
    """A predicted conflicting access pair (static analogue of the ground truth)."""

    first: AccessSite
    second: AccessSite
    reason: str
    rule_id: str = ""

    def variable(self) -> str:
        return self.first.variable


@dataclass
class StaticRaceReport:
    """Result of running the static detector on one program."""

    has_race: bool
    pairs: List[PredictedRacePair] = field(default_factory=list)
    analyzed_accesses: int = 0
    analyzed_regions: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)
    # suppression rule id -> number of candidate pairs it proved safe
    suppressions: Counter = field(default_factory=Counter)
    # region index -> number of barrier-delimited phases
    phase_counts: Dict[int, int] = field(default_factory=dict)

    def variables(self) -> List[str]:
        """Distinct variable names involved in predicted races."""
        seen: List[str] = []
        for pair in self.pairs:
            if pair.variable() not in seen:
                seen.append(pair.variable())
        return seen

    @property
    def confidence(self) -> float:
        """Self-assessed reliability of the verdict, in [0, 1].

        Positive verdicts score the best-supported fired rule's calibrated
        confidence.  Clean verdicts start from the control-flow certainty of
        the MHP/mutex passes and lose a small amount per *assumption-bearing*
        suppression class used (injective index arrays, tickets, safelen
        windows, value ranges) — value-flow facts are honest but weaker than
        barrier placement.  No analyzed accesses means the parse saw nothing
        it understood.
        """
        if self.analyzed_accesses <= 0:
            return 0.5
        if self.has_race:
            if self.diagnostics:
                return max(d.confidence for d in self.diagnostics)
            return 0.7
        assumed = {r for r in self.suppressions if r in ASSUMPTION_RULES}
        return max(0.8, 0.93 - 0.03 * len(assumed))


# ---------------------------------------------------------------------------
# mutual exclusion
# ---------------------------------------------------------------------------


def _mutual_exclusion(a: AccessSite, b: AccessSite) -> Optional[str]:
    """Suppression rule id when the two accesses can never run concurrently."""
    ca, cb = a.context, b.context
    if ca.in_atomic and cb.in_atomic:
        return "DRD-MUTEX-ATOMIC"
    if ca.in_critical and cb.in_critical:
        # Unnamed criticals share one global lock; named ones must match.
        if ca.critical_name is None and cb.critical_name is None:
            return "DRD-MUTEX-CRITICAL"
        if ca.critical_name is not None and ca.critical_name == cb.critical_name:
            return "DRD-MUTEX-CRITICAL"
    if set(ca.locks_held) & set(cb.locks_held):
        return "DRD-MUTEX-LOCK"
    if ca.in_ordered and cb.in_ordered:
        return "DRD-MUTEX-ORDERED"
    return None


# ---------------------------------------------------------------------------
# subscript helpers
# ---------------------------------------------------------------------------

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_INDIRECT_RE = re.compile(r"^([A-Za-z_]\w*)\[([A-Za-z_]\w*)\]$")


def _fold_constants(dim: str, constants: Dict[str, int]) -> str:
    """Substitute known integer constants into a subscript dimension text."""
    if not constants:
        return dim
    return _IDENT_RE.sub(
        lambda m: str(constants[m.group(0)])
        if m.group(0) in constants
        else m.group(0),
        dim,
    )


def _normalize_dim(dim: str, site: AccessSite, constants: Dict[str, int]) -> SubscriptForm:
    """Normalize one subscript dimension in the *site's own* loop context.

    Every enclosing induction variable counts (not just the first), plus
    ``linear`` clause variables (which vary per iteration exactly like the
    induction variables), and loop-invariant constants are folded so
    ``i + half`` becomes affine.
    """
    variables = site.context.loop_variables + site.context.linear_vars
    # A linear-clause variable may carry a constant initializer yet vary per
    # iteration, so it must never be folded as a constant.
    folded = _fold_constants(
        dim, {k: v for k, v in constants.items() if k not in variables}
    )
    return normalize_subscript(folded, variables)


def _dim_interval(
    form: SubscriptForm, site: AccessSite
) -> Optional[Tuple[int, int]]:
    """Value interval of an affine dimension over the site's loop range."""
    if not form.is_affine:
        return None
    rng = site.context.loop_range(form.variable) if form.variable else None
    return value_interval(form, rng)


def _injective_dim_var(
    dim: str, site: AccessSite, model: AccessModel
) -> Optional[str]:
    """Loop variable an injective index-array dimension distributes over.

    Matches the ``perm[i]`` shape where ``perm`` was proven an injective map
    by the unit pre-pass and ``i`` is bound by the distributing construct:
    distinct iterations then address provably distinct elements.
    """
    match = _INDIRECT_RE.match(dim.replace(" ", ""))
    if match is None:
        return None
    array, inner = match.group(1), match.group(2)
    if array not in model.injective_arrays:
        return None
    if inner not in site.context.distributed_vars:
        return None
    return inner


def _ticket_dim(dim: str, region: Optional[RegionSummary]) -> bool:
    """True when the dimension is an atomic-capture ticket variable."""
    return region is not None and dim.strip() in region.ticket_vars


# ---------------------------------------------------------------------------
# detector
# ---------------------------------------------------------------------------


@dataclass
class _PairVerdict:
    """Outcome of the conflict test for one candidate pair."""

    conflict: bool
    rule_id: str
    reason: str


class StaticRaceDetector:
    """Purely static race detector over the corpus language subset."""

    def __init__(self, *, max_pairs: int = 16) -> None:
        self.max_pairs = max_pairs

    # -- public API ---------------------------------------------------------------

    def analyze_source(self, source: str) -> StaticRaceReport:
        """Parse and analyze a C source string."""
        return self.analyze_unit(parse(source))

    def analyze_unit(self, unit: ast.TranslationUnit) -> StaticRaceReport:
        """Analyze an already parsed translation unit."""
        symbols = build_symbol_table(unit)
        model = extract_access_model(unit)
        return self._analyze_model(model, symbols)

    # -- internals ----------------------------------------------------------------

    def _analyze_model(
        self, model: AccessModel, symbols: SymbolTable
    ) -> StaticRaceReport:
        sites = model.sites
        report = StaticRaceReport(has_race=False, analyzed_accesses=len(sites))
        regions = {site.context.region_index for site in sites}
        report.analyzed_regions = len(regions)
        report.phase_counts = {
            index: summary.phase_count for index, summary in model.regions.items()
        }

        shared_sites = [
            site
            for site in sites
            if classify_sharing(site, symbols, region_entry_line=None).races_possible
        ]

        for a, b in combinations(shared_sites, 2):
            if len(report.pairs) >= self.max_pairs:
                break
            if a.variable != b.variable:
                continue
            if not (a.is_write or b.is_write):
                continue
            region = model.regions.get(a.context.region_index)
            ordering, mhp_rule = classify_pair(a.context, b.context, region)
            if not ordering.may_race:
                report.suppressions[mhp_rule or "DRD-REGION-ORDERED"] += 1
                continue
            mutex = _mutual_exclusion(a, b)
            if mutex is not None:
                report.suppressions[mutex] += 1
                continue
            verdict = self._sites_conflict(a, b, model, region)
            if verdict.conflict:
                self._report_pair(report, a, b, verdict)
            else:
                report.suppressions[verdict.rule_id] += 1

        for site in shared_sites:
            if len(report.pairs) >= self.max_pairs:
                break
            verdict = self._self_conflict(site, model)
            if verdict is None:
                continue
            if verdict.conflict:
                self._report_pair(report, site, site, verdict)
            else:
                report.suppressions[verdict.rule_id] += 1

        report.has_race = bool(report.pairs)
        return report

    def _report_pair(
        self,
        report: StaticRaceReport,
        a: AccessSite,
        b: AccessSite,
        verdict: _PairVerdict,
    ) -> None:
        report.pairs.append(
            PredictedRacePair(
                first=a, second=b, reason=verdict.reason, rule_id=verdict.rule_id
            )
        )
        primary = Span(line=a.line, col=a.col, text=a.expr_text)
        secondary = (
            Span(line=b.line, col=b.col, text=b.expr_text) if b is not a else None
        )
        report.diagnostics.append(
            Diagnostic(
                rule_id=verdict.rule_id,
                message=verdict.reason,
                variable=a.variable,
                primary=primary,
                secondary=secondary,
                confidence=rule_confidence(verdict.rule_id),
                region=a.context.region_index,
            )
        )

    # -- pairwise conflict test ----------------------------------------------------

    def _sites_conflict(
        self,
        a: AccessSite,
        b: AccessSite,
        model: AccessModel,
        region: Optional[RegionSummary],
    ) -> _PairVerdict:
        if a.subscript is None or b.subscript is None:
            if a.subscript is None and b.subscript is None:
                return _PairVerdict(True, *self._race_rule(a, b, scalar=True))
            # Scalar vs subscripted use of one name: conservative conflict.
            return _PairVerdict(True, *self._race_rule(a, b, scalar=True))
        dims_a = a.subscript.split(",")
        dims_b = b.subscript.split(",")
        if len(dims_a) != len(dims_b):
            return _PairVerdict(
                True,
                "DRD-DIM-MISMATCH",
                "subscript dimensionality differs; assumed aliasing",
            )

        pinned = (
            a.context.distribution_construct is not None
            and a.context.distribution_construct == b.context.distribution_construct
        )
        distributed: Set[str] = (
            set(a.context.distributed_vars) & set(b.context.distributed_vars)
            if pinned
            else set()
        )
        # Linear-clause variables are bijections of the iteration number, so
        # pinning one pins the (one-dimensional) iteration space as well.
        linear_both: Set[str] = (
            set(a.context.linear_vars) & set(b.context.linear_vars)
            if pinned
            else set()
        )
        pinned_vars: Set[str] = set()
        carried: Optional[int] = None
        any_opaque = False
        any_cross = False

        for da, db in zip(dims_a, dims_b):
            fa = _normalize_dim(da, a, model.constants)
            fb = _normalize_dim(db, b, model.constants)

            # Disjoint value intervals prove the elements differ regardless
            # of which threads execute the accesses.
            if intervals_disjoint(_dim_interval(fa, a), _dim_interval(fb, b)):
                return _PairVerdict(
                    False, "DRD-RANGE-DISJOINT", "subscript value ranges are disjoint"
                )

            if da.strip() == db.strip():
                if _ticket_dim(da, region):
                    # Atomic-capture tickets are unique per dynamic execution,
                    # so equal subscript text never aliases across threads.
                    return _PairVerdict(
                        False,
                        "DRD-TICKET-UNIQUE",
                        "atomic capture hands out unique indices",
                    )
                ivar = _injective_dim_var(da, a, model)
                if (
                    pinned
                    and ivar is not None
                    and _injective_dim_var(db, b, model) == ivar
                ):
                    # Injective map of a distributed variable: same iteration
                    # or provably distinct elements.
                    return _PairVerdict(
                        False,
                        "DRD-INJECTIVE-INDEX",
                        "index array is an injective map",
                    )

            if not fa.is_affine or not fb.is_affine:
                any_opaque = True
                continue

            if fa.is_constant and fb.is_constant:
                if fa.offset != fb.offset:
                    return _PairVerdict(
                        False, "DRD-AFFINE-DISJOINT", "affine subscripts never meet"
                    )
                continue  # always-equal dimension: decided by the others

            if fa.is_constant != fb.is_constant:
                # Some iteration hits the constant element from another
                # iteration's affine access.
                any_cross = True
                continue

            if fa.variable == fb.variable and fa.coeff == fb.coeff:
                distance = dependence_distance(fa, fb)
                if distance is None:
                    return _PairVerdict(
                        False, "DRD-AFFINE-DISJOINT", "affine subscripts never meet"
                    )
                if distance == 0:
                    if pinned and (
                        fa.variable in distributed or fa.variable in linear_both
                    ):
                        pinned_vars.add(fa.variable)
                    else:
                        any_cross = True
                else:
                    any_cross = True
                    if pinned and fa.variable in distributed:
                        carried = distance
                continue

            if fa.variable != fb.variable:
                any_cross = True
                continue

            # Same variable, different coefficients: GCD-style test.
            if not may_overlap(fa, fb, same_iteration_ok=False):
                return _PairVerdict(
                    False, "DRD-AFFINE-DISJOINT", "affine subscripts never meet"
                )
            any_cross = True

        if (
            pinned
            and distributed
            and (
                distributed <= pinned_vars
                or (len(distributed) == 1 and pinned_vars & linear_both)
            )
        ):
            # Every distributed induction variable is pinned at distance 0:
            # any collision forces the same iteration instance, executed
            # sequentially by one thread.
            return _PairVerdict(
                False, "DRD-SAME-ITERATION", "both run in the same distributed iteration"
            )

        if (a.context.simd_only or b.context.simd_only) and carried is not None:
            safelen = a.context.safelen or b.context.safelen
            if safelen is not None and abs(carried) >= safelen:
                return _PairVerdict(
                    False,
                    "DRD-SAFELEN-COVERED",
                    "dependence distance at least safelen",
                )
            return _PairVerdict(
                True,
                "DRD-SIMD-LANE",
                "simd lanes carry a dependence shorter than the safelen window",
            )

        if any_cross or any_opaque or not pinned_vars:
            if any_opaque:
                return _PairVerdict(
                    True,
                    "DRD-SUBSCRIPT-OPAQUE",
                    "non-affine subscript may collide across threads",
                )
            return _PairVerdict(True, *self._race_rule(a, b, scalar=False))

        return _PairVerdict(
            False, "DRD-SAME-ITERATION", "both run in the same distributed iteration"
        )

    def _race_rule(
        self, a: AccessSite, b: AccessSite, *, scalar: bool
    ) -> Tuple[str, str]:
        """Pick the reporting rule for a confirmed conflicting pair."""
        if a.context.in_task or b.context.in_task:
            return "DRD-TASK-UNORDERED", "task accesses unordered with a sibling access"
        if a.context.in_section or b.context.in_section:
            return (
                "DRD-SECTION-OVERLAP",
                "accesses in different sections may touch the same element",
            )
        if a.context.simd_only and b.context.simd_only and not scalar:
            return (
                "DRD-SIMD-LANE",
                "simd lanes carry a dependence shorter than the safelen window",
            )
        if scalar:
            return (
                "DRD-SHARED-SCALAR",
                "conflicting unsynchronized accesses to a shared scalar",
            )
        if a.is_write and b.is_write:
            return "DRD-WRITE-WRITE", "the same element may be written by several threads"
        return (
            "DRD-LOOP-CARRIED",
            "loop-carried array dependence across concurrent iterations",
        )

    # -- single-site write/write test ---------------------------------------------

    def _self_conflict(
        self, site: AccessSite, model: AccessModel
    ) -> Optional[_PairVerdict]:
        """A single syntactic write executed by several concurrent instances
        conflicts with itself (write/write race) unless every dynamic
        instance provably targets a different element or runs in one thread.

        Returns ``None`` when the site is not a candidate at all (reads,
        protected or single-thread accesses)."""
        ctx = site.context
        if not site.is_write:
            return None
        if ctx.is_protected or ctx.in_ordered:
            return None
        if ctx.in_task:
            region = model.regions.get(ctx.region_index)
            task = region.tasks.get(ctx.task_id) if region is not None else None
            if task is None or not task.multiple:
                return None
        elif ctx.in_single or ctx.in_master or ctx.in_section:
            return None

        if site.subscript is None:
            return _PairVerdict(
                True,
                "DRD-WRITE-WRITE",
                "the same element may be written by several threads",
            )

        region = model.regions.get(ctx.region_index)
        distributed = set(ctx.distributed_vars)
        linear = set(ctx.linear_vars)
        covered: Set[str] = set()
        used_injective = False
        linear_covered = False
        for dim in site.subscript.split(","):
            if _ticket_dim(dim, region):
                return _PairVerdict(
                    False, "DRD-TICKET-UNIQUE", "atomic capture hands out unique indices"
                )
            ivar = _injective_dim_var(dim, site, model)
            if ivar is not None:
                covered.add(ivar)
                used_injective = True
                continue
            form = _normalize_dim(dim, site, model.constants)
            if form.is_affine and form.variable is not None and form.coeff != 0:
                if form.variable in distributed:
                    covered.add(form.variable)
                elif form.variable in linear:
                    # A linear-clause variable enumerates iterations
                    # bijectively, so it separates a 1-D iteration space.
                    linear_covered = True

        if distributed and (
            distributed <= covered
            or (len(distributed) == 1 and linear_covered)
        ):
            # The subscript tuple is injective over every distributed
            # induction variable: concurrent instances write distinct
            # elements.  Credit the value-flow assumption when an injective
            # index array carried the proof, so the report confidence
            # reflects it.
            if used_injective:
                return _PairVerdict(
                    False, "DRD-INJECTIVE-INDEX", "index array is an injective map"
                )
            return _PairVerdict(
                False, "DRD-DISTRIBUTED-WRITE", "distributed subscript separates writes"
            )
        return _PairVerdict(
            True,
            "DRD-WRITE-WRITE",
            "the same element may be written by several threads",
        )
