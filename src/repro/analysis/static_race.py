"""Static data-race detector.

:class:`StaticRaceDetector` combines access extraction, data-sharing
classification and affine dependence testing into a purely static prediction:
does the program contain a data race, and between which access pairs?

This plays the role of the static-analysis tool family the paper discusses
(Locksmith / RELAY / ompVerify): fast, runs without executing the program,
and over-approximates in places where only dynamic information (barrier
placement, index-array contents) could prove independence.  It is also the
candidate-pair generator the simulated language models use for the
variable-identification task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

from repro.analysis.accesses import AccessSite, extract_accesses
from repro.analysis.dependence import may_overlap, normalize_subscript
from repro.analysis.sharing import SharingAttribute, classify_sharing
from repro.cparse import ast, parse
from repro.cparse.symbols import SymbolTable, build_symbol_table

__all__ = ["PredictedRacePair", "StaticRaceReport", "StaticRaceDetector"]


@dataclass(frozen=True)
class PredictedRacePair:
    """A predicted conflicting access pair (static analogue of the ground truth)."""

    first: AccessSite
    second: AccessSite
    reason: str

    def variable(self) -> str:
        return self.first.variable


@dataclass
class StaticRaceReport:
    """Result of running the static detector on one program."""

    has_race: bool
    pairs: List[PredictedRacePair] = field(default_factory=list)
    analyzed_accesses: int = 0
    analyzed_regions: int = 0

    def variables(self) -> List[str]:
        """Distinct variable names involved in predicted races."""
        seen: List[str] = []
        for pair in self.pairs:
            if pair.variable() not in seen:
                seen.append(pair.variable())
        return seen

    @property
    def confidence(self) -> float:
        """Self-assessed reliability of the verdict, in [0, 1].

        The detector over-approximates: a clean bill of health over real
        accesses is its strongest signal, while a positive may be a false
        alarm from the conservative alias/sync model — so positives score
        below the default cascade escalation threshold and get confirmed
        by a stronger tier.  No analyzed accesses means the parse saw
        nothing it understood.
        """
        if self.analyzed_accesses <= 0:
            return 0.5
        if self.has_race:
            return 0.7
        return 0.9


def _mutual_exclusion(a: AccessSite, b: AccessSite) -> bool:
    """True when the two accesses can never run concurrently."""
    ca, cb = a.context, b.context
    if ca.in_atomic and cb.in_atomic:
        return True
    if ca.in_critical and cb.in_critical:
        # Unnamed criticals share one global lock; named ones must match.
        if ca.critical_name is None and cb.critical_name is None:
            return True
        if ca.critical_name is not None and ca.critical_name == cb.critical_name:
            return True
    if set(ca.locks_held) & set(cb.locks_held):
        return True
    if ca.in_ordered and cb.in_ordered:
        return True
    return False


def _conflicting_subscripts(a: AccessSite, b: AccessSite) -> Tuple[bool, str]:
    """Decide whether two same-array accesses may touch the same element from
    different iterations/threads.  Returns (conflict, reason)."""
    if a.subscript is None or b.subscript is None:
        return True, "scalar access"
    dims_a = a.subscript.split(",")
    dims_b = b.subscript.split(",")
    if len(dims_a) != len(dims_b):
        return True, "dimension mismatch"
    loop_vars = a.context.loop_variables or b.context.loop_variables
    # If the accesses come from different worksharing loops (different regions
    # handled elsewhere), or from sections/tasks, subscript equality does not
    # imply same-thread execution, so identical subscripts still conflict.
    partitioned_by_loop = (
        a.context.in_worksharing_loop
        and b.context.in_worksharing_loop
        and not a.context.in_section
        and not b.context.in_section
        and not a.context.in_task
        and not b.context.in_task
    )
    any_cross = False
    for da, db in zip(dims_a, dims_b):
        fa = normalize_subscript(da, tuple(loop_vars[:1]))
        fb = normalize_subscript(db, tuple(loop_vars[:1]))
        if not may_overlap(fa, fb, same_iteration_ok=partitioned_by_loop):
            return False, "disjoint affine subscripts"
        # track whether at least one dimension provably differs across
        # iterations (distance != 0) — that is what makes it a loop-carried
        # conflict rather than a same-iteration reuse.
        if fa.is_affine and fb.is_affine and (fa.text != fb.text):
            any_cross = True
        if not fa.is_affine or not fb.is_affine:
            any_cross = True
    if partitioned_by_loop and not any_cross:
        # Same affine element in the same iteration only: not a race.
        return False, "same iteration element"
    return True, "overlapping subscripts"


class StaticRaceDetector:
    """Purely static race detector over the corpus language subset."""

    def __init__(self, *, max_pairs: int = 16) -> None:
        self.max_pairs = max_pairs

    # -- public API ---------------------------------------------------------------

    def analyze_source(self, source: str) -> StaticRaceReport:
        """Parse and analyze a C source string."""
        return self.analyze_unit(parse(source))

    def analyze_unit(self, unit: ast.TranslationUnit) -> StaticRaceReport:
        """Analyze an already parsed translation unit."""
        symbols = build_symbol_table(unit)
        sites = extract_accesses(unit)
        return self._analyze_sites(sites, symbols)

    # -- internals ----------------------------------------------------------------

    def _analyze_sites(
        self, sites: Sequence[AccessSite], symbols: SymbolTable
    ) -> StaticRaceReport:
        report = StaticRaceReport(has_race=False, analyzed_accesses=len(sites))
        regions = {site.context.region_index for site in sites}
        report.analyzed_regions = len(regions)

        shared_sites = [
            site
            for site in sites
            if classify_sharing(site, symbols, region_entry_line=None).races_possible
        ]

        for a, b in combinations(shared_sites, 2):
            if len(report.pairs) >= self.max_pairs:
                break
            if a.variable != b.variable:
                continue
            if a.context.region_index != b.context.region_index:
                # Different parallel regions are separated by the join of the
                # first region's team: no concurrency between them.
                continue
            if not (a.is_write or b.is_write):
                continue
            if _mutual_exclusion(a, b):
                continue
            conflict, reason = self._sites_conflict(a, b)
            if conflict:
                report.pairs.append(PredictedRacePair(first=a, second=b, reason=reason))

        for site in shared_sites:
            if len(report.pairs) >= self.max_pairs:
                break
            if self._self_conflict(site):
                report.pairs.append(
                    PredictedRacePair(first=site, second=site, reason="multi-thread write site")
                )

        report.has_race = bool(report.pairs)
        return report

    def _self_conflict(self, site: AccessSite) -> bool:
        """A single syntactic write executed by several threads conflicts with
        itself (write/write race), unless the construct or the subscript
        guarantees that every dynamic instance targets a different element or
        runs in one thread only."""
        ctx = site.context
        if not site.is_write:
            return False
        if ctx.is_protected or ctx.in_ordered:
            return False
        if ctx.in_single or ctx.in_master or ctx.in_section or ctx.in_task:
            return False
        if site.subscript is None:
            return True
        loop_vars = tuple(ctx.loop_variables[:1])
        for dim in site.subscript.split(","):
            form = normalize_subscript(dim, loop_vars)
            if form.is_affine and form.variable is not None and form.coeff != 0:
                # This dimension distributes instances over distinct elements.
                return False
        return True

    def _sites_conflict(self, a: AccessSite, b: AccessSite) -> Tuple[bool, str]:
        # Scalars shared across the team conflict unless both accesses are the
        # same syntactic site inside a construct executed by a single thread.
        if a.subscript is None and b.subscript is None:
            if (a.line, a.col) == (b.line, b.col) and (
                a.context.in_single or a.context.in_master
            ):
                return False, "single-thread construct"
            return True, "shared scalar"
        return _conflicting_subscripts(a, b)
