"""OpenMP data-sharing attribute classification.

Given a parsed program and an access site, decide whether the underlying
variable is shared between team threads or private to each thread.  The rules
implemented here follow the OpenMP default rules for the language subset the
corpus uses:

* variables listed in ``private`` / ``firstprivate`` / ``lastprivate`` /
  ``linear`` clauses are private;
* variables listed in ``reduction`` clauses get a private accumulator
  (conflicts on them are resolved by the reduction, so they behave as private
  for race purposes);
* the loop variable of a worksharing ``for`` (and of a ``simd``) is private;
* variables declared inside the parallel construct's dynamic extent are
  private (block locals);
* everything else visible at region entry is shared.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.analysis.accesses import AccessSite
from repro.cparse.symbols import SymbolTable

__all__ = ["SharingAttribute", "classify_sharing"]


class SharingAttribute(enum.Enum):
    """Data-sharing classification of a variable within a parallel construct."""

    SHARED = "shared"
    PRIVATE = "private"
    REDUCTION = "reduction"
    LOOP_INDEX = "loop_index"
    BLOCK_LOCAL = "block_local"

    @property
    def races_possible(self) -> bool:
        """Whether conflicting accesses to such a variable can race."""
        return self is SharingAttribute.SHARED


def classify_sharing(
    site: AccessSite,
    symbols: Optional[SymbolTable] = None,
    *,
    function: str = "main",
    region_entry_line: Optional[int] = None,
) -> SharingAttribute:
    """Classify the sharing attribute of ``site``'s variable.

    Parameters
    ----------
    site:
        The access to classify.
    symbols:
        Symbol table of the translation unit; used to find the declaration
        point so block locals declared inside the region are recognised.
    function:
        Function the access belongs to (the corpus uses ``main`` only).
    region_entry_line:
        Source line of the parallel construct.  When provided together with
        ``symbols``, a variable declared *after* this line is treated as a
        block local of the region and therefore private.
    """
    ctx = site.context
    name = site.variable

    if name in ctx.reduction_vars:
        return SharingAttribute.REDUCTION
    if name in ctx.private_vars:
        return SharingAttribute.PRIVATE
    if name in ctx.distributed_vars:
        # Induction variables the worksharing/simd construct binds (all of
        # them under ``collapse(n)``, not just the outermost) are implicitly
        # private to each iteration.
        return SharingAttribute.LOOP_INDEX
    if ctx.in_worksharing_loop and ctx.loop_variables and name == ctx.loop_variables[0]:
        # Fallback when the extractor could not resolve the bound loop nest.
        return SharingAttribute.LOOP_INDEX
    if ctx.in_task and name in ctx.private_vars:
        return SharingAttribute.PRIVATE

    if symbols is not None:
        symbol = symbols.lookup(name, function)
        if symbol is not None and region_entry_line is not None:
            if symbol.loc.line > region_entry_line:
                return SharingAttribute.BLOCK_LOCAL
        if symbol is not None and symbol.scope_depth >= 3 and region_entry_line is None:
            # Deeply nested declaration: almost certainly inside the region.
            return SharingAttribute.BLOCK_LOCAL

    return SharingAttribute.SHARED
