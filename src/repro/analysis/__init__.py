"""Static data-race analysis substrate.

This package provides the static-analysis half of the "traditional tool"
baselines the paper compares against (§2.2 cites Locksmith, RELAY and
ompVerify as representatives of this class), and it supplies the structural
code features the simulated language models consume:

* :mod:`repro.analysis.accesses` — extraction of memory accesses inside
  OpenMP constructs, with read/write classification and source locations;
* :mod:`repro.analysis.sharing` — OpenMP data-sharing attribute
  classification (shared / private / firstprivate / lastprivate / reduction);
* :mod:`repro.analysis.dependence` — affine subscript dependence tests
  (GCD and Banerjee-style bounds checks) for loop-carried conflicts;
* :mod:`repro.analysis.static_race` — the :class:`StaticRaceDetector` that
  combines the three into predicted race pairs.
"""

from repro.analysis.accesses import (
    AccessModel,
    AccessSite,
    ParallelContext,
    extract_access_model,
    extract_accesses,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    RACE_RULES,
    Span,
    SUPPRESSION_RULES,
    rule_confidence,
)
from repro.analysis.mhp import Ordering, classify_pair
from repro.analysis.sharing import SharingAttribute, classify_sharing
from repro.analysis.dependence import (
    SubscriptForm,
    dependence_distance,
    intervals_disjoint,
    may_overlap,
    normalize_subscript,
    value_interval,
)
from repro.analysis.static_race import StaticRaceDetector, StaticRaceReport

__all__ = [
    "AccessModel",
    "AccessSite",
    "ParallelContext",
    "extract_access_model",
    "extract_accesses",
    "Diagnostic",
    "Span",
    "RACE_RULES",
    "SUPPRESSION_RULES",
    "rule_confidence",
    "Ordering",
    "classify_pair",
    "SharingAttribute",
    "classify_sharing",
    "SubscriptForm",
    "normalize_subscript",
    "dependence_distance",
    "may_overlap",
    "value_interval",
    "intervals_disjoint",
    "StaticRaceDetector",
    "StaticRaceReport",
]
