"""May-happen-in-parallel (MHP) classification of access pairs.

Given two access sites of the same parallel region, decide whether their
dynamic instances can ever execute concurrently.  The decision procedure
uses the facts the access extractor collects:

* **phases** — barrier-delimited sub-intervals of the region (explicit
  ``barrier``, implicit barriers at the end of ``for``/``sections``/``single``
  constructs unless ``nowait``).  Accesses in different phases are ordered:
  every thread (and every explicit task, which must complete at a barrier)
  passes the intervening barrier.
* **single-thread constructs** — two non-task accesses inside the *same*
  ``single``/``master``/``section`` construct instance are executed by one
  thread in program order.
* **task ordering** — ``taskwait`` completes previously spawned sibling
  tasks; ``taskgroup`` completes the tasks spawned inside it; ``depend``
  clauses order sibling tasks; accesses sequenced before a task's spawn
  point happen before the task.  A task construct spawned inside a loop (or
  by every team thread) has several concurrent instances.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.analysis.accesses import ParallelContext, RegionSummary, TaskInfo

__all__ = ["Ordering", "classify_pair"]


class Ordering(enum.Enum):
    """Concurrency relation between two access sites' dynamic instances."""

    CONCURRENT = "concurrent"
    ORDERED = "ordered"
    SAME_THREAD = "same_thread"

    @property
    def may_race(self) -> bool:
        return self is Ordering.CONCURRENT


def classify_pair(
    a: ParallelContext,
    b: ParallelContext,
    region: Optional[RegionSummary],
) -> Tuple[Ordering, Optional[str]]:
    """Classify the concurrency of two contexts from the same program.

    Returns ``(ordering, rule_id)`` where ``rule_id`` names the suppression
    rule that proved the ordering (``None`` when the pair is concurrent).
    """
    if a.region_index != b.region_index:
        # Different parallel regions are separated by the join of the first
        # region's team: no concurrency between them.
        return Ordering.ORDERED, "DRD-REGION-ORDERED"
    if a.phase != b.phase:
        return Ordering.ORDERED, "DRD-PHASE-ORDERED"

    tasks = region.tasks if region is not None else {}
    ta = tasks.get(a.task_id) if a.task_id is not None else None
    tb = tasks.get(b.task_id) if b.task_id is not None else None

    if ta is not None and tb is not None:
        return _task_vs_task(ta, tb, region)
    if ta is not None or tb is not None:
        task = ta if ta is not None else tb
        other = b if ta is not None else a
        assert task is not None
        return _task_vs_sequential(task, other, region)

    # Neither access is inside an explicit task.
    if (
        a.construct_id is not None
        and a.construct_id == b.construct_id
        and a.construct_kind in ("single", "master", "section")
    ):
        # One construct instance, executed start-to-finish by one thread.
        return Ordering.SAME_THREAD, "DRD-SEQUENTIAL-CONSTRUCT"
    if a.in_master and b.in_master:
        # master regions always execute on the team's thread 0, so even two
        # distinct master constructs are sequenced on the same thread.
        return Ordering.SAME_THREAD, "DRD-SEQUENTIAL-CONSTRUCT"
    return Ordering.CONCURRENT, None


def _task_vs_task(
    ta: TaskInfo, tb: TaskInfo, region: Optional[RegionSummary]
) -> Tuple[Ordering, Optional[str]]:
    if ta.task_id == tb.task_id:
        if ta.multiple:
            # Several instances of the same task construct may coexist.
            return Ordering.CONCURRENT, None
        return Ordering.SAME_THREAD, "DRD-TASK-SEQUENTIAL"
    if _depend_edge(ta, tb) or _depend_edge(tb, ta):
        return Ordering.ORDERED, "DRD-DEPEND-ORDERED"
    if _taskwait_between_spawns(ta, tb, region):
        return Ordering.ORDERED, "DRD-TASKWAIT-ORDERED"
    return Ordering.CONCURRENT, None


def _depend_edge(first: TaskInfo, second: TaskInfo) -> bool:
    """True when ``depend`` clauses order the two sibling tasks."""
    if first.construct_id != second.construct_id:
        return False
    out_first = set(first.depend_out)
    out_second = set(second.depend_out)
    in_first = set(first.depend_in)
    in_second = set(second.depend_in)
    return bool(
        out_first & (in_second | out_second) or in_first & out_second
    )


def _taskwait_between_spawns(
    ta: TaskInfo, tb: TaskInfo, region: Optional[RegionSummary]
) -> bool:
    """True when a taskwait between the spawn points completes the earlier task."""
    if region is None or ta.construct_id != tb.construct_id:
        return False
    if ta.spawn_seq is None or tb.spawn_seq is None:
        return False
    first, second = sorted((ta.spawn_seq, tb.spawn_seq))
    if first == second:
        return False
    waits = region.taskwaits.get(ta.construct_id, [])
    return any(first < w <= second for w in waits)


def _task_vs_sequential(
    task: TaskInfo, other: ParallelContext, region: Optional[RegionSummary]
) -> Tuple[Ordering, Optional[str]]:
    if other.construct_id != task.construct_id:
        # The non-task access runs on another thread/construct; only a phase
        # boundary (handled above) could order it against the task.
        return Ordering.CONCURRENT, None
    if other.construct_seq is None or task.spawn_seq is None:
        return Ordering.CONCURRENT, None
    if other.construct_seq < task.spawn_seq:
        # Fully sequenced before the statement that spawns the task.
        return Ordering.ORDERED, "DRD-SEQUENCED-BEFORE-TASK"
    if task.taskgroup_seq is not None and (
        other.construct_seq > task.taskgroup_seq
        and other.taskgroup_seq != task.taskgroup_seq
    ):
        # The taskgroup's end completed the task before the access.
        return Ordering.ORDERED, "DRD-TASKGROUP-ORDERED"
    waits = region.taskwaits.get(task.construct_id, []) if region is not None else []
    if any(task.spawn_seq < w <= other.construct_seq for w in waits):
        return Ordering.ORDERED, "DRD-TASKWAIT-ORDERED"
    return Ordering.CONCURRENT, None
