"""Structured race diagnostics with stable rule IDs.

Every verdict the static analyzer produces is backed by a
:class:`Diagnostic` record: a stable ``DRD-*`` rule ID, the source spans of
both conflicting accesses, and a per-rule calibrated confidence (measured
against the 201-record corpus scoreboard — see
``tests/analysis/test_scoreboard.py``), replacing the old flat 0.7/0.9
report confidence.

Two rule families share the ``DRD-`` namespace:

* **race rules** fire a diagnostic — they claim a conflicting, concurrent,
  unsynchronized access pair;
* **suppression rules** never fire a diagnostic — they record *why* a
  candidate pair was proven safe (phase ordering, taskwait edges, disjoint
  ranges ...), feeding the ``repro analyze --stats`` telemetry and the
  negative-verdict confidence model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

__all__ = [
    "Diagnostic",
    "RuleSpec",
    "Span",
    "RACE_RULES",
    "SUPPRESSION_RULES",
    "rule_confidence",
]


@dataclass(frozen=True)
class Span:
    """Source location of one access: line, column, and the access text."""

    line: int
    col: int
    text: str


@dataclass(frozen=True)
class Diagnostic:
    """One reported potential data race."""

    rule_id: str
    message: str
    variable: str
    primary: Span
    secondary: Optional[Span]
    confidence: float
    region: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the ``repro analyze --json`` schema)."""
        payload: Dict[str, object] = {
            "rule": self.rule_id,
            "message": self.message,
            "variable": self.variable,
            "confidence": round(self.confidence, 3),
            "region": self.region,
            "primary": {
                "line": self.primary.line,
                "col": self.primary.col,
                "expr": self.primary.text,
            },
        }
        if self.secondary is not None:
            payload["secondary"] = {
                "line": self.secondary.line,
                "col": self.secondary.col,
                "expr": self.secondary.text,
            }
        return payload


@dataclass(frozen=True)
class RuleSpec:
    """Registry entry for one rule: what it claims and how reliable it is."""

    rule_id: str
    summary: str
    confidence: float


def _rules(*specs: RuleSpec) -> Mapping[str, RuleSpec]:
    return {spec.rule_id: spec for spec in specs}


#: Rules that report a race.  Confidence is the calibrated precision-style
#: weight used for the cascade: rules whose evidence is exact (scalar R/W in
#: the same phase, affine loop-carried distance) score high; rules that lean
#: on conservative approximations (opaque subscripts) score lower.
RACE_RULES: Mapping[str, RuleSpec] = _rules(
    RuleSpec(
        "DRD-SHARED-SCALAR",
        "conflicting unsynchronized accesses to a shared scalar",
        0.90,
    ),
    RuleSpec(
        "DRD-LOOP-CARRIED",
        "loop-carried array dependence across concurrent iterations",
        0.88,
    ),
    RuleSpec(
        "DRD-WRITE-WRITE",
        "the same element may be written by several threads",
        0.85,
    ),
    RuleSpec(
        "DRD-SUBSCRIPT-OPAQUE",
        "non-affine subscript (indirect/modulus) may collide across threads",
        0.78,
    ),
    RuleSpec(
        "DRD-TASK-UNORDERED",
        "task accesses unordered with a sibling access",
        0.85,
    ),
    RuleSpec(
        "DRD-SECTION-OVERLAP",
        "accesses in different sections may touch the same element",
        0.85,
    ),
    RuleSpec(
        "DRD-SIMD-LANE",
        "simd lanes carry a dependence shorter than the safelen window",
        0.85,
    ),
    RuleSpec(
        "DRD-DIM-MISMATCH",
        "subscript dimensionality differs; assumed aliasing",
        0.60,
    ),
)

#: Rules that prove a candidate pair safe.  Confidence here is the weight of
#: the *negative* evidence: exact control-flow facts (phases, region joins)
#: score higher than value-flow assumptions (injective index arrays).
SUPPRESSION_RULES: Mapping[str, RuleSpec] = _rules(
    RuleSpec("DRD-REGION-ORDERED", "regions are separated by a team join", 0.95),
    RuleSpec("DRD-PHASE-ORDERED", "a barrier orders the two phases", 0.93),
    RuleSpec("DRD-SEQUENTIAL-CONSTRUCT", "one thread executes the construct", 0.93),
    RuleSpec("DRD-TASK-SEQUENTIAL", "a single task instance is sequential", 0.92),
    RuleSpec("DRD-SEQUENCED-BEFORE-TASK", "access precedes the task spawn", 0.92),
    RuleSpec("DRD-TASKWAIT-ORDERED", "taskwait completes the task first", 0.92),
    RuleSpec("DRD-TASKGROUP-ORDERED", "taskgroup end completes the task", 0.92),
    RuleSpec("DRD-DEPEND-ORDERED", "depend clauses order the sibling tasks", 0.92),
    RuleSpec("DRD-MUTEX-CRITICAL", "both accesses hold the same critical", 0.93),
    RuleSpec("DRD-MUTEX-ATOMIC", "both accesses are atomic", 0.93),
    RuleSpec("DRD-MUTEX-LOCK", "both accesses hold a common lock", 0.93),
    RuleSpec("DRD-MUTEX-ORDERED", "the ordered construct serializes both", 0.92),
    RuleSpec("DRD-AFFINE-DISJOINT", "affine subscripts never meet", 0.92),
    RuleSpec("DRD-RANGE-DISJOINT", "subscript value ranges are disjoint", 0.88),
    RuleSpec("DRD-SAME-ITERATION", "both run in the same distributed iteration", 0.92),
    RuleSpec("DRD-INJECTIVE-INDEX", "index array is an injective map", 0.84),
    RuleSpec("DRD-TICKET-UNIQUE", "atomic capture hands out unique indices", 0.84),
    RuleSpec("DRD-SAFELEN-COVERED", "dependence distance at least safelen", 0.86),
    RuleSpec("DRD-DISTRIBUTED-WRITE", "distributed subscript separates writes", 0.92),
    RuleSpec("DRD-PRIVATE-ACCESS", "variable is private to each thread", 0.93),
)

#: Suppression rules that rest on value-flow assumptions rather than exact
#: control-flow facts; a clean verdict that needed one of these is slightly
#: less certain, and the report confidence reflects that.
ASSUMPTION_RULES = frozenset(
    {
        "DRD-INJECTIVE-INDEX",
        "DRD-TICKET-UNIQUE",
        "DRD-SAFELEN-COVERED",
        "DRD-RANGE-DISJOINT",
    }
)


def rule_confidence(rule_id: str, default: float = 0.7) -> float:
    """Calibrated confidence of a rule, race or suppression."""
    spec = RACE_RULES.get(rule_id) or SUPPRESSION_RULES.get(rule_id)
    return spec.confidence if spec is not None else default
