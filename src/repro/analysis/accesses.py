"""Memory-access extraction from parsed OpenMP programs.

The extractor walks a :class:`~repro.cparse.ast.TranslationUnit`, finds every
OpenMP parallel construct, and lists the memory accesses its dynamic extent
performs: which variable, scalar or subscripted, read or written, at which
source location, under which synchronization (critical / atomic / ordered /
locks held), and inside which loops.

Both the static race detector and the simulated language models' feature
extractor are built on these access sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.cparse import ast

__all__ = ["AccessSite", "ParallelContext", "extract_accesses", "render_expr"]


def render_expr(expr: ast.Expr) -> str:
    """Render an expression back to compact C-like text.

    Used to report accesses in the same textual form the corpus ground truth
    and the DRB header comments use (``a[i+1]``, ``sum`` ...).
    """
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.FloatLiteral):
        return expr.text or repr(expr.value)
    if isinstance(expr, ast.StringLiteral):
        return expr.value
    if isinstance(expr, ast.ArraySubscript):
        return f"{render_expr(expr.base)}[{render_expr(expr.index)}]"
    if isinstance(expr, ast.BinaryOp):
        return f"{render_expr(expr.left)}{expr.op}{render_expr(expr.right)}"
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op}{render_expr(expr.operand)}"
    if isinstance(expr, ast.Assignment):
        return f"{render_expr(expr.target)} {expr.op} {render_expr(expr.value)}"
    if isinstance(expr, ast.IncDec):
        inner = render_expr(expr.operand)
        return f"{expr.op}{inner}" if expr.prefix else f"{inner}{expr.op}"
    if isinstance(expr, ast.Call):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.AddressOf):
        return f"&{render_expr(expr.operand)}"
    if isinstance(expr, ast.Deref):
        return f"*{render_expr(expr.operand)}"
    if isinstance(expr, ast.ConditionalExpr):
        return (
            f"{render_expr(expr.cond)} ? {render_expr(expr.then)} : "
            f"{render_expr(expr.other)}"
        )
    return "<expr>"


@dataclass(frozen=True)
class ParallelContext:
    """Synchronization/worksharing context an access site sits in."""

    region_index: int
    directives: Tuple[str, ...]
    in_worksharing_loop: bool = False
    loop_variables: Tuple[str, ...] = ()
    in_critical: bool = False
    critical_name: Optional[str] = None
    in_atomic: bool = False
    in_ordered: bool = False
    in_master: bool = False
    in_single: bool = False
    in_task: bool = False
    in_section: bool = False
    locks_held: Tuple[str, ...] = ()
    reduction_vars: Tuple[str, ...] = ()
    private_vars: Tuple[str, ...] = ()

    @property
    def is_protected(self) -> bool:
        """True when the access is guarded by mutual exclusion."""
        return self.in_critical or self.in_atomic or bool(self.locks_held)


@dataclass(frozen=True)
class AccessSite:
    """One syntactic memory access inside a parallel construct."""

    variable: str
    expr_text: str
    is_write: bool
    line: int
    col: int
    subscript: Optional[str]
    context: ParallelContext

    @property
    def operation(self) -> str:
        return "W" if self.is_write else "R"

    @property
    def is_scalar(self) -> bool:
        return self.subscript is None


class _AccessCollector:
    """Stateful walker that accumulates access sites."""

    def __init__(self) -> None:
        self.sites: List[AccessSite] = []
        self._region_counter = 0

    # -- expression traversal -----------------------------------------------------

    def _emit(self, expr: ast.Expr, is_write: bool, ctx: ParallelContext) -> None:
        if isinstance(expr, ast.Identifier):
            self.sites.append(
                AccessSite(
                    variable=expr.name,
                    expr_text=expr.name,
                    is_write=is_write,
                    line=expr.loc.line,
                    col=expr.loc.col,
                    subscript=None,
                    context=ctx,
                )
            )
            return
        if isinstance(expr, ast.ArraySubscript):
            root = expr.root_name() or "<anon>"
            subscript = ",".join(render_expr(ix) for ix in expr.indices())
            self.sites.append(
                AccessSite(
                    variable=root,
                    expr_text=render_expr(expr),
                    is_write=is_write,
                    line=expr.loc.line,
                    col=expr.loc.col,
                    subscript=subscript,
                    context=ctx,
                )
            )
            # subscript expressions themselves are reads
            for ix in expr.indices():
                self._walk_expr(ix, ctx)
            return
        # Fallback: treat as a read traversal of sub-expressions.
        self._walk_expr(expr, ctx)

    def _walk_expr(self, expr: Optional[ast.Expr], ctx: ParallelContext) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Assignment):
            self._emit(expr.target, True, ctx)
            if expr.is_compound:
                self._emit(expr.target, False, ctx)
            self._walk_expr(expr.value, ctx)
            return
        if isinstance(expr, ast.IncDec):
            self._emit(expr.operand, True, ctx)
            self._emit(expr.operand, False, ctx)
            return
        if isinstance(expr, (ast.Identifier, ast.ArraySubscript)):
            self._emit(expr, False, ctx)
            return
        if isinstance(expr, ast.BinaryOp):
            self._walk_expr(expr.left, ctx)
            self._walk_expr(expr.right, ctx)
            return
        if isinstance(expr, ast.UnaryOp):
            self._walk_expr(expr.operand, ctx)
            return
        if isinstance(expr, ast.Call):
            for arg in expr.args:
                self._walk_expr(arg, ctx)
            return
        if isinstance(expr, (ast.AddressOf, ast.Deref)):
            self._walk_expr(expr.operand, ctx)
            return
        if isinstance(expr, ast.ConditionalExpr):
            self._walk_expr(expr.cond, ctx)
            self._walk_expr(expr.then, ctx)
            self._walk_expr(expr.other, ctx)
            return
        # literals: nothing to record

    # -- statement traversal ------------------------------------------------------

    def _walk_stmt(self, stmt: Optional[ast.Stmt], ctx: ParallelContext) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.ExprStmt):
            self._walk_expr(stmt.expr, ctx)
            return
        if isinstance(stmt, ast.Declaration):
            for decl in stmt.declarators:
                if decl.init is not None:
                    self._walk_expr(decl.init, ctx)
            return
        if isinstance(stmt, ast.CompoundStmt):
            for child in stmt.body:
                self._walk_stmt(child, ctx)
            return
        if isinstance(stmt, ast.ForStmt):
            loop_var = stmt.loop_variable()
            inner_ctx = ctx
            if loop_var is not None:
                inner_ctx = replace(ctx, loop_variables=ctx.loop_variables + (loop_var,))
            if stmt.init is not None:
                self._walk_stmt(stmt.init, inner_ctx)
            self._walk_expr(stmt.cond, inner_ctx)
            self._walk_expr(stmt.step, inner_ctx)
            self._walk_stmt(stmt.body, inner_ctx)
            return
        if isinstance(stmt, ast.WhileStmt):
            self._walk_expr(stmt.cond, ctx)
            self._walk_stmt(stmt.body, ctx)
            return
        if isinstance(stmt, ast.IfStmt):
            self._walk_expr(stmt.cond, ctx)
            self._walk_stmt(stmt.then, ctx)
            self._walk_stmt(stmt.other, ctx)
            return
        if isinstance(stmt, ast.ReturnStmt):
            self._walk_expr(stmt.value, ctx)
            return
        if isinstance(stmt, ast.OmpStmt):
            self._walk_omp(stmt, ctx)
            return
        # Null/Break/Continue: nothing to record.

    def _walk_omp(self, stmt: ast.OmpStmt, ctx: ParallelContext) -> None:
        pragma = stmt.pragma
        new_ctx = ctx
        if pragma.has_directive("critical"):
            name_clause = pragma.clause("name")
            new_ctx = replace(
                new_ctx,
                in_critical=True,
                critical_name=name_clause.arguments[0] if name_clause else None,
            )
        if pragma.has_directive("atomic"):
            new_ctx = replace(new_ctx, in_atomic=True)
        if pragma.has_directive("ordered") and stmt.body is not None:
            new_ctx = replace(new_ctx, in_ordered=True)
        if pragma.has_directive("master"):
            new_ctx = replace(new_ctx, in_master=True)
        if pragma.has_directive("single"):
            new_ctx = replace(new_ctx, in_single=True)
        if pragma.has_directive("task"):
            new_ctx = replace(new_ctx, in_task=True)
        if pragma.has_directive("section") and not pragma.has_directive("sections"):
            new_ctx = replace(new_ctx, in_section=True)
        if pragma.has_directive("for") or pragma.has_directive("simd") or pragma.has_directive("taskloop"):
            new_ctx = replace(new_ctx, in_worksharing_loop=True)
        reduction_vars = tuple(pragma.clause_vars("reduction"))
        private_vars = tuple(
            pragma.clause_vars("private")
            + pragma.clause_vars("firstprivate")
            + pragma.clause_vars("lastprivate")
            + pragma.clause_vars("linear")
        )
        if reduction_vars:
            new_ctx = replace(new_ctx, reduction_vars=new_ctx.reduction_vars + reduction_vars)
        if private_vars:
            new_ctx = replace(new_ctx, private_vars=new_ctx.private_vars + private_vars)
        self._walk_stmt(stmt.body, new_ctx)

    # -- lock-call tracking inside sequential statement lists ----------------------

    def _walk_region_body(self, stmt: Optional[ast.Stmt], ctx: ParallelContext) -> None:
        """Walk a parallel-region body tracking omp_set_lock/omp_unset_lock."""
        if isinstance(stmt, ast.CompoundStmt):
            current = ctx
            for child in stmt.body:
                lock_name = _lock_call_target(child, "omp_set_lock")
                if lock_name is not None:
                    current = replace(current, locks_held=current.locks_held + (lock_name,))
                    continue
                unlock_name = _lock_call_target(child, "omp_unset_lock")
                if unlock_name is not None:
                    held = tuple(l for l in current.locks_held if l != unlock_name)
                    current = replace(current, locks_held=held)
                    continue
                if isinstance(child, ast.CompoundStmt):
                    self._walk_region_body(child, current)
                else:
                    self._walk_stmt(child, current)
            return
        self._walk_stmt(stmt, ctx)

    # -- entry point ---------------------------------------------------------------

    def collect(self, unit: ast.TranslationUnit) -> List[AccessSite]:
        for fn in unit.functions:
            if fn.body is None:
                continue
            self._find_parallel_regions(fn.body)
        return self.sites

    def _find_parallel_regions(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.OmpStmt):
            pragma = stmt.pragma
            if pragma.has_directive("parallel") or pragma.has_directive("simd") or pragma.has_directive("target"):
                self._region_counter += 1
                ctx = ParallelContext(
                    region_index=self._region_counter,
                    directives=pragma.directives,
                    in_worksharing_loop=pragma.has_directive("for")
                    or pragma.has_directive("simd"),
                    reduction_vars=tuple(pragma.clause_vars("reduction")),
                    private_vars=tuple(
                        pragma.clause_vars("private")
                        + pragma.clause_vars("firstprivate")
                        + pragma.clause_vars("lastprivate")
                        + pragma.clause_vars("linear")
                    ),
                )
                self._walk_region_body(stmt.body, ctx)
                return
            # non-parallel OpenMP statement outside a region (rare): recurse
            if stmt.body is not None:
                self._find_parallel_regions(stmt.body)
            return
        for child in stmt.children():
            if isinstance(child, ast.Stmt):
                self._find_parallel_regions(child)


def _lock_call_target(stmt: ast.Stmt, fn_name: str) -> Optional[str]:
    """Return the lock variable name when ``stmt`` is ``fn_name(&lock)``."""
    if not isinstance(stmt, ast.ExprStmt):
        return None
    expr = stmt.expr
    if not isinstance(expr, ast.Call) or expr.name != fn_name or not expr.args:
        return None
    arg = expr.args[0]
    if isinstance(arg, ast.AddressOf) and isinstance(arg.operand, ast.Identifier):
        return arg.operand.name
    if isinstance(arg, ast.Identifier):
        return arg.name
    return None


def extract_accesses(unit: ast.TranslationUnit) -> List[AccessSite]:
    """Extract every memory access inside OpenMP parallel constructs.

    Accesses outside any parallel construct are not reported: they cannot
    participate in a data race between team threads.
    """
    return _AccessCollector().collect(unit)
