"""Memory-access extraction from parsed OpenMP programs.

The extractor walks a :class:`~repro.cparse.ast.TranslationUnit`, finds every
OpenMP parallel construct, and lists the memory accesses its dynamic extent
performs: which variable, scalar or subscripted, read or written, at which
source location, under which synchronization (critical / atomic / ordered /
locks held), and inside which loops.

Beyond the raw access sites, the extractor now builds the *facts* the
phase-aware static analyzer needs:

* a barrier-delimited **phase number** per access (explicit ``barrier``,
  implicit barriers at the end of ``for``/``sections``/``single`` worksharing
  constructs, suppressed by ``nowait``);
* **construct identity** for single-thread constructs (``single``/``master``/
  ``section``) and a top-level statement index inside them, so sequential
  execution and ``taskwait`` ordering can be decided;
* **task records** (spawn point, multiplicity, ``depend`` sets,
  ``firstprivate`` captures) per explicit ``task`` construct;
* the **distributed induction variables** a worksharing/simd construct binds
  (``collapse(n)`` aware), with constant-propagated loop value ranges;
* unit-level facts: an integer-constant environment, **injective index
  arrays** (single affine store outside any parallel region), and atomic
  "ticket" variables handed out by ``atomic capture``.

Both the static race detector and the simulated language models' feature
extractor are built on these access sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.cparse import ast

__all__ = [
    "AccessModel",
    "AccessSite",
    "ParallelContext",
    "RegionSummary",
    "TaskInfo",
    "extract_access_model",
    "extract_accesses",
    "render_expr",
]


def render_expr(expr: ast.Expr) -> str:
    """Render an expression back to compact C-like text.

    Used to report accesses in the same textual form the corpus ground truth
    and the DRB header comments use (``a[i+1]``, ``sum`` ...).
    """
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.FloatLiteral):
        return expr.text or repr(expr.value)
    if isinstance(expr, ast.StringLiteral):
        return expr.value
    if isinstance(expr, ast.ArraySubscript):
        return f"{render_expr(expr.base)}[{render_expr(expr.index)}]"
    if isinstance(expr, ast.BinaryOp):
        return f"{render_expr(expr.left)}{expr.op}{render_expr(expr.right)}"
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op}{render_expr(expr.operand)}"
    if isinstance(expr, ast.Assignment):
        return f"{render_expr(expr.target)} {expr.op} {render_expr(expr.value)}"
    if isinstance(expr, ast.IncDec):
        inner = render_expr(expr.operand)
        return f"{expr.op}{inner}" if expr.prefix else f"{inner}{expr.op}"
    if isinstance(expr, ast.Call):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.AddressOf):
        return f"&{render_expr(expr.operand)}"
    if isinstance(expr, ast.Deref):
        return f"*{render_expr(expr.operand)}"
    if isinstance(expr, ast.ConditionalExpr):
        return (
            f"{render_expr(expr.cond)} ? {render_expr(expr.then)} : "
            f"{render_expr(expr.other)}"
        )
    return "<expr>"


@dataclass(frozen=True)
class ParallelContext:
    """Synchronization/worksharing context an access site sits in."""

    region_index: int
    directives: Tuple[str, ...]
    in_worksharing_loop: bool = False
    loop_variables: Tuple[str, ...] = ()
    in_critical: bool = False
    critical_name: Optional[str] = None
    in_atomic: bool = False
    in_ordered: bool = False
    in_master: bool = False
    in_single: bool = False
    in_task: bool = False
    in_section: bool = False
    locks_held: Tuple[str, ...] = ()
    reduction_vars: Tuple[str, ...] = ()
    private_vars: Tuple[str, ...] = ()
    # Phase/MHP facts.
    phase: int = 0
    construct_id: Optional[int] = None
    construct_kind: Optional[str] = None
    construct_seq: Optional[int] = None
    task_id: Optional[int] = None
    taskgroup_seq: Optional[int] = None
    # Distribution facts: which induction variables take different values in
    # concurrent instances of the innermost distributing construct.
    distributed_vars: Tuple[str, ...] = ()
    distribution_construct: Optional[int] = None
    # ``linear`` clause variables with a nonzero constant step: their value is
    # a bijection of the iteration number of the distributing loop.
    linear_vars: Tuple[str, ...] = ()
    # Constant-propagated (lo, hi) inclusive value range per loop variable,
    # aligned with ``loop_variables``; ``None`` where bounds are unknown.
    loop_ranges: Tuple[Optional[Tuple[int, int]], ...] = ()
    safelen: Optional[int] = None
    simd_only: bool = False
    atomic_kind: Optional[str] = None

    @property
    def is_protected(self) -> bool:
        """True when the access is guarded by mutual exclusion."""
        return self.in_critical or self.in_atomic or bool(self.locks_held)

    def loop_range(self, variable: str) -> Optional[Tuple[int, int]]:
        """Inclusive value range of an enclosing loop variable, if known."""
        for name, rng in zip(self.loop_variables, self.loop_ranges):
            if name == variable:
                return rng
        return None


@dataclass(frozen=True)
class AccessSite:
    """One syntactic memory access inside a parallel construct."""

    variable: str
    expr_text: str
    is_write: bool
    line: int
    col: int
    subscript: Optional[str]
    context: ParallelContext

    @property
    def operation(self) -> str:
        return "W" if self.is_write else "R"

    @property
    def is_scalar(self) -> bool:
        return self.subscript is None


@dataclass(frozen=True)
class TaskInfo:
    """Facts about one explicit ``task`` construct."""

    task_id: int
    construct_id: Optional[int]
    spawn_seq: Optional[int]
    multiple: bool
    spawn_loop_vars: Tuple[str, ...] = ()
    firstprivate: Tuple[str, ...] = ()
    depend_in: Tuple[str, ...] = ()
    depend_out: Tuple[str, ...] = ()
    taskgroup_seq: Optional[int] = None


@dataclass
class RegionSummary:
    """Per-parallel-region facts collected alongside the access sites."""

    region_index: int
    entry_line: int
    phase_count: int = 1
    ticket_vars: Set[str] = field(default_factory=set)
    tasks: Dict[int, TaskInfo] = field(default_factory=dict)
    # construct_id -> sorted top-level statement indices holding a taskwait
    taskwaits: Dict[Optional[int], List[int]] = field(default_factory=dict)


@dataclass
class AccessModel:
    """Access sites plus the region- and unit-level facts around them."""

    sites: List[AccessSite] = field(default_factory=list)
    regions: Dict[int, RegionSummary] = field(default_factory=dict)
    constants: Dict[str, int] = field(default_factory=dict)
    # array name -> human-readable witness of why its stores are injective
    injective_arrays: Dict[str, str] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# unit-level pre-pass: constants, assigned names, index-array stores
# ---------------------------------------------------------------------------


def _eval_const(expr: Optional[ast.Expr], env: Dict[str, int]) -> Optional[int]:
    """Evaluate an integer-constant expression under ``env``, or ``None``."""
    if expr is None:
        return None
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.Identifier):
        return env.get(expr.name)
    if isinstance(expr, ast.UnaryOp):
        inner = _eval_const(expr.operand, env)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "+":
            return inner
        return None
    if isinstance(expr, ast.BinaryOp):
        left = _eval_const(expr.left, env)
        right = _eval_const(expr.right, env)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/" and right != 0:
            return left // right
        if expr.op == "%" and right != 0:
            return left % right
        return None
    return None


def _linear_coeff(
    expr: ast.Expr,
    var: str,
    env: Dict[str, int],
    assigned: Set[str],
) -> Optional[int]:
    """Coefficient of ``var`` when ``expr`` is linear in it, else ``None``.

    Identifiers other than ``var`` count as loop-invariant (coefficient 0)
    only when they are never assigned in the function; anything non-linear
    (division, modulus, products of variables) yields ``None``.
    """
    if isinstance(expr, ast.IntLiteral):
        return 0
    if isinstance(expr, ast.Identifier):
        if expr.name == var:
            return 1
        if expr.name in env or expr.name not in assigned:
            return 0
        return None
    if isinstance(expr, ast.UnaryOp):
        inner = _linear_coeff(expr.operand, var, env, assigned)
        if inner is None:
            return None
        return -inner if expr.op == "-" else (inner if expr.op == "+" else None)
    if isinstance(expr, ast.BinaryOp):
        left = _linear_coeff(expr.left, var, env, assigned)
        right = _linear_coeff(expr.right, var, env, assigned)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if left == 0 and right == 0:
                return 0
            if left == 0:
                mult = _eval_const(expr.left, env)
                return mult * right if mult is not None else None
            if right == 0:
                mult = _eval_const(expr.right, env)
                return left * mult if mult is not None else None
            return None
        if expr.op in ("/", "%"):
            return 0 if left == 0 and right == 0 else None
        return None
    return None


@dataclass
class _ArrayStore:
    """One ``arr[index] = value`` store found during the unit pre-pass."""

    array: str
    index: ast.Expr
    value: ast.Expr
    loop_vars: Tuple[str, ...]
    in_region: bool


class _UnitPrepass:
    """Whole-unit walk gathering constants and index-array stores."""

    def __init__(self) -> None:
        self.assigned: Set[str] = set()
        self.decl_inits: List[Tuple[str, ast.Expr]] = []
        self._decl_seen: Set[str] = set()
        self.stores: List[_ArrayStore] = []

    def run(self, unit: ast.TranslationUnit) -> None:
        for fn in unit.functions:
            if fn.body is not None:
                self._walk_stmt(fn.body, (), False)

    # -- traversal -----------------------------------------------------------

    def _note_expr(self, expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Assignment) and isinstance(expr.target, ast.Identifier):
            self.assigned.add(expr.target.name)
        if isinstance(expr, ast.IncDec) and isinstance(expr.operand, ast.Identifier):
            self.assigned.add(expr.operand.name)
        for child in expr.children():
            if isinstance(child, ast.Expr):
                self._note_expr(child)

    def _walk_stmt(
        self, stmt: Optional[ast.Stmt], loop_vars: Tuple[str, ...], in_region: bool
    ) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Declaration):
            for decl in stmt.declarators:
                if decl.init is not None:
                    self._note_expr(decl.init)
                    if not decl.is_array and decl.name not in self._decl_seen:
                        self._decl_seen.add(decl.name)
                        self.decl_inits.append((decl.name, decl.init))
            return
        if isinstance(stmt, ast.ExprStmt):
            expr = stmt.expr
            if (
                isinstance(expr, ast.Assignment)
                and isinstance(expr.target, ast.ArraySubscript)
                and not isinstance(expr.target.base, ast.ArraySubscript)
                and isinstance(expr.target.base, ast.Identifier)
            ):
                self.stores.append(
                    _ArrayStore(
                        array=expr.target.base.name,
                        index=expr.target.index,
                        value=expr.value,
                        loop_vars=loop_vars,
                        in_region=in_region,
                    )
                )
            self._note_expr(expr)
            return
        if isinstance(stmt, ast.ForStmt):
            var = stmt.loop_variable()
            inner = loop_vars + (var,) if var else loop_vars
            self._walk_stmt(stmt.init, loop_vars, in_region)
            self._note_expr(stmt.cond)
            self._note_expr(stmt.step)
            self._walk_stmt(stmt.body, inner, in_region)
            return
        if isinstance(stmt, ast.OmpStmt):
            pragma = stmt.pragma
            entered = in_region or any(
                pragma.has_directive(d) for d in ("parallel", "simd", "target")
            )
            self._walk_stmt(stmt.body, loop_vars, entered)
            return
        for child in stmt.children():
            if isinstance(child, ast.Stmt):
                self._walk_stmt(child, loop_vars, in_region)
            elif isinstance(child, ast.Expr):
                self._note_expr(child)

    # -- results -------------------------------------------------------------

    def constants(self) -> Dict[str, int]:
        """Integer declarations never reassigned: usable as loop bounds.

        Initialisers are folded in declaration order, so derived constants
        (``int half = len / 2;``) resolve as long as every name they depend
        on is itself constant.
        """
        env: Dict[str, int] = {}
        for name, init in self.decl_inits:
            if name in self.assigned:
                continue
            value = _eval_const(init, env)
            if value is not None:
                env[name] = value
        return env

    def injective_arrays(self) -> Dict[str, str]:
        """Arrays whose element values form an injective map of the index.

        Qualifies when the whole unit contains exactly one store to the array,
        outside any parallel region, of the shape ``arr[v] = f(v)`` with ``f``
        affine in the loop variable ``v`` with non-zero coefficient — a
        permutation/identity-style initialisation whose values never repeat.
        """
        env = self.constants()
        by_array: Dict[str, List[_ArrayStore]] = {}
        for store in self.stores:
            by_array.setdefault(store.array, []).append(store)
        result: Dict[str, str] = {}
        for name, stores in by_array.items():
            if len(stores) != 1:
                continue
            store = stores[0]
            if store.in_region or not store.loop_vars:
                continue
            if not isinstance(store.index, ast.Identifier):
                continue
            var = store.index.name
            if var != store.loop_vars[-1]:
                continue
            coeff = _linear_coeff(store.value, var, env, self.assigned)
            if coeff is None or coeff == 0:
                continue
            result[name] = f"{name}[{var}] = {render_expr(store.value)}"
        return result


def _loop_value_range(
    stmt: ast.ForStmt, env: Dict[str, int]
) -> Optional[Tuple[int, int]]:
    """Inclusive value range of a canonical for-loop's induction variable."""
    var = stmt.loop_variable()
    if var is None or stmt.cond is None:
        return None
    init = stmt.init
    start: Optional[int] = None
    if isinstance(init, ast.Declaration) and init.declarators:
        start = _eval_const(init.declarators[0].init, env)
    elif isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assignment):
        start = _eval_const(init.expr.value, env)
    if start is None:
        return None
    cond = stmt.cond
    if not (isinstance(cond, ast.BinaryOp) and isinstance(cond.left, ast.Identifier)):
        return None
    if cond.left.name != var:
        return None
    bound = _eval_const(cond.right, env)
    if bound is None:
        return None
    if cond.op == "<":
        lo, hi = start, bound - 1
    elif cond.op == "<=":
        lo, hi = start, bound
    elif cond.op == ">":
        lo, hi = bound + 1, start
    elif cond.op == ">=":
        lo, hi = bound, start
    else:
        return None
    if lo > hi:
        return None
    return (lo, hi)


def _bound_loop_vars(body: Optional[ast.Stmt], count: int) -> Tuple[str, ...]:
    """Induction variables of the ``count`` loops a worksharing pragma binds."""
    out: List[str] = []
    stmt = body
    while isinstance(stmt, ast.ForStmt) and len(out) < count:
        var = stmt.loop_variable()
        if var is None:
            break
        out.append(var)
        inner: Optional[ast.Stmt] = stmt.body
        # Skip a single-statement compound wrapper between nested loops.
        while isinstance(inner, ast.CompoundStmt) and len(inner.body) == 1:
            inner = inner.body[0]
        stmt = inner  # type: ignore[assignment]
    return tuple(out)


def _clause_int(pragma: ast.OmpPragma, name: str) -> Optional[int]:
    clause = pragma.clause(name)
    if clause is None or not clause.arguments:
        return None
    try:
        return int(clause.arguments[0])
    except ValueError:
        return None


def _linear_step_vars(pragma: ast.OmpPragma) -> Tuple[str, ...]:
    """Variables of ``linear`` clauses whose step is a nonzero constant.

    ``linear(j: 2)`` parses as ``["j", "2"]`` (list first, step last).  A
    nonzero step makes the variable advance in lockstep with the loop
    iteration, so its per-iteration value is a bijection of the iteration
    number — subscripts over it separate concurrent iterations just like the
    induction variable itself.  A missing step defaults to 1.
    """
    out: List[str] = []
    for clause in pragma.clauses:
        if clause.name != "linear" or not clause.arguments:
            continue
        args = list(clause.arguments)
        step = 1
        if len(args) >= 2:
            try:
                step = int(args[-1])
            except ValueError:
                pass
            else:
                args = args[:-1]
        if step == 0:
            continue
        for chunk in args:
            for name in chunk.split(","):
                name = name.strip()
                if name:
                    out.append(name)
    return tuple(out)


def _capture_ticket_var(body: Optional[ast.Stmt]) -> Optional[str]:
    """Target of an ``atomic capture`` ticket idiom ``v = ctr++`` / ``v = ++ctr``."""
    if not isinstance(body, ast.ExprStmt):
        return None
    expr = body.expr
    if (
        isinstance(expr, ast.Assignment)
        and not expr.is_compound
        and isinstance(expr.target, ast.Identifier)
        and isinstance(expr.value, ast.IncDec)
    ):
        return expr.target.name
    return None


# ---------------------------------------------------------------------------
# access collection
# ---------------------------------------------------------------------------


class _AccessCollector:
    """Stateful walker that accumulates access sites and region facts."""

    def __init__(self) -> None:
        self.model = AccessModel()
        self._region_counter = 0
        self._construct_counter = 0
        self._task_counter = 0
        self._phase = 0
        self._summary: Optional[RegionSummary] = None

    def _next_construct(self) -> int:
        self._construct_counter += 1
        return self._construct_counter

    # -- expression traversal -----------------------------------------------------

    def _emit(self, expr: ast.Expr, is_write: bool, ctx: ParallelContext) -> None:
        if ctx.phase != self._phase:
            ctx = replace(ctx, phase=self._phase)
        if isinstance(expr, ast.Identifier):
            self.model.sites.append(
                AccessSite(
                    variable=expr.name,
                    expr_text=expr.name,
                    is_write=is_write,
                    line=expr.loc.line,
                    col=expr.loc.col,
                    subscript=None,
                    context=ctx,
                )
            )
            return
        if isinstance(expr, ast.ArraySubscript):
            root = expr.root_name() or "<anon>"
            subscript = ",".join(render_expr(ix) for ix in expr.indices())
            self.model.sites.append(
                AccessSite(
                    variable=root,
                    expr_text=render_expr(expr),
                    is_write=is_write,
                    line=expr.loc.line,
                    col=expr.loc.col,
                    subscript=subscript,
                    context=ctx,
                )
            )
            # subscript expressions themselves are reads
            for ix in expr.indices():
                self._walk_expr(ix, ctx)
            return
        # Fallback: treat as a read traversal of sub-expressions.
        self._walk_expr(expr, ctx)

    def _walk_expr(self, expr: Optional[ast.Expr], ctx: ParallelContext) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Assignment):
            self._emit(expr.target, True, ctx)
            if expr.is_compound:
                self._emit(expr.target, False, ctx)
            self._walk_expr(expr.value, ctx)
            return
        if isinstance(expr, ast.IncDec):
            self._emit(expr.operand, True, ctx)
            self._emit(expr.operand, False, ctx)
            return
        if isinstance(expr, (ast.Identifier, ast.ArraySubscript)):
            self._emit(expr, False, ctx)
            return
        if isinstance(expr, ast.BinaryOp):
            self._walk_expr(expr.left, ctx)
            self._walk_expr(expr.right, ctx)
            return
        if isinstance(expr, ast.UnaryOp):
            self._walk_expr(expr.operand, ctx)
            return
        if isinstance(expr, ast.Call):
            for arg in expr.args:
                self._walk_expr(arg, ctx)
            return
        if isinstance(expr, (ast.AddressOf, ast.Deref)):
            self._walk_expr(expr.operand, ctx)
            return
        if isinstance(expr, ast.ConditionalExpr):
            self._walk_expr(expr.cond, ctx)
            self._walk_expr(expr.then, ctx)
            self._walk_expr(expr.other, ctx)
            return
        # literals: nothing to record

    # -- statement traversal ------------------------------------------------------

    def _walk_stmt(self, stmt: Optional[ast.Stmt], ctx: ParallelContext) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.ExprStmt):
            self._walk_expr(stmt.expr, ctx)
            return
        if isinstance(stmt, ast.Declaration):
            for decl in stmt.declarators:
                if decl.init is not None:
                    self._walk_expr(decl.init, ctx)
            return
        if isinstance(stmt, ast.CompoundStmt):
            for child in stmt.body:
                self._walk_stmt(child, ctx)
            return
        if isinstance(stmt, ast.ForStmt):
            loop_var = stmt.loop_variable()
            inner_ctx = ctx
            if loop_var is not None:
                rng = _loop_value_range(stmt, self.model.constants)
                inner_ctx = replace(
                    ctx,
                    loop_variables=ctx.loop_variables + (loop_var,),
                    loop_ranges=ctx.loop_ranges + (rng,),
                )
            if stmt.init is not None:
                self._walk_stmt(stmt.init, inner_ctx)
            self._walk_expr(stmt.cond, inner_ctx)
            self._walk_expr(stmt.step, inner_ctx)
            self._walk_stmt(stmt.body, inner_ctx)
            return
        if isinstance(stmt, ast.WhileStmt):
            self._walk_expr(stmt.cond, ctx)
            self._walk_stmt(stmt.body, ctx)
            return
        if isinstance(stmt, ast.IfStmt):
            self._walk_expr(stmt.cond, ctx)
            self._walk_stmt(stmt.then, ctx)
            self._walk_stmt(stmt.other, ctx)
            return
        if isinstance(stmt, ast.ReturnStmt):
            self._walk_expr(stmt.value, ctx)
            return
        if isinstance(stmt, ast.OmpStmt):
            self._walk_omp(stmt, ctx)
            return
        # Null/Break/Continue: nothing to record.

    def _walk_sequence(self, body: Optional[ast.Stmt], ctx: ParallelContext) -> None:
        """Walk a construct body assigning top-level statement indices."""
        if isinstance(body, ast.CompoundStmt):
            for index, child in enumerate(body.body):
                self._walk_stmt(child, replace(ctx, construct_seq=index))
            return
        self._walk_stmt(body, replace(ctx, construct_seq=0))

    def _walk_omp(self, stmt: ast.OmpStmt, ctx: ParallelContext) -> None:
        pragma = stmt.pragma
        summary = self._summary

        if pragma.has_directive("barrier"):
            self._phase += 1
            if summary is not None:
                summary.phase_count = self._phase + 1
            return
        if pragma.has_directive("taskwait"):
            if summary is not None:
                seq = ctx.construct_seq if ctx.construct_seq is not None else -1
                summary.taskwaits.setdefault(ctx.construct_id, []).append(seq)
            return

        new_ctx = ctx
        if pragma.has_directive("critical"):
            name_clause = pragma.clause("name")
            new_ctx = replace(
                new_ctx,
                in_critical=True,
                critical_name=name_clause.arguments[0] if name_clause else None,
            )
        if pragma.has_directive("atomic"):
            kind = next(
                (k for k in ("read", "write", "update", "capture") if pragma.clause(k)),
                "update",
            )
            new_ctx = replace(new_ctx, in_atomic=True, atomic_kind=kind)
            if kind == "capture" and summary is not None:
                ticket = _capture_ticket_var(stmt.body)
                if ticket is not None:
                    summary.ticket_vars.add(ticket)
        if pragma.has_directive("ordered") and stmt.body is not None:
            new_ctx = replace(new_ctx, in_ordered=True)

        reduction_vars = tuple(pragma.clause_vars("reduction"))
        private_vars = tuple(
            pragma.clause_vars("private")
            + pragma.clause_vars("firstprivate")
            + pragma.clause_vars("lastprivate")
            + pragma.clause_vars("linear")
        )
        if reduction_vars:
            new_ctx = replace(new_ctx, reduction_vars=new_ctx.reduction_vars + reduction_vars)
        if private_vars:
            new_ctx = replace(new_ctx, private_vars=new_ctx.private_vars + private_vars)

        # -- explicit task: record spawn facts, walk body in task context -----
        if pragma.has_directive("task") and not pragma.has_directive("taskloop"):
            self._walk_task(stmt, pragma, new_ctx)
            return

        # -- single-thread constructs get an identity and a statement sequence
        for kind, flag in (("single", "in_single"), ("master", "in_master")):
            if pragma.has_directive(kind):
                cid = self._next_construct()
                new_ctx = replace(
                    new_ctx,
                    **{flag: True},
                    construct_id=cid,
                    construct_kind=kind,
                    construct_seq=None,
                )
                self._walk_sequence(stmt.body, new_ctx)
                if kind == "single" and pragma.clause("nowait") is None:
                    self._bump_phase()
                return
        if pragma.has_directive("section") and not pragma.has_directive("sections"):
            cid = self._next_construct()
            new_ctx = replace(
                new_ctx,
                in_section=True,
                construct_id=cid,
                construct_kind="section",
                construct_seq=None,
            )
            self._walk_sequence(stmt.body, new_ctx)
            return
        if pragma.has_directive("taskgroup"):
            new_ctx = replace(new_ctx, taskgroup_seq=ctx.construct_seq)
            self._walk_stmt(stmt.body, new_ctx)
            return

        # -- worksharing loops / sections containers --------------------------
        is_ws_loop = (
            pragma.has_directive("for")
            or pragma.has_directive("simd")
            or pragma.has_directive("taskloop")
        )
        if is_ws_loop:
            cid = self._next_construct()
            collapse = _clause_int(pragma, "collapse") or 1
            bound = _bound_loop_vars(stmt.body, collapse)
            new_ctx = replace(
                new_ctx,
                in_worksharing_loop=True,
                distributed_vars=bound,
                distribution_construct=cid,
                linear_vars=new_ctx.linear_vars + _linear_step_vars(pragma),
                safelen=_clause_int(pragma, "safelen") or new_ctx.safelen,
            )
            self._walk_stmt(stmt.body, new_ctx)
            if pragma.has_directive("for") and pragma.clause("nowait") is None:
                self._bump_phase()
            return
        if pragma.has_directive("sections"):
            self._walk_stmt(stmt.body, new_ctx)
            if pragma.clause("nowait") is None:
                self._bump_phase()
            return

        self._walk_stmt(stmt.body, new_ctx)

    def _walk_task(
        self, stmt: ast.OmpStmt, pragma: ast.OmpPragma, ctx: ParallelContext
    ) -> None:
        self._task_counter += 1
        tid = self._task_counter
        depend_in: List[str] = []
        depend_out: List[str] = []
        for clause in pragma.clauses:
            if clause.name != "depend" or not clause.arguments:
                continue
            modifier, *names = clause.arguments
            if modifier == "in":
                depend_in.extend(names)
            elif modifier in ("out", "inout"):
                depend_out.extend(names)
        firstprivate = tuple(pragma.clause_vars("firstprivate"))
        multiple = bool(ctx.loop_variables) or not (
            ctx.in_single or ctx.in_master or ctx.in_section
        )
        info = TaskInfo(
            task_id=tid,
            construct_id=ctx.construct_id,
            spawn_seq=ctx.construct_seq,
            multiple=multiple,
            spawn_loop_vars=ctx.loop_variables,
            firstprivate=firstprivate,
            depend_in=tuple(depend_in),
            depend_out=tuple(depend_out),
            taskgroup_seq=ctx.taskgroup_seq,
        )
        if self._summary is not None:
            self._summary.tasks[tid] = info
        # A firstprivate capture of a spawning-loop induction variable gives
        # every task instance its own distinct value: it distributes instances.
        dvars = tuple(v for v in ctx.loop_variables if v in firstprivate)
        task_cid = self._next_construct()
        task_ctx = replace(
            ctx,
            in_task=True,
            task_id=tid,
            construct_kind="task",
            distributed_vars=dvars if multiple else (),
            distribution_construct=task_cid if (multiple and dvars) else None,
        )
        self._walk_stmt(stmt.body, task_ctx)

    def _bump_phase(self) -> None:
        self._phase += 1
        if self._summary is not None:
            self._summary.phase_count = self._phase + 1

    # -- lock-call tracking inside sequential statement lists ----------------------

    def _walk_region_body(self, stmt: Optional[ast.Stmt], ctx: ParallelContext) -> None:
        """Walk a parallel-region body tracking omp_set_lock/omp_unset_lock."""
        if isinstance(stmt, ast.CompoundStmt):
            current = ctx
            for child in stmt.body:
                lock_name = _lock_call_target(child, "omp_set_lock")
                if lock_name is not None:
                    current = replace(current, locks_held=current.locks_held + (lock_name,))
                    continue
                unlock_name = _lock_call_target(child, "omp_unset_lock")
                if unlock_name is not None:
                    held = tuple(l for l in current.locks_held if l != unlock_name)
                    current = replace(current, locks_held=held)
                    continue
                if isinstance(child, ast.CompoundStmt):
                    self._walk_region_body(child, current)
                else:
                    self._walk_stmt(child, current)
            return
        self._walk_stmt(stmt, ctx)

    # -- entry point ---------------------------------------------------------------

    def collect(self, unit: ast.TranslationUnit) -> AccessModel:
        prepass = _UnitPrepass()
        prepass.run(unit)
        self.model.constants = prepass.constants()
        self.model.injective_arrays = prepass.injective_arrays()
        for fn in unit.functions:
            if fn.body is None:
                continue
            self._find_parallel_regions(fn.body)
        return self.model

    def _find_parallel_regions(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.OmpStmt):
            pragma = stmt.pragma
            if pragma.has_directive("parallel") or pragma.has_directive("simd") or pragma.has_directive("target"):
                self._region_counter += 1
                self._phase = 0
                summary = RegionSummary(
                    region_index=self._region_counter,
                    entry_line=pragma.loc.line,
                )
                self.model.regions[self._region_counter] = summary
                self._summary = summary
                in_ws = pragma.has_directive("for") or pragma.has_directive("simd")
                cid = self._next_construct()
                collapse = _clause_int(pragma, "collapse") or 1
                ctx = ParallelContext(
                    region_index=self._region_counter,
                    directives=pragma.directives,
                    in_worksharing_loop=in_ws,
                    reduction_vars=tuple(pragma.clause_vars("reduction")),
                    private_vars=tuple(
                        pragma.clause_vars("private")
                        + pragma.clause_vars("firstprivate")
                        + pragma.clause_vars("lastprivate")
                        + pragma.clause_vars("linear")
                    ),
                    distributed_vars=(
                        _bound_loop_vars(stmt.body, collapse) if in_ws else ()
                    ),
                    distribution_construct=cid if in_ws else None,
                    linear_vars=_linear_step_vars(pragma) if in_ws else (),
                    safelen=_clause_int(pragma, "safelen"),
                    simd_only=(
                        pragma.has_directive("simd")
                        and not pragma.has_directive("parallel")
                    ),
                )
                self._walk_region_body(stmt.body, ctx)
                self._summary = None
                return
            # non-parallel OpenMP statement outside a region (rare): recurse
            if stmt.body is not None:
                self._find_parallel_regions(stmt.body)
            return
        for child in stmt.children():
            if isinstance(child, ast.Stmt):
                self._find_parallel_regions(child)


def _lock_call_target(stmt: ast.Stmt, fn_name: str) -> Optional[str]:
    """Return the lock variable name when ``stmt`` is ``fn_name(&lock)``."""
    if not isinstance(stmt, ast.ExprStmt):
        return None
    expr = stmt.expr
    if not isinstance(expr, ast.Call) or expr.name != fn_name or not expr.args:
        return None
    arg = expr.args[0]
    if isinstance(arg, ast.AddressOf) and isinstance(arg.operand, ast.Identifier):
        return arg.operand.name
    if isinstance(arg, ast.Identifier):
        return arg.name
    return None


def extract_access_model(unit: ast.TranslationUnit) -> AccessModel:
    """Extract access sites plus region/unit facts for the static analyzer."""
    return _AccessCollector().collect(unit)


def extract_accesses(unit: ast.TranslationUnit) -> List[AccessSite]:
    """Extract every memory access inside OpenMP parallel constructs.

    Accesses outside any parallel construct are not reported: they cannot
    participate in a data race between team threads.
    """
    return extract_access_model(unit).sites
