"""``repro analyze`` — run the static race analyzer from the command line.

Usage::

    python -m repro analyze file.c other.c        # text report per file
    python -m repro analyze --json file.c         # machine-readable report
    python -m repro analyze --corpus              # the whole generated corpus
    python -m repro analyze --corpus --stats      # per-rule fire counts and
                                                  # phase-partition telemetry
    python -m repro analyze --corpus --self-lint  # CI gate: nonzero exit on
                                                  # analyzer crashes or
                                                  # diagnostics missing spans
                                                  # or rule IDs
    python -m repro analyze --jobs 8 *.c          # engine-parallel fan-out

JSON schema (one object; ``files`` in input order)::

    {
      "files": [
        {
          "file": "path-or-corpus-name",
          "error": "parse error ..."          // only on analyzer failure
          "has_race": true,
          "confidence": 0.88,
          "accesses": 12, "regions": 1,
          "phases": {"1": 2},                 // region index -> phase count
          "diagnostics": [
            {"rule": "DRD-LOOP-CARRIED", "message": "...", "variable": "a",
             "confidence": 0.88, "region": 1,
             "primary":   {"line": 12, "col": 5, "expr": "a[i]"},
             "secondary": {"line": 12, "col": 13, "expr": "a[i+1]"}}
          ],
          "suppressions": {"DRD-PHASE-ORDERED": 3}
        }
      ],
      "stats": { ... }                        // with --stats
    }
"""

from __future__ import annotations

import argparse
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import RACE_RULES, SUPPRESSION_RULES, Diagnostic
from repro.analysis.static_race import StaticRaceDetector, StaticRaceReport

__all__ = ["main", "run_analyze", "FileResult"]


@dataclass
class FileResult:
    """Analyzer outcome for one input file (or corpus record)."""

    name: str
    report: Optional[StaticRaceReport] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        if self.report is None:
            return {"file": self.name, "error": self.error or "analysis failed"}
        report = self.report
        return {
            "file": self.name,
            "has_race": report.has_race,
            "confidence": round(report.confidence, 3),
            "accesses": report.analyzed_accesses,
            "regions": report.analyzed_regions,
            "phases": {str(k): v for k, v in sorted(report.phase_counts.items())},
            "diagnostics": [d.to_dict() for d in report.diagnostics],
            "suppressions": dict(sorted(report.suppressions.items())),
        }


@dataclass
class _Telemetry:
    """Aggregated ``--stats`` counters across every analyzed input."""

    files: int = 0
    failures: int = 0
    racy: int = 0
    fired: Counter = field(default_factory=Counter)
    suppressed: Counter = field(default_factory=Counter)
    regions: int = 0
    multi_phase_regions: int = 0
    max_phases: int = 1

    def add(self, result: FileResult) -> None:
        self.files += 1
        if result.report is None:
            self.failures += 1
            return
        report = result.report
        self.racy += int(report.has_race)
        for diagnostic in report.diagnostics:
            self.fired[diagnostic.rule_id] += 1
        self.suppressed.update(report.suppressions)
        self.regions += len(report.phase_counts)
        for count in report.phase_counts.values():
            if count > 1:
                self.multi_phase_regions += 1
            self.max_phases = max(self.max_phases, count)

    def to_dict(self) -> Dict[str, object]:
        return {
            "files": self.files,
            "failures": self.failures,
            "racy": self.racy,
            "rule_fires": dict(sorted(self.fired.items())),
            "suppressions": dict(sorted(self.suppressed.items())),
            "regions": self.regions,
            "multi_phase_regions": self.multi_phase_regions,
            "max_phases": self.max_phases,
        }

    def render(self) -> str:
        lines = [
            f"[analyze] files={self.files} racy={self.racy} "
            f"clean={self.files - self.racy - self.failures} failures={self.failures}",
            f"[analyze] regions={self.regions} "
            f"multi_phase={self.multi_phase_regions} max_phases={self.max_phases}",
            "[analyze] race rules fired:",
        ]
        for rule, count in sorted(self.fired.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"[analyze]   {rule:<24} {count}")
        if not self.fired:
            lines.append("[analyze]   (none)")
        lines.append("[analyze] suppressions:")
        for rule, count in sorted(
            self.suppressed.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"[analyze]   {rule:<24} {count}")
        if not self.suppressed:
            lines.append("[analyze]   (none)")
        return "\n".join(lines)


def _analyze_one(
    detector: StaticRaceDetector, item: Tuple[str, str]
) -> FileResult:
    name, code = item
    try:
        return FileResult(name=name, report=detector.analyze_source(code))
    except Exception as exc:  # the self-lint gate reports these
        return FileResult(name=name, error=f"{type(exc).__name__}: {exc}")


def _format_span(diagnostic: Diagnostic) -> str:
    spans = f"{diagnostic.primary.line}:{diagnostic.primary.col} ({diagnostic.primary.text})"
    if diagnostic.secondary is not None:
        spans += (
            f" vs {diagnostic.secondary.line}:{diagnostic.secondary.col}"
            f" ({diagnostic.secondary.text})"
        )
    return spans


def _render_text(result: FileResult) -> str:
    if result.report is None:
        return f"{result.name}: ERROR {result.error}"
    report = result.report
    verdict = "race" if report.has_race else "clean"
    lines = [
        f"{result.name}: {verdict} "
        f"(confidence {report.confidence:.2f}, {report.analyzed_accesses} accesses, "
        f"{report.analyzed_regions} region(s))"
    ]
    for diagnostic in report.diagnostics:
        lines.append(
            f"  {diagnostic.rule_id} {diagnostic.variable} at "
            f"{_format_span(diagnostic)} — {diagnostic.message}"
        )
    return "\n".join(lines)


def _lint_problems(results: Sequence[FileResult]) -> List[str]:
    """Self-lint findings: crashes, or diagnostics missing spans / rule IDs."""
    known = set(RACE_RULES) | set(SUPPRESSION_RULES)
    problems: List[str] = []
    for result in results:
        if result.report is None:
            problems.append(f"{result.name}: analyzer crashed: {result.error}")
            continue
        for diagnostic in result.report.diagnostics:
            if not diagnostic.rule_id or diagnostic.rule_id not in known:
                problems.append(
                    f"{result.name}: diagnostic with unknown rule id "
                    f"{diagnostic.rule_id!r}"
                )
            if diagnostic.primary.line <= 0 or diagnostic.primary.col <= 0:
                problems.append(
                    f"{result.name}: {diagnostic.rule_id} has no primary span"
                )
        for rule in result.report.suppressions:
            if rule not in known:
                problems.append(f"{result.name}: unknown suppression rule {rule!r}")
    return problems


def _load_inputs(
    files: Sequence[str], *, use_corpus: bool
) -> List[Tuple[str, str]]:
    items: List[Tuple[str, str]] = []
    if use_corpus:
        from repro.corpus import CorpusConfig, build_corpus

        for record in build_corpus(CorpusConfig()):
            items.append((record.name, record.code))
    for name in files:
        items.append((name, Path(name).read_text(encoding="utf-8")))
    return items


def run_analyze(
    items: Sequence[Tuple[str, str]], *, jobs: int = 1
) -> List[FileResult]:
    """Analyze ``(name, code)`` inputs, fanning out over engine executors.

    Results come back in input order regardless of the executor's completion
    order, so text/JSON output is deterministic.
    """
    from repro.engine import create_executor

    detector = StaticRaceDetector()
    executor = create_executor(jobs)
    try:
        return list(
            executor.map(lambda item: _analyze_one(detector, item), list(items))
        )
    finally:
        close = getattr(executor, "close", None)
        if close is not None:
            close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Run the phase-aware static race analyzer over C files.",
    )
    parser.add_argument("files", nargs="*", help="C source files to analyze")
    parser.add_argument(
        "--corpus",
        action="store_true",
        help="also analyze every record of the generated DRB-ML corpus",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit one JSON document instead of text"
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule fire counts and phase-partition telemetry",
    )
    parser.add_argument(
        "--self-lint",
        action="store_true",
        help=(
            "exit nonzero on analyzer crashes or diagnostics missing spans "
            "or rule IDs (the CI gate)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel file fan-out width (default: 1)",
    )
    args = parser.parse_args(argv)
    if not args.files and not args.corpus:
        parser.error("give FILE arguments and/or --corpus")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    try:
        items = _load_inputs(args.files, use_corpus=args.corpus)
    except OSError as exc:
        parser.error(str(exc))

    results = run_analyze(items, jobs=args.jobs)

    telemetry = _Telemetry()
    for result in results:
        telemetry.add(result)

    if args.json:
        payload: Dict[str, object] = {"files": [r.to_dict() for r in results]}
        if args.stats:
            payload["stats"] = telemetry.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=False))
    else:
        for result in results:
            print(_render_text(result))
        if args.stats:
            print(telemetry.render())

    exit_code = 0
    if args.self_lint:
        problems = _lint_problems(results)
        for problem in problems:
            print(f"[analyze-lint] {problem}")
        if problems:
            exit_code = 1
        else:
            print(
                f"[analyze-lint] ok: {len(results)} input(s), "
                f"{sum(len(r.report.diagnostics) for r in results if r.report)} "
                "diagnostics, all with rule IDs and spans"
            )
    return exit_code
