"""Cross-table run scheduler: every table's requests in one engine run.

The ``run_tableN`` drivers each split into a **plan** phase (build the
table's :class:`~repro.engine.requests.DetectionRequest` batch plus a
reducer that turns scored results back into table rows) and a **reduce**
phase.  A :class:`TablePlan` captures that split, and this module schedules
collections of plans:

* :func:`run_plans` — the interleaved path.  All plans' requests are
  concatenated into **one** :meth:`ExecutionEngine.run`; the engine chunks
  them by (model, strategy, scoring) across table boundaries and keeps the
  executor saturated for the whole evaluation, so one table's stragglers
  overlap the next table's work instead of leaving workers idle between
  drivers.  Result slices are dispatched back to each plan's reducer.
  Because the combined run flows through the engine's cost-model
  scheduling, the slowest (model, strategy) groups of the *whole*
  evaluation are dispatched first (LPT) and merged in completion order
  (``dispatch="dynamic"``), regardless of which table contributed them —
  the scheduler supplies the global workload, the engine the global order.
* :func:`run_plans_sequential` — the reference path: one ``engine.run`` per
  plan, in order, exactly like calling the five drivers one after another.
  Both paths produce bit-identical table rows
  (``tests/engine/test_scheduler.py``); only wall time differs.
* :func:`run_plans_streaming` — the bounded-memory path: every plan's
  requests are fed to :meth:`ExecutionEngine.run_streaming` as **one lazy
  stream** and each plan is reduced the moment its last result arrives, so
  peak residency is O(stream window + largest single plan's results), not
  O(all plans' requests).  Same interleaving benefits as :func:`run_plans`
  within each window; bit-identical rows.
* :func:`run_all_tables` — the user-facing driver behind ``repro all``:
  collects the default plans for Tables 2–6 and runs them interleaved.

Plan *preparation* (``plan.prepare``) carries the non-LLM work a table
needs before reduction — Table 3's Inspector baseline runs there through
``engine.map`` — and the fine-tuning cross-validation trains its fold
models at plan-build time, so by the time :func:`run_plans` executes, every
remaining unit of work is a detection request the engine can interleave
freely.

The tiered cascade (``--cascade``) composes through this same plan/reduce
seam: plans only describe requests and reducers, and the cascade router
lives below :meth:`ExecutionEngine.run`, so interleaved, sequential and
streaming scheduling all route each materialised batch down the tier
ladder without any scheduler-level changes.

The fault-tolerance plane (``--retries``, circuit breakers, the run
journal) composes the same way: retries, breaker rerouting and journal
replay all happen below :meth:`ExecutionEngine.run`, and a request the
engine gave up on comes back as an explicit ``failed=True``
:class:`~repro.engine.requests.RunResult` *in position* — result slices
keep their plan's length and order, reducers see failed entries exactly
like shed ones (``confusion_from_results`` excludes both), and a partial
outage degrades one table's counts instead of aborting the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.core import ExecutionEngine, resolve_engine
from repro.engine.requests import DetectionRequest, RunResultStore

__all__ = [
    "DEFAULT_TABLES",
    "TablePlan",
    "collect_default_plans",
    "results_fingerprint",
    "run_all_tables",
    "run_plans",
    "run_plans_sequential",
    "run_plans_streaming",
]

#: The paper's evaluation tables, in presentation order.
DEFAULT_TABLES = ("table2", "table3", "table4", "table5", "table6")


@dataclass
class TablePlan:
    """One table's evaluation, split into requests plus a reducer.

    Attributes
    ----------
    table:
        Key under which :func:`run_plans` files this plan's result
        (``"table2"`` … ``"table6"``).
    requests:
        Every detection request the table needs, in the exact order the
        sequential driver would issue them.
    reduce:
        Turns the scored results (a :class:`RunResultStore` covering
        exactly ``requests``, in order) into the driver's return value —
        table rows or a cross-validation result mapping.
    prepare:
        Optional non-LLM work run once before reduction, given the engine
        (e.g. Table 3's Inspector baseline via ``engine.map``).  Reducers
        may close over state that ``prepare`` fills in.
    """

    table: str
    requests: List[DetectionRequest] = field(default_factory=list)
    reduce: Callable[[RunResultStore], object] = lambda store: store
    prepare: Optional[Callable[[ExecutionEngine], None]] = None

    def execute(self, engine: Optional[ExecutionEngine] = None) -> object:
        """Run just this plan: prepare, one engine run, reduce."""
        engine = resolve_engine(engine)
        if self.prepare is not None:
            self.prepare(engine)
        return self.reduce(engine.run(self.requests))


def collect_default_plans(
    dataset=None,
    *,
    corpus_config=None,
    tables: Sequence[str] = DEFAULT_TABLES,
    model_factory=None,
) -> List[TablePlan]:
    """Build the default plan for every requested table.

    ``dataset`` defaults to the ≤4k-token evaluation subset, built **once**
    and shared by every plan (the sequential CLI path used to rebuild it
    per table).  ``model_factory`` is threaded through to each plan builder
    so benchmarks can inject latency-simulated models.
    """
    # Imported lazily: repro.eval.experiments reaches back into this
    # package for TablePlan, and repro.engine must stay importable on its
    # own (requests.py already imports repro.eval leaf modules).
    from repro.eval import experiments

    if dataset is None:
        dataset = experiments.default_subset(corpus_config)
    builders = {
        "table2": lambda: experiments.plan_table2(dataset, model_factory=model_factory),
        "table3": lambda: experiments.plan_table3(
            dataset, corpus_config=corpus_config, model_factory=model_factory
        ),
        "table4": lambda: experiments.plan_table4(dataset, model_factory=model_factory),
        "table5": lambda: experiments.plan_table5(dataset, model_factory=model_factory),
        "table6": lambda: experiments.plan_table6(dataset, model_factory=model_factory),
    }
    plans = []
    for table in tables:
        try:
            builder = builders[table]
        except KeyError as exc:
            raise ValueError(f"unknown table {table!r}; expected one of {DEFAULT_TABLES}") from exc
        plans.append(builder())
    return plans


def results_fingerprint(results: Dict[str, object]) -> Dict[str, object]:
    """Flatten a ``{table: result}`` mapping into comparable plain tuples.

    Row lists become ``(model, prompt, confusion-row)`` tuples and
    cross-validation results become per-fold confusion rows, so two runs
    can be compared with ``==`` regardless of object identity.  This is
    the single definition of "bit-identical table rows" used by the
    equivalence tests and the scheduler benchmark.
    """
    flat: Dict[str, object] = {}
    for table, result in results.items():
        if isinstance(result, dict):  # cross-validation tables (4 and 6)
            flat[table] = {
                name: (
                    [counts.as_row() for counts in crossval.base_folds],
                    [counts.as_row() for counts in crossval.tuned_folds],
                )
                for name, crossval in result.items()
            }
        else:  # row lists (tables 2, 3 and 5)
            flat[table] = [(row.model, row.prompt, row.counts.as_row()) for row in result]
    return flat


def _prepare_all(plans: Sequence[TablePlan], engine: ExecutionEngine) -> None:
    for plan in plans:
        if plan.prepare is not None:
            plan.prepare(engine)


def run_plans(
    plans: Sequence[TablePlan], *, engine: Optional[ExecutionEngine] = None
) -> Dict[str, object]:
    """Execute every plan through **one** interleaved engine run.

    All plans' requests go into a single :meth:`ExecutionEngine.run`; the
    engine's chunking groups them by (model, strategy, scoring) across
    table boundaries, so the executor sees the whole evaluation as one
    stream of mixed-model batches.  Each plan's reducer then receives its
    own slice of the ordered results — bit-identical to what a per-table
    run would have produced.
    """
    engine = resolve_engine(engine)
    plans = list(plans)
    _prepare_all(plans, engine)
    spans: List[Tuple[TablePlan, int, int]] = []
    combined: List[DetectionRequest] = []
    for plan in plans:
        start = len(combined)
        combined.extend(plan.requests)
        spans.append((plan, start, len(combined)))
    store = engine.run(combined)
    return {
        plan.table: plan.reduce(RunResultStore(store.results[start:end]))
        for plan, start, end in spans
    }


def run_plans_sequential(
    plans: Sequence[TablePlan], *, engine: Optional[ExecutionEngine] = None
) -> Dict[str, object]:
    """The reference path: one engine run per plan, in plan order."""
    engine = resolve_engine(engine)
    return {plan.table: plan.execute(engine) for plan in plans}


def run_plans_streaming(
    plans: Sequence[TablePlan],
    *,
    engine: Optional[ExecutionEngine] = None,
    window: Optional[int] = None,
) -> Dict[str, object]:
    """Execute every plan through one **streaming** engine run.

    The plans' requests are chained into a single lazy iterator feeding
    :meth:`ExecutionEngine.run_streaming`, so at most one window of requests
    is ever materialised — a plan whose ``requests`` attribute is itself a
    lazy iterable is consumed without listing it.  Because the engine pulls
    requests strictly ahead of delivering their results, each plan's request
    count is known by the time its last result arrives; results are buffered
    only until their plan completes, then reduced and released.  Rows are
    bit-identical to :func:`run_plans` (pinned by the equivalence tests).
    """
    engine = resolve_engine(engine)
    plans = list(plans)
    _prepare_all(plans, engine)
    counts: List[int] = []  # request count per plan, appended at plan exhaustion

    def requests_iter():
        for plan in plans:
            n = 0
            for request in plan.requests:
                n += 1
                yield request
            counts.append(n)

    out: Dict[str, object] = {}
    buffered: List = []
    reduced = 0

    def flush_completed() -> None:
        nonlocal reduced
        while reduced < len(counts) and len(buffered) >= counts[reduced]:
            n = counts[reduced]
            plan = plans[reduced]
            out[plan.table] = plan.reduce(RunResultStore(buffered[:n]))
            del buffered[:n]
            reduced += 1

    for result in engine.run_streaming(requests_iter(), window=window):
        buffered.append(result)
        flush_completed()
    flush_completed()  # trailing plans, including zero-request ones
    if reduced != len(plans):
        raise RuntimeError(
            f"streaming run delivered results for {reduced} of {len(plans)} plans; "
            f"{len(buffered)} results left unclaimed"
        )
    return out


def run_all_tables(
    dataset=None,
    *,
    engine: Optional[ExecutionEngine] = None,
    corpus_config=None,
    tables: Sequence[str] = DEFAULT_TABLES,
    model_factory=None,
    plans: Optional[Sequence[TablePlan]] = None,
    interleave: bool = True,
    stream: bool = False,
    stream_window: Optional[int] = None,
) -> Dict[str, object]:
    """Regenerate every evaluation table through one interleaved engine run.

    Returns ``{table: result}`` where the result type matches the
    corresponding ``run_tableN`` driver (row lists for Tables 2/3/5,
    per-model cross-validation results for Tables 4/6).  Pass prebuilt
    ``plans`` to skip plan construction (the benchmark harness does, to
    time execution in isolation), or ``interleave=False`` for the
    sequential reference path.  ``stream=True`` routes through
    :func:`run_plans_streaming` (inherently interleaved — it takes
    precedence over ``interleave``) with ``stream_window`` requests
    resident at once (``None``: the engine's ``stream_window``).
    """
    if plans is None:
        plans = collect_default_plans(
            dataset, corpus_config=corpus_config, tables=tables, model_factory=model_factory
        )
    if stream:
        return run_plans_streaming(plans, engine=engine, window=stream_window)
    runner = run_plans if interleave else run_plans_sequential
    return runner(plans, engine=engine)
