"""Pluggable executors: how the engine maps work over request chunks.

An executor is anything with ``map(fn, items) -> list`` that preserves input
order.  Two backends ship here:

* :class:`SerialExecutor` — the reference backend; runs chunks in submission
  order on the calling thread.  The engine's equivalence guarantee is stated
  against this backend.
* :class:`ThreadPoolExecutor` — fans chunks out over worker threads.  Because
  every request is independent and the simulated models are deterministic,
  results are bit-identical to the serial backend; the speedup comes from
  overlapping model latency (network time for real API clients).

To add a new backend (e.g. an async or multi-process one), implement the
same ``map`` contract — order-preserving, exceptions propagated — and pass
an instance to :class:`~repro.engine.core.ExecutionEngine`, or extend
:func:`create_executor` so the CLI's ``--jobs`` flag can select it.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, List, Sequence, TypeVar

__all__ = ["SerialExecutor", "ThreadPoolExecutor", "create_executor"]

T = TypeVar("T")
R = TypeVar("R")


class SerialExecutor:
    """Run every work item in order on the calling thread."""

    name = "serial"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<SerialExecutor>"


class ThreadPoolExecutor:
    """Fan work items out over a bounded pool of threads.

    A fresh pool is created per ``map`` call: the engine maps over chunks
    (not individual records), so pool start-up cost is amortised across many
    requests and no threads linger between runs.
    """

    name = "thread-pool"

    def __init__(self, jobs: int = 4) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1 or self.jobs == 1:
            return [fn(item) for item in items]
        with concurrent.futures.ThreadPoolExecutor(max_workers=self.jobs) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ThreadPoolExecutor jobs={self.jobs}>"


def create_executor(jobs: int = 1):
    """``jobs <= 1`` → serial; otherwise a thread pool of that width."""
    if jobs <= 1:
        return SerialExecutor()
    return ThreadPoolExecutor(jobs=jobs)
