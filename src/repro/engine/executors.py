"""Pluggable executors: how the engine maps work over request chunks.

An executor implements two dispatch contracts:

* ``map(fn, items) -> list`` — the *ordered* contract: results in input
  order, exceptions propagated.  This is the reference path the engine's
  equivalence guarantee is stated against.
* ``submit(fn, item) -> Future`` plus ``map_unordered(fn, items)`` — the
  *completion-order* contract: ``map_unordered`` returns an iterator of
  ``(index, result)`` pairs yielded **as work items finish**, so a consumer
  can merge fast results while slow ones are still running instead of
  blocking behind an order-preserving barrier.  Indices refer to positions
  in ``items``; every index appears exactly once.  The first work-item
  exception is re-raised to the consumer and every not-yet-started future
  is cancelled — the same happens when the consumer abandons (closes) the
  iterator early.  A closed executor raises :class:`RuntimeError` from
  ``submit`` and ``map_unordered`` alike.
* ``submit_stream(fn) -> SubmitStream`` — the *fault-tolerant* contract:
  incremental submission with completion-order draining where a work-item
  failure is delivered in its future and never cancels unrelated futures.
  The engine's retry dispatcher runs on this seam, so with ``--retries``
  one chunk's transient failure no longer tears down the whole run.

Four backends ship here, all registered in :data:`EXECUTOR_KINDS` and
selectable via :func:`create_executor` (the CLI's ``--executor``/``--jobs``
flags and :attr:`PipelineConfig.executor`):

* :class:`SerialExecutor` (``"serial"``) — the reference backend; runs work
  items in submission order on the calling thread.  The engine's equivalence
  guarantee is stated against this backend.
* :class:`ThreadPoolExecutor` (``"thread"``) — fans work items out over one
  persistent pool of worker threads.  Overlaps model latency (network time
  for real API clients); the pool is created lazily on first ``map`` and
  lives until :meth:`~ThreadPoolExecutor.close`.
* :class:`ProcessPoolExecutor` (``"process"``) — shards work across worker
  *processes*, scaling the CPU-bound parts (feature extraction, response
  rendering/parsing) past the GIL.  Everything crossing the process boundary
  must be picklable; the executor advertises this with ``distributed =
  True`` and the engine switches to self-contained, picklable chunk
  payloads (see :func:`repro.engine.core._score_chunk_payload`).
* :class:`AsyncExecutor` (``"async"``) — runs work items concurrently on a
  persistent asyncio event loop in a background thread.  Synchronous
  functions are offloaded to the loop's thread pool of width ``jobs``;
  native ``async def`` functions are awaited directly under a semaphore of
  width ``max_inflight`` (default: ``jobs``).  ``native_async = True``
  tells the engine to dispatch awaitable chunk coroutines here, so model
  I/O is awaited on the loop — concurrency bounded by the semaphore, not
  by threads.

Every backend owns whatever pool/loop it creates: ``close()`` releases it
(idempotent), the executors are context managers, and a closed executor
raises :class:`RuntimeError` on further ``map`` calls.  The engine and the
CLI close their executor after a run.

To add a new backend, implement ``map`` and ``submit`` and register a
factory with :func:`register_executor` so ``--executor <kind>`` can select
it; ``map_unordered`` comes for free from :class:`_BaseExecutor` once
``submit`` exists.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import inspect
import threading
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "EXECUTOR_KINDS",
    "SubmitStream",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "AsyncExecutor",
    "available_executors",
    "create_executor",
    "register_executor",
]

T = TypeVar("T")
R = TypeVar("R")


class _CompletionStream:
    """The iterator ``map_unordered`` hands out: futures in completion order.

    A plain generator would be simpler, but closing a generator that was
    never started runs none of its code — an abandoned stream would leak
    every submitted future.  This object cancels all outstanding futures
    on ``close()`` (and on garbage collection) no matter how far iteration
    got, so "consumer walked away" always means "queued work is dropped".
    """

    def __init__(self, futures: Dict["concurrent.futures.Future[R]", int]) -> None:
        self._futures = futures
        self._completed = concurrent.futures.as_completed(futures)
        self._closed = False

    def __iter__(self) -> "Iterator[Tuple[int, R]]":
        return self

    def __next__(self) -> Tuple[int, R]:
        if self._closed:
            raise StopIteration
        try:
            future = next(self._completed)
            return self._futures[future], future.result()
        except BaseException:
            # Exhaustion, a work-item exception or a cancelled future all
            # end the stream; cancel whatever has not started yet.
            self.close()
            raise

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for future in self._futures:
            future.cancel()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.close()


class SubmitStream:
    """Completion-order drain over *dynamically* submitted work items.

    ``map_unordered`` fixes the work list up front and fail-fasts: the
    first work-item exception ends the stream and cancels every
    outstanding future.  That is the right contract for an
    all-or-nothing run, and exactly the wrong one for a retrying run —
    one chunk's transient failure must not cancel unrelated chunks, and
    a retried chunk needs to *re-enter* the stream after its backoff.

    ``SubmitStream`` is the retry-friendly seam: work is submitted
    incrementally (:meth:`submit` tags each item), :meth:`wait` blocks
    until at least one in-flight future settles and hands back
    ``(tag, future)`` pairs **without inspecting them** — a failed
    future is just a completed future whose ``exception()`` is set, and
    nothing else in flight is touched.  The caller owns the
    retry/giveup decision.  Not thread-safe: one dispatcher thread
    drives it, like the engine's other dispatch loops.
    """

    def __init__(self, executor: "_BaseExecutor", fn: Callable[[T], R]) -> None:
        self._executor = executor
        self._fn = fn
        self._inflight: Dict["concurrent.futures.Future[R]", object] = {}

    def submit(self, item: T, tag: object) -> "concurrent.futures.Future[R]":
        """Schedule one work item; ``tag`` comes back with its future."""
        future = self._executor.submit(self._fn, item)
        self._inflight[future] = tag
        return future

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def wait(self, timeout: Optional[float] = None) -> List[Tuple[object, "concurrent.futures.Future[R]"]]:
        """Settled ``(tag, future)`` pairs, blocking up to ``timeout``.

        Returns as soon as any in-flight future completes (empty list on
        timeout or when nothing is in flight).  Futures are removed from
        the stream as they are handed back; failed ones cancel nothing.
        """
        if not self._inflight:
            return []
        done, _ = concurrent.futures.wait(
            list(self._inflight),
            timeout=timeout,
            return_when=concurrent.futures.FIRST_COMPLETED,
        )
        return [(self._inflight.pop(future), future) for future in done]

    def close(self) -> None:
        """Cancel whatever has not started yet (abandoned dispatch)."""
        for future in self._inflight:
            future.cancel()
        self._inflight.clear()


class _BaseExecutor:
    """Shared close/context-manager plumbing for the pooled backends."""

    name = "base"
    #: True when ``map`` crosses a process boundary (fn/items must pickle).
    distributed = False

    def __init__(self) -> None:
        self._closed = False

    @property
    def capacity(self) -> int:
        """How many work items this backend genuinely runs at once.

        The engine's tail-latency control reads this: speculative
        re-execution only duplicates a straggler when fewer than
        ``capacity`` work items are in flight (a duplicate that queues
        behind the straggler helps nobody), and the deadline planner
        divides the predicted total work by it to estimate the makespan.
        Pool backends run ``jobs`` items; the async backend overrides this
        with its coroutine semaphore width.
        """
        return getattr(self, "jobs", 1)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def close(self) -> None:
        """Release pooled resources; further ``map``/``submit`` calls raise."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, fn: Callable[[T], R], item: T) -> "concurrent.futures.Future[R]":
        """Schedule one work item; returns a future for its result."""
        raise NotImplementedError

    def submit_stream(self, fn: Callable[[T], R]) -> "SubmitStream":
        """A :class:`SubmitStream` over this backend (see its docstring).

        The fault-tolerant dispatch contract: work items are submitted
        incrementally, failures are delivered in their futures instead
        of tearing the stream down, and unrelated futures are never
        cancelled by one item's failure — which is what lets the
        engine's retry dispatcher re-enter failed chunks after backoff
        while the rest of the run keeps flowing.
        """
        self._check_open()
        return SubmitStream(self, fn)

    def map_unordered(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> Iterator[Tuple[int, R]]:
        """Yield ``(index, result)`` pairs in completion order.

        The default implementation submits every item up front and drains
        the futures as they finish.  If a work item raises, or the consumer
        closes (or drops) the iterator before exhausting it — even before
        taking a single result — every outstanding future is cancelled
        (futures already running run to completion in thread/process pools;
        the async backend cancels in-flight coroutines too).
        """
        self._check_open()
        items = list(items)
        futures: Dict["concurrent.futures.Future[R]", int] = {}
        try:
            for index, item in enumerate(items):
                futures[self.submit(fn, item)] = index
        except BaseException:
            # A mid-loop submit failure (broken pool, concurrent close)
            # must not strand the futures already submitted.
            for future in futures:
                future.cancel()
            raise
        return _CompletionStream(futures)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(_BaseExecutor):
    """Run every work item in order on the calling thread."""

    name = "serial"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        self._check_open()
        return [fn(item) for item in items]

    def submit(self, fn: Callable[[T], R], item: T) -> "concurrent.futures.Future[R]":
        """Run the item immediately; the returned future is already done."""
        self._check_open()
        future: "concurrent.futures.Future[R]" = concurrent.futures.Future()
        try:
            future.set_result(fn(item))
        except BaseException as exc:  # propagate through future.result()
            future.set_exception(exc)
        return future

    def map_unordered(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> Iterator[Tuple[int, R]]:
        """Lazy serial stream: completion order *is* submission order.

        Abandoning the iterator early simply stops executing the remaining
        items — the serial analogue of cancelling queued futures.
        """
        self._check_open()

        def _stream() -> Iterator[Tuple[int, R]]:
            for index, item in enumerate(items):
                self._check_open()
                yield index, fn(item)

        return _stream()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<SerialExecutor>"


class ThreadPoolExecutor(_BaseExecutor):
    """Fan work items out over one persistent pool of worker threads.

    The pool is created lazily on the first ``map`` call and reused for
    every later one, so repeated engine runs (the CLI's ``repro all``, the
    benchmark harness) never pay thread start-up cost twice.  ``close()``
    shuts the pool down; use the executor as a context manager to scope it.
    """

    name = "thread"

    def __init__(self, jobs: int = 4) -> None:
        super().__init__()
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._lock:
            self._check_open()
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="repro-engine"
                )
            return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        self._check_open()
        items = list(items)
        if len(items) <= 1 or self.jobs == 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def submit(self, fn: Callable[[T], R], item: T) -> "concurrent.futures.Future[R]":
        return self._ensure_pool().submit(fn, item)

    def close(self) -> None:
        with self._lock:
            super().close()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ThreadPoolExecutor jobs={self.jobs}>"


class ProcessPoolExecutor(_BaseExecutor):
    """Shard work items across one persistent pool of worker processes.

    Threads only overlap I/O waits; a process pool also scales the
    CPU-bound half of a request (feature extraction, response rendering and
    parsing) across cores.  The price is the pickle boundary: ``fn`` must be
    a module-level callable and every item/result must be picklable.  The
    engine honours this automatically — ``distributed = True`` makes it
    dispatch self-contained chunk payloads instead of bound-method closures.
    """

    name = "process"
    distributed = True

    def __init__(self, jobs: int = 4) -> None:
        super().__init__()
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        with self._lock:
            self._check_open()
            if self._pool is None:
                self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.jobs)
            return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        self._check_open()
        items = list(items)
        if not items:
            return []
        return list(self._ensure_pool().map(fn, items))

    def submit(self, fn: Callable[[T], R], item: T) -> "concurrent.futures.Future[R]":
        return self._ensure_pool().submit(fn, item)

    def close(self) -> None:
        with self._lock:
            super().close()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ProcessPoolExecutor jobs={self.jobs}>"


class AsyncExecutor(_BaseExecutor):
    """Run work items concurrently on a persistent asyncio event loop.

    The loop runs in a dedicated background thread for the executor's whole
    lifetime.  ``map`` submits one task per item and gathers the results in
    input order:

    * a plain function is offloaded to a dedicated thread pool of width
      ``jobs`` (asyncio's *default* executor caps at ``min(32, cpus + 4)``
      threads, which would silently undercut larger ``jobs`` values), so
      today's synchronous simulated models work unchanged;
    * an ``async def`` function is awaited natively under a semaphore of
      width ``max_inflight`` — the engine's async-native dispatch path runs
      chunk coroutines through exactly this seam, so in-flight concurrency
      is bounded by the semaphore, **not** by a thread count.

    ``native_async`` advertises the seam: the engine sees it and dispatches
    awaitable chunk coroutines (model I/O awaited on the loop) instead of
    offloading synchronous chunk functions to the thread pool.
    """

    name = "async"
    #: The engine dispatches coroutine chunk functions to this backend.
    native_async = True

    @property
    def capacity(self) -> int:
        """Coroutine concurrency is bounded by the semaphore, not threads."""
        return self.max_inflight

    def __init__(self, jobs: int = 8, max_inflight: Optional[int] = None) -> None:
        super().__init__()
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 or None")
        self.jobs = jobs
        #: Concurrently-running native coroutines; defaults to ``jobs`` so a
        #: plain ``--executor async --jobs N`` behaves like N workers, but it
        #: can be raised far beyond any sensible thread count (coroutines
        #: waiting on I/O cost a few KB, not a stack each).
        self.max_inflight = max_inflight if max_inflight is not None else jobs
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._lock = threading.Lock()

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lock:
            self._check_open()
            if self._loop is None:
                self._loop = asyncio.new_event_loop()
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="repro-async-worker"
                )
                # Make the dedicated pool the loop's default executor, so
                # every sync offload on this loop — including
                # ``asyncio.to_thread`` inside a model's default
                # ``generate_batch_async`` — gets the full ``jobs`` width
                # instead of asyncio's global min(32, cpus + 4) cap.
                self._loop.set_default_executor(self._pool)
                # Bounds native-coroutine concurrency for submit(); binds to
                # the loop on first acquire (Python >= 3.10 semantics).
                self._semaphore = asyncio.Semaphore(self.max_inflight)
                self._thread = threading.Thread(
                    target=self._loop.run_forever,
                    name="repro-async-executor",
                    daemon=True,
                )
                self._thread.start()
            return self._loop

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        self._check_open()
        items = list(items)
        if not items:
            return []
        loop = self._ensure_loop()
        pool = self._pool
        is_async = inspect.iscoroutinefunction(fn)

        async def _gather() -> List[R]:
            semaphore = asyncio.Semaphore(self.max_inflight if is_async else self.jobs)
            running = asyncio.get_running_loop()

            async def _one(item: T) -> R:
                async with semaphore:
                    if is_async:
                        return await fn(item)
                    return await running.run_in_executor(pool, fn, item)

            # Explicit tasks instead of bare coroutines: when one work item
            # raises, gather re-raises immediately but would leave sibling
            # tasks running — an aborted run must not keep issuing model
            # calls in the background, so cancel them and wait them out.
            tasks = [running.create_task(_one(item)) for item in items]
            try:
                return await asyncio.gather(*tasks)
            except BaseException:
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                raise

        return list(asyncio.run_coroutine_threadsafe(_gather(), loop).result())

    def submit(self, fn: Callable[[T], R], item: T) -> "concurrent.futures.Future[R]":
        """Schedule one item on the loop; sync fns offload to the thread pool.

        Native coroutine functions are bounded by a semaphore of width
        ``max_inflight`` (the offload pool is bounded by its ``jobs``
        workers), so ``map_unordered`` keeps the same concurrency limits
        as ``map``.
        """
        self._check_open()
        loop = self._ensure_loop()
        pool, semaphore = self._pool, self._semaphore

        if inspect.iscoroutinefunction(fn):

            async def _run() -> R:
                async with semaphore:  # type: ignore[union-attr]
                    return await fn(item)

        else:

            async def _run() -> R:
                running = asyncio.get_running_loop()
                return await running.run_in_executor(pool, fn, item)

        return asyncio.run_coroutine_threadsafe(_run(), loop)

    def close(self) -> None:
        with self._lock:
            super().close()
            loop, thread, pool = self._loop, self._thread, self._pool
            self._loop = self._thread = self._pool = None
            self._semaphore = None
        if loop is None:
            return
        # Cancel whatever is still pending and let it unwind *on* the loop
        # before stopping it — otherwise orphaned coroutines would be
        # garbage-collected after loop.close() and their cleanup (semaphore
        # releases, ...) would hit a dead loop.
        async def _drain_pending() -> None:
            tasks = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        try:
            asyncio.run_coroutine_threadsafe(_drain_pending(), loop).result(timeout=10)
        except (concurrent.futures.TimeoutError, RuntimeError):  # pragma: no cover
            pass  # a wedged task must not make close() hang forever
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10)
        loop.close()
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AsyncExecutor jobs={self.jobs} max_inflight={self.max_inflight}>"


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_EXECUTOR_FACTORIES: Dict[str, Callable[..., object]] = {}


def register_executor(kind: str, factory: Callable[..., object]) -> None:
    """Register ``factory(jobs, **options) -> executor`` under ``kind``.

    Registered kinds become valid values for :func:`create_executor` and,
    through it, the CLI's ``--executor`` flag and ``PipelineConfig.executor``.
    A factory may accept only ``jobs`` — backend-specific options it does
    not declare (e.g. ``max_inflight``) are simply not forwarded to it.
    """
    _EXECUTOR_FACTORIES[kind] = factory


def available_executors() -> Tuple[str, ...]:
    """Registered executor kinds, in registration order."""
    return tuple(_EXECUTOR_FACTORIES)


register_executor("serial", lambda jobs, **_options: SerialExecutor())
register_executor("thread", lambda jobs, **_options: ThreadPoolExecutor(jobs=jobs))
register_executor("process", lambda jobs, **_options: ProcessPoolExecutor(jobs=jobs))
register_executor(
    "async",
    lambda jobs, max_inflight=None, **_options: AsyncExecutor(
        jobs=jobs, max_inflight=max_inflight
    ),
)

#: The built-in backend names (the CLI's ``--executor`` choices).
EXECUTOR_KINDS = ("serial", "thread", "process", "async")


def create_executor(jobs: int = 1, kind: Optional[str] = None, **options):
    """Build an executor from the registry.

    ``kind=None`` keeps the historical ``--jobs`` semantics: ``jobs <= 1``
    selects the serial backend, anything larger a thread pool of that width.
    An explicit ``kind`` picks that backend directly with ``max(jobs, 1)``
    workers.  ``options`` holds backend-specific settings (``max_inflight``
    for the async backend); ``None`` values and options the factory does
    not accept are dropped, so e.g. ``--max-inflight`` is harmless with the
    thread backend.
    """
    if kind is None:
        kind = "serial" if jobs <= 1 else "thread"
    try:
        factory = _EXECUTOR_FACTORIES[kind]
    except KeyError as exc:
        raise ValueError(
            f"unknown executor kind {kind!r}; registered: {available_executors()}"
        ) from exc
    options = {key: value for key, value in options.items() if value is not None}
    if options:
        parameters = inspect.signature(factory).parameters
        if not any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        ):
            options = {key: value for key, value in options.items() if key in parameters}
    return factory(max(jobs, 1), **options)
