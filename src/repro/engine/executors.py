"""Pluggable executors: how the engine maps work over request chunks.

An executor implements two dispatch contracts:

* ``map(fn, items) -> list`` — the *ordered* contract: results in input
  order, exceptions propagated.  This is the reference path the engine's
  equivalence guarantee is stated against.
* ``submit(fn, item) -> Future`` plus ``map_unordered(fn, items)`` — the
  *completion-order* contract: ``map_unordered`` returns an iterator of
  ``(index, result)`` pairs yielded **as work items finish**, so a consumer
  can merge fast results while slow ones are still running instead of
  blocking behind an order-preserving barrier.  Indices refer to positions
  in ``items``; every index appears exactly once.  The first work-item
  exception is re-raised to the consumer and every not-yet-started future
  is cancelled — the same happens when the consumer abandons (closes) the
  iterator early.  A closed executor raises :class:`RuntimeError` from
  ``submit`` and ``map_unordered`` alike.

Four backends ship here, all registered in :data:`EXECUTOR_KINDS` and
selectable via :func:`create_executor` (the CLI's ``--executor``/``--jobs``
flags and :attr:`PipelineConfig.executor`):

* :class:`SerialExecutor` (``"serial"``) — the reference backend; runs work
  items in submission order on the calling thread.  The engine's equivalence
  guarantee is stated against this backend.
* :class:`ThreadPoolExecutor` (``"thread"``) — fans work items out over one
  persistent pool of worker threads.  Overlaps model latency (network time
  for real API clients); the pool is created lazily on first ``map`` and
  lives until :meth:`~ThreadPoolExecutor.close`.
* :class:`ProcessPoolExecutor` (``"process"``) — shards work across worker
  *processes*, scaling the CPU-bound parts (feature extraction, response
  rendering/parsing) past the GIL.  Everything crossing the process boundary
  must be picklable; the executor advertises this with ``distributed =
  True`` and the engine switches to self-contained, picklable chunk
  payloads (see :func:`repro.engine.core._score_chunk_payload`).
* :class:`AsyncExecutor` (``"async"``) — runs work items concurrently on a
  persistent asyncio event loop in a background thread.  Synchronous
  functions are offloaded to the loop's thread pool under a semaphore of
  width ``jobs``; native ``async def`` functions are awaited directly — the
  seam a real aiohttp-based API adapter plugs into without further engine
  changes.

Every backend owns whatever pool/loop it creates: ``close()`` releases it
(idempotent), the executors are context managers, and a closed executor
raises :class:`RuntimeError` on further ``map`` calls.  The engine and the
CLI close their executor after a run.

To add a new backend, implement ``map`` and ``submit`` and register a
factory with :func:`register_executor` so ``--executor <kind>`` can select
it; ``map_unordered`` comes for free from :class:`_BaseExecutor` once
``submit`` exists.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import inspect
import threading
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "EXECUTOR_KINDS",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "AsyncExecutor",
    "available_executors",
    "create_executor",
    "register_executor",
]

T = TypeVar("T")
R = TypeVar("R")


class _BaseExecutor:
    """Shared close/context-manager plumbing for the pooled backends."""

    name = "base"
    #: True when ``map`` crosses a process boundary (fn/items must pickle).
    distributed = False

    def __init__(self) -> None:
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def close(self) -> None:
        """Release pooled resources; further ``map``/``submit`` calls raise."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, fn: Callable[[T], R], item: T) -> "concurrent.futures.Future[R]":
        """Schedule one work item; returns a future for its result."""
        raise NotImplementedError

    def map_unordered(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> Iterator[Tuple[int, R]]:
        """Yield ``(index, result)`` pairs in completion order.

        The default implementation submits every item up front and drains
        the futures as they finish.  If a work item raises, or the consumer
        closes the iterator before exhausting it, every outstanding future
        is cancelled (futures already running run to completion — only
        not-yet-started work is dropped).
        """
        self._check_open()
        items = list(items)
        futures: Dict["concurrent.futures.Future[R]", int] = {}
        try:
            for index, item in enumerate(items):
                futures[self.submit(fn, item)] = index
        except BaseException:
            # A mid-loop submit failure (broken pool, concurrent close)
            # must not strand the futures already submitted.
            for future in futures:
                future.cancel()
            raise
        return self._drain_completed(futures)

    @staticmethod
    def _drain_completed(
        futures: Dict["concurrent.futures.Future[R]", int],
    ) -> Iterator[Tuple[int, R]]:
        try:
            for future in concurrent.futures.as_completed(futures):
                yield futures[future], future.result()
        finally:
            for future in futures:
                future.cancel()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(_BaseExecutor):
    """Run every work item in order on the calling thread."""

    name = "serial"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        self._check_open()
        return [fn(item) for item in items]

    def submit(self, fn: Callable[[T], R], item: T) -> "concurrent.futures.Future[R]":
        """Run the item immediately; the returned future is already done."""
        self._check_open()
        future: "concurrent.futures.Future[R]" = concurrent.futures.Future()
        try:
            future.set_result(fn(item))
        except BaseException as exc:  # propagate through future.result()
            future.set_exception(exc)
        return future

    def map_unordered(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> Iterator[Tuple[int, R]]:
        """Lazy serial stream: completion order *is* submission order.

        Abandoning the iterator early simply stops executing the remaining
        items — the serial analogue of cancelling queued futures.
        """
        self._check_open()

        def _stream() -> Iterator[Tuple[int, R]]:
            for index, item in enumerate(items):
                self._check_open()
                yield index, fn(item)

        return _stream()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<SerialExecutor>"


class ThreadPoolExecutor(_BaseExecutor):
    """Fan work items out over one persistent pool of worker threads.

    The pool is created lazily on the first ``map`` call and reused for
    every later one, so repeated engine runs (the CLI's ``repro all``, the
    benchmark harness) never pay thread start-up cost twice.  ``close()``
    shuts the pool down; use the executor as a context manager to scope it.
    """

    name = "thread"

    def __init__(self, jobs: int = 4) -> None:
        super().__init__()
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._lock:
            self._check_open()
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="repro-engine"
                )
            return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        self._check_open()
        items = list(items)
        if len(items) <= 1 or self.jobs == 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def submit(self, fn: Callable[[T], R], item: T) -> "concurrent.futures.Future[R]":
        return self._ensure_pool().submit(fn, item)

    def close(self) -> None:
        with self._lock:
            super().close()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ThreadPoolExecutor jobs={self.jobs}>"


class ProcessPoolExecutor(_BaseExecutor):
    """Shard work items across one persistent pool of worker processes.

    Threads only overlap I/O waits; a process pool also scales the
    CPU-bound half of a request (feature extraction, response rendering and
    parsing) across cores.  The price is the pickle boundary: ``fn`` must be
    a module-level callable and every item/result must be picklable.  The
    engine honours this automatically — ``distributed = True`` makes it
    dispatch self-contained chunk payloads instead of bound-method closures.
    """

    name = "process"
    distributed = True

    def __init__(self, jobs: int = 4) -> None:
        super().__init__()
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        with self._lock:
            self._check_open()
            if self._pool is None:
                self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.jobs)
            return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        self._check_open()
        items = list(items)
        if not items:
            return []
        return list(self._ensure_pool().map(fn, items))

    def submit(self, fn: Callable[[T], R], item: T) -> "concurrent.futures.Future[R]":
        return self._ensure_pool().submit(fn, item)

    def close(self) -> None:
        with self._lock:
            super().close()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ProcessPoolExecutor jobs={self.jobs}>"


class AsyncExecutor(_BaseExecutor):
    """Run work items concurrently on a persistent asyncio event loop.

    The loop runs in a dedicated background thread for the executor's whole
    lifetime.  ``map`` submits one task per item, bounded by a semaphore of
    width ``jobs``, and gathers the results in input order:

    * a plain function is offloaded to a dedicated thread pool of width
      ``jobs`` (asyncio's *default* executor caps at ``min(32, cpus + 4)``
      threads, which would silently undercut larger ``jobs`` values), so
      today's synchronous simulated models work unchanged;
    * an ``async def`` function is awaited natively — this is the seam where
      a real aiohttp/``AsyncAnthropic``-style API adapter slots in with true
      non-blocking concurrency.
    """

    name = "async"

    def __init__(self, jobs: int = 8) -> None:
        super().__init__()
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._lock = threading.Lock()

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lock:
            self._check_open()
            if self._loop is None:
                self._loop = asyncio.new_event_loop()
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="repro-async-worker"
                )
                # Bounds native-coroutine concurrency for submit(); binds to
                # the loop on first acquire (Python >= 3.10 semantics).
                self._semaphore = asyncio.Semaphore(self.jobs)
                self._thread = threading.Thread(
                    target=self._loop.run_forever,
                    name="repro-async-executor",
                    daemon=True,
                )
                self._thread.start()
            return self._loop

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        self._check_open()
        items = list(items)
        if not items:
            return []
        loop = self._ensure_loop()
        pool = self._pool
        is_async = inspect.iscoroutinefunction(fn)

        async def _gather() -> List[R]:
            semaphore = asyncio.Semaphore(self.jobs)
            running = asyncio.get_running_loop()

            async def _one(item: T) -> R:
                async with semaphore:
                    if is_async:
                        return await fn(item)
                    return await running.run_in_executor(pool, fn, item)

            return await asyncio.gather(*(_one(item) for item in items))

        return list(asyncio.run_coroutine_threadsafe(_gather(), loop).result())

    def submit(self, fn: Callable[[T], R], item: T) -> "concurrent.futures.Future[R]":
        """Schedule one item on the loop; sync fns offload to the thread pool.

        Native coroutine functions are bounded by a semaphore of width
        ``jobs`` (the offload pool is bounded by its own worker count), so
        ``map_unordered`` keeps the same concurrency limit as ``map``.
        """
        self._check_open()
        loop = self._ensure_loop()
        pool, semaphore = self._pool, self._semaphore

        if inspect.iscoroutinefunction(fn):

            async def _run() -> R:
                async with semaphore:  # type: ignore[union-attr]
                    return await fn(item)

        else:

            async def _run() -> R:
                running = asyncio.get_running_loop()
                return await running.run_in_executor(pool, fn, item)

        return asyncio.run_coroutine_threadsafe(_run(), loop)

    def close(self) -> None:
        with self._lock:
            super().close()
            loop, thread, pool = self._loop, self._thread, self._pool
            self._loop = self._thread = self._pool = None
            self._semaphore = None
        if loop is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10)
        loop.close()
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AsyncExecutor jobs={self.jobs}>"


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_EXECUTOR_FACTORIES: Dict[str, Callable[[int], object]] = {}


def register_executor(kind: str, factory: Callable[[int], object]) -> None:
    """Register ``factory(jobs) -> executor`` under ``kind``.

    Registered kinds become valid values for :func:`create_executor` and,
    through it, the CLI's ``--executor`` flag and ``PipelineConfig.executor``.
    """
    _EXECUTOR_FACTORIES[kind] = factory


def available_executors() -> Tuple[str, ...]:
    """Registered executor kinds, in registration order."""
    return tuple(_EXECUTOR_FACTORIES)


register_executor("serial", lambda jobs: SerialExecutor())
register_executor("thread", lambda jobs: ThreadPoolExecutor(jobs=jobs))
register_executor("process", lambda jobs: ProcessPoolExecutor(jobs=jobs))
register_executor("async", lambda jobs: AsyncExecutor(jobs=jobs))

#: The built-in backend names (the CLI's ``--executor`` choices).
EXECUTOR_KINDS = ("serial", "thread", "process", "async")


def create_executor(jobs: int = 1, kind: Optional[str] = None):
    """Build an executor from the registry.

    ``kind=None`` keeps the historical ``--jobs`` semantics: ``jobs <= 1``
    selects the serial backend, anything larger a thread pool of that width.
    An explicit ``kind`` picks that backend directly with ``max(jobs, 1)``
    workers.
    """
    if kind is None:
        kind = "serial" if jobs <= 1 else "thread"
    try:
        factory = _EXECUTOR_FACTORIES[kind]
    except KeyError as exc:
        raise ValueError(
            f"unknown executor kind {kind!r}; registered: {available_executors()}"
        ) from exc
    return factory(max(jobs, 1))
