"""Zero-copy cache-snapshot broadcast for distributed executors.

The process backend must show every worker the parent's warm response
cache.  Pickling the whole entry dict per run and letting each worker
deserialise its own private copy costs O(entries) in the parent *plus*
O(entries) per worker — and N private dicts of RAM on one host.  This
module replaces that with a **shared-memory broadcast**:

* the parent encodes the snapshot once into a compact length-prefixed
  binary layout (:func:`encode_snapshot`) inside a
  ``multiprocessing.shared_memory`` block;
* chunk payloads carry only a tiny picklable ``(kind, name, token)``
  reference;
* each worker *attaches* the block read-only and serves ``get`` by binary
  search directly over the shared buffer (:class:`SharedSnapshotView`) —
  no per-worker deserialisation, no private copy, one physical mapping per
  host;
* the parent unlinks the block when the run finishes
  (:func:`retire_snapshot`); workers already attached keep their mapping
  alive until they drop it (POSIX semantics), so retirement can never race
  a late-loading chunk into a crash — a late *attach* simply fails, which
  cannot happen while payloads referencing the block are still in flight.

Platforms or contexts where shared memory is unavailable (no
``/dev/shm``, exotic spawn configurations) fall back transparently to the
previous temp-file pickle transport — same reference shape, same worker
memoisation — and ``transport="file"`` selects it explicitly (the CLI's
``--snapshot-transport file``), which is also what the equivalence tests
and the cache-plane benchmark use to compare the two paths.

Binary layout (all integers little-endian)::

    header:  magic ``b"RPROSNP2"`` | u64 count | u64 heap_off
    index:   count records of (u64 key_end, u64 resp_end, u64 id_end) —
             *cumulative* per-column end offsets, sorted by key bytes
    heap:    three columns — every key concatenated, then every response,
             then every identity — utf-8, in index order

Record ``i``'s key spans ``key_end[i-1]..key_end[i]`` of the key column
(``0..`` for the first record), and likewise per column; the last index
record therefore doubles as the column sizes, which is how the reader
locates the response and identity column bases.  Keys are content hashes
(:func:`repro.engine.cache.cache_key`), so sorted fixed-ish-length byte
strings make binary search cheap.  The columnar cumulative layout exists
so the encoder is vectorisable: column byte lengths become one
``numpy.cumsum`` each instead of a per-record ``pack_into`` loop, and the
(fixed-width hash) key column sorts via ``numpy.argsort`` — without numpy
the encoder falls back to ``itertools.accumulate`` over the same columns.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import struct
import tempfile
from array import array
from operator import itemgetter
from typing import Dict, Iterable, List, Optional, Tuple, Union

try:  # vectorised encode fast path; the stdlib fallback is always available
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

__all__ = [
    "SNAPSHOT_TRANSPORTS",
    "PublishedSnapshot",
    "SharedSnapshotView",
    "encode_snapshot",
    "load_snapshot",
    "publish_snapshot",
    "retire_snapshot",
]

#: Valid values for ``ExecutionEngine(snapshot_transport=...)`` / the CLI's
#: ``--snapshot-transport``.  ``"shm"`` falls back to ``"file"`` when shared
#: memory cannot be allocated, so it is safe as the default everywhere.
SNAPSHOT_TRANSPORTS = ("shm", "file")

_MAGIC = b"RPROSNP2"
_HEADER = struct.Struct("<8sQQ")
_INDEX = struct.Struct("<QQQ")
#: Only fixed-width key columns this large take the numpy argsort path —
#: below it, Timsort on small inputs wins and the vectorisation overhead
#: isn't worth paying.
_VECTOR_SORT_MIN = 2048

#: One snapshot record: ``(key, response, identity-or-None)``.
SnapshotRecord = Tuple[str, str, Optional[str]]

#: What a chunk payload carries across the process boundary:
#: ``(kind, locator, token)`` — the shm block name or temp-file path plus a
#: unique broadcast token workers memoise by.
SnapshotPayloadRef = Tuple[str, str, Tuple[int, int]]

#: Monotonic per-process counter; combined with the pid it makes broadcast
#: tokens unique even if a shm name or temp path is recycled by the OS.
_snapshot_counter = itertools.count(1)


def _next_token() -> Tuple[int, int]:
    return (os.getpid(), next(_snapshot_counter))


def _sort_by_key(records: List[SnapshotRecord]) -> Tuple[List[str], List[SnapshotRecord]]:
    """``(keys, records)`` in key order — utf-8 byte order == code-point order.

    Content-hash keys are fixed-width ASCII, so large snapshots sort via a
    single ``numpy.argsort`` over the packed key bytes instead of Timsort
    over Python strings; anything else falls back to ``sorted``.
    """
    keys = list(map(itemgetter(0), records))
    if _np is not None and len(keys) >= _VECTOR_SORT_MIN:
        joined = "".join(keys)
        width, remainder = divmod(len(joined), len(keys))
        if not remainder and width and joined.isascii():
            packed = _np.frombuffer(joined.encode("utf-8"), dtype=f"S{width}")
            order = _np.argsort(packed, kind="stable").tolist()
            getter = itemgetter(*order)
            return list(getter(keys)), list(getter(records))
    paired = sorted(records, key=itemgetter(0))
    return list(map(itemgetter(0), paired)), paired


def _column_ends(texts: List[str], joined: str, blob: bytes):
    """Cumulative utf-8 end offset of each item in a concatenated column."""
    if len(blob) == len(joined):  # pure-ASCII column: char lengths are byte lengths
        lengths = map(len, texts)
    else:
        lengths = (len(text.encode("utf-8")) for text in texts)
    if _np is not None:
        return _np.fromiter(lengths, dtype=_np.uint64, count=len(texts)).cumsum()
    return array("Q", itertools.accumulate(lengths))


def encode_snapshot(records: Iterable[SnapshotRecord]) -> bytes:
    """Serialise ``records`` into the columnar broadcast layout."""
    records = records if isinstance(records, list) else list(records)
    count = len(records)
    heap_off = _HEADER.size + count * _INDEX.size
    if not count:
        return _HEADER.pack(_MAGIC, 0, heap_off)
    keys, records = _sort_by_key(records)
    responses = list(map(itemgetter(1), records))
    identities = ["" if record[2] is None else record[2] for record in records]
    columns: List[bytes] = []
    ends = []
    for texts in (keys, responses, identities):
        joined = "".join(texts)
        blob = joined.encode("utf-8")
        columns.append(blob)
        ends.append(_column_ends(texts, joined, blob))
    if _np is not None:
        index = _np.column_stack(ends).astype("<u8", copy=False).tobytes()
    else:
        flat = array("Q", [0]) * (3 * count)
        for column, cumulative in enumerate(ends):
            flat[column::3] = cumulative
        if struct.pack("=Q", 1) != struct.pack("<Q", 1):  # pragma: no cover
            flat.byteswap()  # the layout is little-endian everywhere
        index = flat.tobytes()
    return b"".join([_HEADER.pack(_MAGIC, count, heap_off), index, *columns])


class SharedSnapshotView:
    """Read-only ``get`` over an encoded snapshot buffer — no dict built.

    Lookup is a binary search over the sorted index directly against the
    (possibly shared) buffer; only the handful of bytes each comparison
    touches are ever copied, so attaching a 50k-entry snapshot costs a few
    header reads, not a full deserialisation.  The optional ``shm`` handle
    is owned by the view: :meth:`close` releases the buffer and closes the
    mapping (the worker memo closes a superseded view before replacing it).
    """

    def __init__(self, buffer, *, shm=None) -> None:
        self._shm = shm
        self._view = memoryview(buffer)
        magic, count, heap_off = _HEADER.unpack_from(self._view, 0)
        if magic != _MAGIC:
            raise ValueError("not a snapshot buffer (bad magic)")
        self._count = count
        # The last index record holds each column's total byte size, which
        # fixes where the response and identity columns start.
        key_total = resp_total = 0
        if count:
            key_total, resp_total, _ = _INDEX.unpack_from(
                self._view, _HEADER.size + (count - 1) * _INDEX.size
            )
        self._key_base = heap_off
        self._resp_base = heap_off + key_total
        self._id_base = self._resp_base + resp_total

    def __len__(self) -> int:
        return self._count

    def _bounds(self, position: int) -> Tuple[int, int, int, int, int, int]:
        """Per-column (start, end) offsets of one record, column-relative."""
        offset = _HEADER.size + position * _INDEX.size
        key_end, resp_end, id_end = _INDEX.unpack_from(self._view, offset)
        if position:
            key_start, resp_start, id_start = _INDEX.unpack_from(
                self._view, offset - _INDEX.size
            )
        else:
            key_start = resp_start = id_start = 0
        return key_start, key_end, resp_start, resp_end, id_start, id_end

    def _key_bytes(self, position: int) -> bytes:
        key_start, key_end, _, _, _, _ = self._bounds(position)
        return bytes(self._view[self._key_base + key_start : self._key_base + key_end])

    def _search(self, key: str) -> Optional[Tuple[int, int, int, int, int, int]]:
        needle = key.encode("utf-8")
        lo, hi = 0, self._count
        while lo < hi:
            mid = (lo + hi) // 2
            bounds = self._bounds(mid)
            candidate = bytes(
                self._view[self._key_base + bounds[0] : self._key_base + bounds[1]]
            )
            if candidate == needle:
                return bounds
            if candidate < needle:
                lo = mid + 1
            else:
                hi = mid
        return None

    def get(self, key: str, default=None):
        """The response stored under ``key``, or ``default``."""
        bounds = self._search(key)
        if bounds is None:
            return default
        _, _, resp_start, resp_end, _, _ = bounds
        return str(self._view[self._resp_base + resp_start : self._resp_base + resp_end], "utf-8")

    def identity(self, key: str) -> Optional[str]:
        """The model identity recorded for ``key`` (``None`` when absent)."""
        bounds = self._search(key)
        if bounds is None:
            return None
        _, _, _, _, id_start, id_end = bounds
        if id_start == id_end:
            return None
        return str(self._view[self._id_base + id_start : self._id_base + id_end], "utf-8")

    def close(self) -> None:
        """Release the buffer and, when shm-backed, close the mapping."""
        try:
            self._view.release()
        except BufferError:  # pragma: no cover - defensive
            pass
        if self._shm is not None:
            try:
                self._shm.close()
            except (OSError, BufferError):  # pragma: no cover - defensive
                pass
            self._shm = None


class PublishedSnapshot:
    """Parent-side handle of one broadcast: owns the shm block or temp file.

    ``payload`` is the only part that crosses the process boundary; the
    handle itself stays in the parent so :func:`retire_snapshot` can unlink
    the resource when the run completes.
    """

    __slots__ = ("kind", "payload", "nbytes", "_shm", "_path")

    def __init__(self, kind: str, payload: SnapshotPayloadRef, nbytes: int, *, shm=None, path=None) -> None:
        self.kind = kind
        self.payload = payload
        self.nbytes = nbytes
        self._shm = shm
        self._path = path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PublishedSnapshot kind={self.kind} nbytes={self.nbytes}>"


def _publish_shm(records: List[SnapshotRecord]) -> PublishedSnapshot:
    from multiprocessing import shared_memory

    encoded = encode_snapshot(records)
    shm = shared_memory.SharedMemory(create=True, size=max(len(encoded), 1))
    try:
        shm.buf[: len(encoded)] = encoded
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    token = _next_token()
    return PublishedSnapshot(
        "shm", ("shm", shm.name, token), len(encoded), shm=shm
    )


def _publish_file(records: List[SnapshotRecord]) -> PublishedSnapshot:
    entries = {key: response for key, response, _ in records}
    fd, path = tempfile.mkstemp(prefix="repro-cache-snapshot-", suffix=".pkl")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(entries, handle, protocol=pickle.HIGHEST_PROTOCOL)
        nbytes = os.path.getsize(path)
    except BaseException:
        try:
            os.unlink(path)
        except OSError:
            pass
        raise
    token = _next_token()
    return PublishedSnapshot("file", ("file", path, token), nbytes, path=path)


def publish_snapshot(
    records: Iterable[SnapshotRecord], *, transport: str = "shm"
) -> PublishedSnapshot:
    """Publish one cache snapshot for a run's worth of chunk payloads.

    ``transport="shm"`` (default) tries a shared-memory block and falls
    back to the temp-file pickle when shared memory is unavailable;
    ``transport="file"`` selects the temp file directly.
    """
    if transport not in SNAPSHOT_TRANSPORTS:
        raise ValueError(
            f"unknown snapshot transport {transport!r}; expected one of {SNAPSHOT_TRANSPORTS}"
        )
    records = list(records)
    if transport == "shm":
        try:
            return _publish_shm(records)
        except (ImportError, OSError, ValueError):
            pass  # no /dev/shm, permissions, size limits: degrade gracefully
    return _publish_file(records)


def retire_snapshot(published: Optional[PublishedSnapshot]) -> None:
    """Release a published snapshot after every chunk has completed.

    For shm the block is closed and unlinked — workers still attached keep
    their mapping alive until they drop it, so in-flight views never tear.
    For the file transport the temp file is deleted.  Idempotent.
    """
    if published is None:
        return
    if published._shm is not None:
        shm, published._shm = published._shm, None
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass
        try:
            shm.unlink()
        except OSError:
            pass
    if published._path is not None:
        path, published._path = published._path, None
        try:
            os.unlink(path)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: Worker-side memo: the most recently loaded snapshot, keyed by token.  A
#: worker process keeps at most one snapshot alive — the engine publishes a
#: fresh one per run, so older epochs can never be referenced again.
_WORKER_SNAPSHOTS: Dict[Tuple[int, int], Union[Dict[str, str], SharedSnapshotView]] = {}


def _attach_shm(name: str):
    """Attach an existing shm block; the parent owns the block's lifetime.

    On Python >= 3.13 ``track=False`` keeps the attach out of the resource
    tracker entirely.  Older versions re-register every attach — harmless
    under the fork start method, where workers share the parent's tracker
    process and registration is an idempotent set-add, so the parent's
    ``unlink`` still deregisters the name exactly once.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def _discard_memo() -> None:
    for stale in _WORKER_SNAPSHOTS.values():
        if isinstance(stale, SharedSnapshotView):
            stale.close()
    _WORKER_SNAPSHOTS.clear()


# A memoised view pins its shm mapping through a memoryview; interpreter
# shutdown must release that view before SharedMemory.__del__ runs or the
# close raises "cannot close exported pointers exist" into stderr.
atexit.register(_discard_memo)


def load_snapshot(ref: Optional[SnapshotPayloadRef]):
    """Worker side: resolve a payload reference to a ``get``-able snapshot.

    Returns ``(snapshot, loaded_kind)`` where ``snapshot`` supports
    ``get(key, default)`` (a :class:`SharedSnapshotView` or a plain dict)
    and ``loaded_kind`` is ``"shm"``/``"file"`` when this call actually
    attached/deserialised, or ``None`` for a memo hit (at most one genuine
    load per worker per run) or a ``None`` reference.
    """
    if ref is None:
        return None, None
    kind, locator, token = ref
    snapshot = _WORKER_SNAPSHOTS.get(token)
    if snapshot is not None:
        return snapshot, None
    if kind == "shm":
        shm = _attach_shm(locator)
        snapshot = SharedSnapshotView(shm.buf, shm=shm)
    elif kind == "file":
        with open(locator, "rb") as handle:
            snapshot = pickle.load(handle)
    else:
        raise ValueError(f"unknown snapshot payload kind {kind!r}")
    _discard_memo()
    _WORKER_SNAPSHOTS[token] = snapshot
    return snapshot, kind
