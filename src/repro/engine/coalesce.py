"""Micro-batch coalescing for the engine's async-native dispatch path.

The engine chunks its work per (model, strategy) *before* dispatch, sized
for scheduling, not for the wire: with small adaptive chunks and a large
``max_inflight``, many coroutines for the *same* model end up awaiting
generation at the same moment.  Issuing one ``generate_batch_async`` per
chunk would waste the provider's batch lane — real LLM APIs amortise
per-request overhead (connection, auth, queueing) across a batch.

:class:`MicroBatchCoalescer` merges those concurrent requests: the first
arrival for a ``(model, strategy)`` key opens a collection window
(``window_s``), later arrivals for the same key append to it, and the
window flushes as **one** ``generate_batch_async`` call — early when the
accumulated prompt count reaches ``max_batch``.  Each waiter's coroutine
gets exactly its own slice of the batched response back, in its own prompt
order, so coalescing is invisible to callers: responses are bit-identical
to per-chunk calls for a deterministic model (the engine's equivalence
suite pins this).

Everything here runs on one event loop — the coalescer's state is only
ever touched from coroutines of the engine's :class:`AsyncExecutor` loop —
so no locks are needed.  The flush triggered by ``max_batch`` executes in
the triggering waiter's coroutine and the window flush in the window's
timer task, so the coalescer never owns orphan tasks of its own.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.engine.faults import MalformedResponseError

__all__ = ["MicroBatchCoalescer"]

#: The model-call side of a flush: prompts in, responses out, same order.
GenerateBatchAsyncFn = Callable[[Sequence[str]], Awaitable[List[str]]]


class _PendingBatch:
    """Requests collected for one key while its window is open."""

    __slots__ = ("generate", "waiters", "total", "timer")

    def __init__(self, generate: GenerateBatchAsyncFn) -> None:
        self.generate = generate
        #: ``(prompts, future)`` per waiting caller, arrival order.
        self.waiters: List[Tuple[List[str], "asyncio.Future[List[str]]"]] = []
        self.total = 0
        self.timer: Optional["asyncio.Task[None]"] = None


class MicroBatchCoalescer:
    """Merge concurrent same-key batch requests into one model call.

    Parameters
    ----------
    window_s:
        How long the first arrival holds the batch open for others to
        join.  The window trades a little latency on the *first* request
        for fewer, larger model calls; a couple of milliseconds is plenty
        when requests arrive from coroutines scheduled in the same loop
        iteration.
    max_batch:
        Flush early once this many prompts have accumulated, so one giant
        window never forms an unboundedly large request.
    on_flush:
        Optional callback ``(waiters, prompts)`` invoked after every
        flush with how many callers and prompts it merged — the engine
        wires this to telemetry.
    """

    def __init__(
        self,
        *,
        window_s: float = 0.002,
        max_batch: int = 128,
        on_flush: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.window_s = window_s
        self.max_batch = max_batch
        self.on_flush = on_flush
        self._pending: Dict[Hashable, _PendingBatch] = {}

    @property
    def pending_keys(self) -> int:
        """How many keys currently hold an open window (0 between runs)."""
        return len(self._pending)

    async def generate(
        self,
        key: Hashable,
        generate_batch_async: GenerateBatchAsyncFn,
        prompts: Sequence[str],
    ) -> List[str]:
        """Generate ``prompts`` through the shared batch for ``key``.

        Returns this caller's responses in this caller's prompt order,
        exactly as a direct ``generate_batch_async(prompts)`` call would.
        """
        prompts = list(prompts)
        if not prompts:
            return []
        if len(prompts) >= self.max_batch:
            # Already a full batch on its own: call straight through rather
            # than holding a window open.  Any batch still collecting for
            # this key keeps its own window/timer — responses are per
            # prompt, so inter-batch ordering is irrelevant.
            responses = await self._call(generate_batch_async, prompts)
            # Notified only after success, like _execute's merged flushes,
            # so the flush counters never include failed wire calls.
            self._notify(1, len(prompts))
            return responses
        loop = asyncio.get_running_loop()
        batch = self._pending.get(key)
        if batch is None:
            batch = _PendingBatch(generate_batch_async)
            self._pending[key] = batch
            batch.timer = loop.create_task(self._flush_after_window(key, batch))
        future: "asyncio.Future[List[str]]" = loop.create_future()
        batch.waiters.append((prompts, future))
        batch.total += len(prompts)
        if batch.total >= self.max_batch:
            # This waiter tipped the batch over the limit: flush inline in
            # its own coroutine and then collect its slice.  The flush is
            # *shielded*: the tipping coroutine may itself be cancelled
            # mid-call (a losing speculative copy), and its CancelledError
            # must finish off only this waiter — not poison every other
            # chunk's future sharing the merged wire call.
            self._close(key, batch)
            await asyncio.shield(self._execute(batch))
        return await future

    # -- internals ------------------------------------------------------------------

    async def _flush_after_window(self, key: Hashable, batch: _PendingBatch) -> None:
        """Timer task: flush the batch when its collection window elapses."""
        try:
            if self.window_s > 0:
                await asyncio.sleep(self.window_s)
        except asyncio.CancelledError:
            return  # flushed early by max_batch — nothing left to do
        if self._pending.get(key) is not batch:
            return  # already flushed
        batch.timer = None  # we *are* the timer; nothing to cancel
        self._close(key, batch)
        await self._execute(batch)

    def _close(self, key: Hashable, batch: _PendingBatch) -> None:
        """Detach the batch so new arrivals open a fresh window."""
        if self._pending.get(key) is batch:
            del self._pending[key]
        if batch.timer is not None:
            batch.timer.cancel()
            batch.timer = None

    async def _execute(self, batch: _PendingBatch) -> None:
        """Run the merged call and fan results (or the error) back out.

        Only waiters still awaiting their future participate: a chunk
        coroutine cancelled while waiting (an aborted run) cancels the
        future it was blocked on, and its prompts must not turn into a
        stray wire call — when *every* waiter is gone, no call is made at
        all, honouring the contract that abandoned work is dropped.

        A failed merged call does not poison every rider: with more than
        one waiter the batch is split in half and each half retried as
        its own wire call, recursively, so the error lands only on the
        caller(s) whose prompts genuinely fail — the price of sharing a
        flush is never someone else's poison prompt.
        """
        waiters = [(p, f) for p, f in batch.waiters if not f.done()]
        all_prompts = [prompt for prompts, _ in waiters for prompt in prompts]
        if not all_prompts:
            return
        try:
            responses = await self._call(batch.generate, all_prompts)
        except BaseException as exc:
            if isinstance(exc, asyncio.CancelledError):
                for _, future in waiters:
                    if not future.done():
                        future.set_exception(exc)
                raise
            if len(waiters) > 1:
                # Bisect: innocent riders recover on a half without the
                # failing prompts; the failing half keeps splitting until
                # the error is pinned on single waiters.
                middle = len(waiters) // 2
                for half in (waiters[:middle], waiters[middle:]):
                    sub = _PendingBatch(batch.generate)
                    sub.waiters = list(half)
                    await self._execute(sub)
                return
            for _, future in waiters:
                if not future.done():
                    future.set_exception(exc)
            return
        self._notify(len(waiters), len(all_prompts))
        position = 0
        for prompts, future in waiters:
            slice_ = responses[position : position + len(prompts)]
            position += len(prompts)
            if not future.done():  # cancelled mid-call: its slice is dropped
                future.set_result(slice_)

    @staticmethod
    async def _call(
        generate_batch_async: GenerateBatchAsyncFn, prompts: List[str]
    ) -> List[str]:
        responses = list(await generate_batch_async(prompts))
        if len(responses) != len(prompts):
            raise MalformedResponseError(
                f"generate_batch_async returned {len(responses)} responses "
                f"for {len(prompts)} prompts"
            )
        return responses

    def _notify(self, waiters: int, prompts: int) -> None:
        if self.on_flush is not None:
            self.on_flush(waiters, prompts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MicroBatchCoalescer window_s={self.window_s}"
            f" max_batch={self.max_batch} pending={self.pending_keys}>"
        )
