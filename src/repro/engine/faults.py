"""Fault-tolerance primitives for the execution engine.

The engine built by PRs 1-8 is fast but fail-fast: one transient
backend hiccup inside a chunk worker used to propagate out of the
dispatcher, cancel every outstanding future and abort the whole run.
This module supplies the pieces that turn that into graceful
degradation:

* An **error taxonomy** (:class:`TransientModelError`,
  :class:`PermanentModelError`, :class:`MalformedResponseError`) that
  model adapters raise and :func:`classify_error` maps arbitrary
  exceptions onto.  All three subclass :class:`ModelError` which itself
  subclasses :class:`RuntimeError`, so pre-taxonomy call sites that
  assert ``RuntimeError`` keep working unchanged.
* A :class:`RetryPolicy` — exponential backoff with *deterministic*
  seeded jitter (no wall-clock randomness), so two runs with the same
  configuration retry on the same schedule and stay reproducible.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-model-identity
  breakers that open after a run of consecutive failures, cool down,
  and let a single half-open probe through before closing again.
* A :class:`RunJournal` — an append-only JSONL checkpoint of completed
  chunk outcomes, written with the same atomic-create / fsync-append
  discipline as the response cache's segments, so an interrupted run
  can resume and skip already-scored work.

The module is deliberately import-light (stdlib only at import time) so
``repro.llm.base`` can raise the taxonomy without creating an import
cycle through the engine package.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "ModelError",
    "TransientModelError",
    "PermanentModelError",
    "MalformedResponseError",
    "classify_error",
    "is_retryable",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerBoard",
    "RunJournal",
    "chunk_journal_key",
    "request_key",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_BREAKER_COOLDOWN_S",
    "DEFAULT_RETRY_BASE_MS",
]

#: Consecutive chunk failures on one model identity before its breaker opens.
DEFAULT_BREAKER_THRESHOLD = 5
#: Seconds an open breaker waits before letting a half-open probe through.
DEFAULT_BREAKER_COOLDOWN_S = 30.0
#: First-retry backoff in milliseconds (doubles per attempt).
DEFAULT_RETRY_BASE_MS = 50.0


# -- error taxonomy ---------------------------------------------------------------


class ModelError(RuntimeError):
    """Base class for classified model-call failures.

    Subclasses ``RuntimeError`` so existing ``pytest.raises(RuntimeError)``
    call sites (batch-length guards, coalescer flushes) keep passing when
    those sites switch to raising the taxonomy.
    """


class TransientModelError(ModelError):
    """A failure worth retrying: rate limit, timeout, dropped connection."""


class PermanentModelError(ModelError):
    """A failure retries cannot fix: bad credentials, unknown model, 4xx."""


class MalformedResponseError(ModelError):
    """The backend answered, but with an unusable payload (e.g. a batch of
    the wrong length).  Retryable — flaky backends often malform under
    load and answer correctly on the next attempt."""


def classify_error(error: BaseException) -> type:
    """Map an arbitrary exception to its taxonomy class.

    Already-classified errors pass through.  Network-ish stdlib errors
    (:class:`ConnectionError`, :class:`TimeoutError`, :class:`OSError`)
    classify transient.  Everything else defaults to transient too:
    retries are bounded, so the cost of optimistically retrying an
    unknown failure is a few backoff cycles, while misclassifying a
    recoverable blip as permanent forfeits the whole chunk.
    """
    if isinstance(error, ModelError):
        return type(error)
    if isinstance(error, (ConnectionError, TimeoutError, OSError)):
        return TransientModelError
    return TransientModelError


def is_retryable(error: BaseException) -> bool:
    """Whether the retry policy should re-dispatch after ``error``."""
    return not issubclass(classify_error(error), PermanentModelError)


# -- retry policy -----------------------------------------------------------------


def _deterministic_unit(key: str, attempt: int) -> float:
    """Uniform [0, 1) derived from ``(key, attempt)`` — stable across runs."""
    digest = hashlib.sha256(f"{key}|{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay_s(attempt, key)`` returns ``base_ms * 2**attempt`` (capped at
    ``max_ms``) scaled by a jitter factor in ``[0.5, 1.0)`` seeded from
    ``(key, attempt)`` — two runs with the same inputs back off on the
    same schedule, so retried runs stay bit-reproducible.
    """

    retries: int = 0
    base_ms: float = DEFAULT_RETRY_BASE_MS
    max_ms: float = 5000.0

    @property
    def enabled(self) -> bool:
        return self.retries > 0

    def allows(self, attempt: int) -> bool:
        """Whether a failure on ``attempt`` (0-based) may be retried."""
        return attempt < self.retries

    def delay_s(self, attempt: int, key: str = "") -> float:
        backoff_ms = min(self.base_ms * (2.0 ** attempt), self.max_ms)
        jitter = 0.5 + 0.5 * _deterministic_unit(key, attempt)
        return (backoff_ms * jitter) / 1000.0


# -- circuit breakers -------------------------------------------------------------


class CircuitBreaker:
    """Per-model-identity breaker: closed -> open -> half-open -> closed.

    The breaker opens after ``threshold`` *consecutive* failures, stays
    open for ``cooldown_s``, then admits exactly one half-open probe.  A
    probe success closes it (and resets the failure run); a probe
    failure re-opens it for another cooldown.  ``clock`` is injectable
    so tests can drive state transitions without sleeping.
    """

    def __init__(
        self,
        identity: str,
        threshold: int = DEFAULT_BREAKER_THRESHOLD,
        cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.identity = identity
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: Times this breaker transitioned closed/half-open -> open.
        self.open_events = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether a request to this identity may be dispatched now."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._probe_inflight:
                return False
            if self._clock() - self._opened_at >= self.cooldown_s:
                self._state = "half-open"
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._probe_inflight = False

    def record_failure(self) -> bool:
        """Count one failure; returns True when this one opened the breaker."""
        with self._lock:
            self._consecutive_failures += 1
            self._probe_inflight = False
            opened = False
            if (
                self._state == "half-open"
                or self._consecutive_failures >= self.threshold
            ):
                if self._state != "open":
                    self.open_events += 1
                    opened = True
                self._state = "open"
                self._opened_at = self._clock()
            return opened


class BreakerBoard:
    """Registry of :class:`CircuitBreaker` keyed on model ``cache_identity``."""

    def __init__(
        self,
        threshold: int = DEFAULT_BREAKER_THRESHOLD,
        cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, identity: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(identity)
            if breaker is None:
                breaker = CircuitBreaker(
                    identity, self.threshold, self.cooldown_s, self._clock
                )
                self._breakers[identity] = breaker
            return breaker

    def open_events(self) -> int:
        """Total open transitions across every identity (telemetry)."""
        with self._lock:
            return sum(b.open_events for b in self._breakers.values())


# -- run journal ------------------------------------------------------------------

_JOURNAL_FORMAT = "repro-run-journal"
_JOURNAL_VERSION = 1


def request_key(
    identity: str, strategy_value: str, scoring: str, record_name: str
) -> str:
    """Stable per-request journal key (independent of chunk boundaries)."""
    payload = "\x1f".join((identity, strategy_value, scoring, record_name))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def chunk_journal_key(keys: Iterable[str]) -> str:
    """Content hash naming one completed chunk's journal line.

    Diagnostic only — resume keys on the per-request entries, so it stays
    correct even when adaptive batching re-draws chunk boundaries.
    """
    digest = hashlib.sha256()
    for key in keys:
        digest.update(key.encode("ascii", "replace"))
        digest.update(b"\n")
    return digest.hexdigest()


class RunJournal:
    """Append-only JSONL checkpoint of completed chunk outcomes.

    One line per completed chunk, each carrying the per-request outcome
    dicts keyed by :func:`request_key`.  The file is created atomically
    (header written to a temp file, then ``os.replace``-ed into place —
    the response cache's segment discipline) and every append is flushed
    and fsynced, so a crash can lose at most the line being written.
    :meth:`load` skips a truncated tail line the same way the cache's
    segment parser does.

    Keys are content hashes of ``(model identity, strategy, scoring,
    record name)``, not chunk ids, so a resumed run skips finished work
    even if adaptive batching re-draws chunk boundaries.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._completed: Dict[str, Dict[str, Any]] = {}
        self._appends = 0
        self.load()

    def __len__(self) -> int:
        with self._lock:
            return len(self._completed)

    @property
    def appends(self) -> int:
        with self._lock:
            return self._appends

    # -- read side --------------------------------------------------------------

    def load(self) -> int:
        """(Re)load completed outcomes from disk; returns entries loaded.

        Damage-tolerant: a missing file means an empty journal, an
        unparsable or truncated line is skipped, a foreign header
        invalidates only the header line.
        """
        completed: Dict[str, Dict[str, Any]] = {}
        try:
            raw = self.path.read_bytes()
        except OSError:
            with self._lock:
                self._completed = {}
            return 0
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue  # truncated tail or corrupt line
            if not isinstance(payload, dict):
                continue
            if payload.get("format") == _JOURNAL_FORMAT:
                continue  # header line
            entries = payload.get("entries")
            if not isinstance(entries, dict):
                continue
            for key, outcome in entries.items():
                if isinstance(key, str) and isinstance(outcome, dict):
                    completed[key] = outcome
        with self._lock:
            self._completed = completed
        return len(completed)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._completed.get(key)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._completed

    # -- write side -------------------------------------------------------------

    def record(self, chunk_key: str, entries: Dict[str, Dict[str, Any]]) -> None:
        """Durably append one completed chunk's outcomes.

        I/O errors are swallowed after the in-memory index is updated:
        a journal that cannot be written must never abort the run it is
        protecting (the same contract as cache/cost-model persistence).
        """
        if not entries:
            return
        line = (
            json.dumps(
                {"chunk": chunk_key, "entries": entries},
                ensure_ascii=False,
                separators=(",", ": "),
            )
            + "\n"
        )
        with self._lock:
            self._completed.update(entries)
            try:
                self._ensure_file_locked()
                with open(self.path, "ab") as handle:
                    handle.write(line.encode("utf-8"))
                    handle.flush()
                    os.fsync(handle.fileno())
                self._appends += 1
            except OSError:
                pass

    def _ensure_file_locked(self) -> None:
        """Atomically create the journal with its header line if absent."""
        if self.path.exists():
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = (
            json.dumps({"format": _JOURNAL_FORMAT, "version": _JOURNAL_VERSION})
            + "\n"
        )
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-journal-", dir=str(self.path.parent)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(header.encode("utf-8"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
