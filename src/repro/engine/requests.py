"""Request and result types for the execution engine.

A :class:`DetectionRequest` names one unit of evaluation work: ask *model*
about *record* under *strategy*, then score the response under one of the
scoring modes the paper's tables use.  Scoring — response parsing plus the
truth/prediction bookkeeping that feeds :class:`ConfusionCounts` — lives
here and nowhere else; the pipeline, the experiment drivers and the
cross-validation loop all assemble their confusion counts through
:func:`score_response` / :meth:`RunResultStore.confusion`.

Scoring modes
-------------

``"detection"``
    Yes/no detection (Tables 2–4): parse a yes/no verdict, treating an
    unparseable response as "no race".
``"pairs"``
    Variable identification (Tables 5–6): parse the structured pair
    response; when the model omits an explicit verdict, the presence of
    reported pairs counts as a positive.  A positive on a racy record is a
    true positive only when the reported pair is correct (paper §3.6).
``"pairs-strict"``
    Like ``"pairs"`` but an absent verdict counts as "no race" — the
    :meth:`DataRacePipeline.score_model` semantics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.eval.matching import pairs_correct
from repro.eval.metrics import ConfusionCounts
from repro.llm.base import LanguageModel
from repro.prompting.parsing import ParsedPairs, parse_pairs_response, parse_yes_no
from repro.prompting.strategy import PromptStrategy

__all__ = [
    "CONFIDENCE_MARKER_RE",
    "FAILED_RESPONSE",
    "SCORING_MODES",
    "SHED_RESPONSE",
    "DetectionRequest",
    "RunResult",
    "RunResultStore",
    "build_requests",
    "confusion_from_results",
    "failed_result",
    "iter_requests",
    "response_confidence",
    "score_response",
    "shed_result",
]

SCORING_MODES = ("detection", "pairs", "pairs-strict")


@dataclass(frozen=True)
class DetectionRequest:
    """One evaluation unit: (model, strategy, record) plus its scoring mode.

    ``record`` is a :class:`~repro.dataset.records.DRBMLRecord` (anything
    with ``name``, ``trimmed_code`` and ``has_race`` works).
    """

    model: LanguageModel
    strategy: PromptStrategy
    record: object
    scoring: str = "detection"

    def __post_init__(self) -> None:
        if self.scoring not in SCORING_MODES:
            raise ValueError(
                f"unknown scoring mode {self.scoring!r}; expected one of {SCORING_MODES}"
            )

    @property
    def code(self) -> str:
        return self.record.trimmed_code


@dataclass
class RunResult:
    """The scored outcome of one request."""

    model: str
    strategy: str
    record_name: str
    truth: bool
    response: str
    prediction: bool
    correct_positive: bool = True
    pairs: Optional[ParsedPairs] = None
    #: True when the engine's deadline planner shed this request instead of
    #: evaluating it: the model was never called, ``prediction`` is the
    #: no-race fallback (the same default an unparseable response gets) and
    #: ``response`` carries a sentinel.  Shed work is always explicit —
    #: a request never silently vanishes from the result store.
    skipped: bool = False
    #: True when the fault layer gave up on this request: retries were
    #: exhausted (or its model's circuit breaker was open with no cheaper
    #: cascade tier to route to), so the run completed without an answer
    #: for it.  Like shed work, failures are always explicit positional
    #: entries — a fault never silently drops a request or aborts the run.
    failed: bool = False
    #: How trustworthy the verdict looks, in ``[0, 1]`` — what the cascade
    #: router keys escalation on.  An explicit ``[confidence=X]`` marker in
    #: the response (the tier adapters emit one) wins; otherwise a parse
    #: heuristic applies.  ``None`` on shed results: never evaluated.
    confidence: Optional[float] = None


#: Response sentinel carried by deadline-shed results.
SHED_RESPONSE = "[shed: deadline budget exceeded]"

#: Response sentinel carried by fault-layer give-ups (retries exhausted or
#: breaker open with nowhere to degrade to).
FAILED_RESPONSE = "[failed: model error after retries]"


def shed_result(request: DetectionRequest) -> RunResult:
    """An explicit skip for a request the deadline planner shed."""
    return RunResult(
        model=request.model.name,
        strategy=request.strategy.value,
        record_name=request.record.name,
        truth=request.record.has_race,
        response=SHED_RESPONSE,
        prediction=False,
        correct_positive=True,
        pairs=None,
        skipped=True,
    )


def failed_result(request: DetectionRequest, error: str = "") -> RunResult:
    """An explicit failure entry for a request the fault layer gave up on.

    Mirrors :func:`shed_result`: the prediction is the no-race fallback,
    the response carries a sentinel (plus the final error, when known),
    and :func:`confusion_from_results` excludes the entry so an outage
    cannot masquerade as a sweep of true negatives.
    """
    response = FAILED_RESPONSE if not error else f"{FAILED_RESPONSE[:-1]}: {error}]"
    return RunResult(
        model=request.model.name,
        strategy=request.strategy.value,
        record_name=request.record.name,
        truth=request.record.has_race,
        response=response,
        prediction=False,
        correct_positive=True,
        pairs=None,
        failed=True,
    )


class RunResultStore:
    """Ordered collection of results with confusion-count assembly."""

    def __init__(self, results: Optional[Iterable[RunResult]] = None) -> None:
        self.results: List[RunResult] = list(results or [])

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> RunResult:
        return self.results[index]

    def append(self, result: RunResult) -> None:
        self.results.append(result)

    def confusion(self) -> ConfusionCounts:
        """Fold every result into TP/FP/TN/FN counts (the table layout).

        Deadline-shed and fault-failed results are excluded: the model
        never answered, so counting their fallback "no race" as a genuine
        negative would let the scheduling budget or a backend outage
        silently skew reported detection metrics.  Both stay visible on
        the results themselves (``skipped`` / ``failed``).
        """
        return confusion_from_results(self.results)

    def responses(self) -> List[str]:
        return [result.response for result in self.results]


def confusion_from_results(results: Iterable[RunResult]) -> ConfusionCounts:
    """Fold a result stream into confusion counts, one result at a time.

    The single implementation behind :meth:`RunResultStore.confusion`, usable
    directly on a streaming run (``engine.run_streaming``) without buffering
    the results — deadline-shed results are excluded for the reasons
    documented there.
    """
    counts = ConfusionCounts()
    for result in results:
        if result.skipped or result.failed:
            continue
        counts.add(
            result.truth,
            result.prediction,
            correct_positive=result.correct_positive,
        )
    return counts


def iter_requests(
    model: LanguageModel,
    strategy: PromptStrategy,
    records: Iterable,
    *,
    scoring: Optional[str] = None,
) -> Iterator[DetectionRequest]:
    """Lazily build requests for one model/strategy over a record stream.

    The streaming counterpart of :func:`build_requests`: requests are
    constructed one at a time as the consumer pulls, so composing this with
    a lazy record producer keeps residency O(1) in corpus size.
    """
    if scoring is None:
        scoring = "pairs" if strategy.requests_pairs else "detection"
    for record in records:
        yield DetectionRequest(model=model, strategy=strategy, record=record, scoring=scoring)


def build_requests(
    model: LanguageModel,
    strategy: PromptStrategy,
    records: Sequence,
    *,
    scoring: Optional[str] = None,
) -> List[DetectionRequest]:
    """Requests for one model/strategy over a record sequence.

    When ``scoring`` is omitted it follows the strategy: pair-requesting
    strategies score as ``"pairs"``, everything else as ``"detection"``.
    """
    return list(iter_requests(model, strategy, records, scoring=scoring))


#: Explicit confidence marker emitted by the cascade tier adapters; any
#: model may append one to have the router trust its own calibration.
CONFIDENCE_MARKER_RE = re.compile(r"\[confidence=([0-9]*\.?[0-9]+)\]")

_YES_WORD_RE = re.compile(r"\byes\b", re.IGNORECASE)
_NO_WORD_RE = re.compile(r"\bno\b", re.IGNORECASE)


def response_confidence(scoring: str, response: str) -> float:
    """How trustworthy a response's verdict looks, in ``[0, 1]``.

    An explicit ``[confidence=X]`` marker always wins — that is how the
    cascade's analyzer/inspector tiers report their own calibration.
    Without a marker the confidence is a parse-quality heuristic: clean
    verdicts score high, hedged answers (both yes and no present, regex
    fallback parses) score medium, unparseable responses score zero.
    Deterministic in the response text, so cached responses re-score
    identically across runs.
    """
    if not response:
        return 0.0
    match = CONFIDENCE_MARKER_RE.search(response)
    if match:
        try:
            value = float(match.group(1))
        except ValueError:  # pragma: no cover - regex precludes this
            return 0.0
        return max(0.0, min(1.0, value))
    if scoring == "detection":
        if parse_yes_no(response) is None:
            return 0.0
        if _YES_WORD_RE.search(response) and _NO_WORD_RE.search(response):
            return 0.6
        return 0.8
    pairs = parse_pairs_response(response)
    if pairs.race is None and not pairs.has_pairs:
        return 0.0
    if pairs.used_fallback:
        return 0.6
    return 0.85


def score_response(request: DetectionRequest, response: str) -> RunResult:
    """Parse and score one model response under the request's scoring mode."""
    record = request.record
    if request.scoring == "detection":
        verdict = parse_yes_no(response)
        prediction = bool(verdict) if verdict is not None else False
        pairs = None
        correct = True
    else:
        pairs = parse_pairs_response(response)
        if request.scoring == "pairs":
            prediction = bool(pairs.race) if pairs.race is not None else pairs.has_pairs
        else:  # "pairs-strict"
            prediction = bool(pairs.race)
        correct = pairs_correct(pairs, record)
    return RunResult(
        model=request.model.name,
        strategy=request.strategy.value,
        record_name=record.name,
        truth=record.has_race,
        response=response,
        prediction=prediction,
        correct_positive=correct,
        pairs=pairs,
        confidence=response_confidence(request.scoring, response),
    )
