"""Per-(model, strategy) latency cost model driving the engine's scheduling.

The evaluation workload is embarrassingly parallel but *heterogeneous*: a
fine-tuned Llama answering ADVANCED pair prompts costs orders of magnitude
more wall time per request than a cached GPT-3.5 yes/no check.  The engine
therefore keeps a :class:`CostModel` — an exponentially weighted moving
average (EWMA) of observed seconds-per-request for every
``(model.cache_identity, strategy)`` group — and uses it two ways:

* **LPT ordering** — chunks are dispatched longest-processing-time first,
  so the expensive groups start immediately and the cheap ones pack into
  the gaps, instead of a slow group scheduled last turning into a straggler
  tail while every other worker idles (classic list-scheduling: LPT bounds
  the makespan at 4/3 of optimal, arbitrary order only at 2×).
* **adaptive chunk sizing** — slow groups get smaller chunks (finer
  scheduling granularity, so one chunk can never add a long indivisible
  tail) and fast or cached groups get larger ones (less per-chunk
  overhead).

Observations are fed by the engine after every chunk completes — including
chunks scored in worker processes, whose elapsed time rides back with the
chunk outcome — so a long-lived engine (the CLI's ``repro all``, the
pipeline facade, the benchmark harness) adapts from its own telemetry
within a session.  The model can also be persisted as a small JSON file
beside the response cache (the CLI stores ``costmodel.json`` inside the
``--cache`` directory), so the *first* run of a new session already knows
which groups are slow.

Like the response cache, a cost model store is an optimisation, never a
requirement: a missing, corrupt or version-mismatched file loads as empty
and the scheduler falls back to plan order and uniform chunk sizes.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import tempfile
import threading
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["CostModel"]

#: Mean absolute deviation of a normal distribution is sqrt(2/pi) * sigma;
#: this converts the EWMA of absolute residuals back to a sigma estimate.
_MAD_TO_SIGMA = math.sqrt(math.pi / 2.0)

#: Bump when the on-disk layout changes.
_FORMAT = "repro-cost-model"
_FORMAT_VERSION = 1


class CostModel:
    """EWMA seconds-per-request estimates per ``(model identity, strategy)``.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor in ``(0, 1]``: the weight of the newest
        observation.  The default favours stability over reactivity — one
        anomalously slow chunk (GC pause, cold pool) should not reorder the
        whole next run.
    path:
        Optional JSON store; loaded on construction when it exists,
        written by :meth:`save`.
    """

    def __init__(
        self, *, alpha: float = 0.25, path: Optional[Union[str, Path]] = None
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._ewma: Dict[Tuple[str, str], float] = {}
        #: EWMA of the *absolute residual* |observation - mean| per group —
        #: a robust dispersion estimate feeding :meth:`quantile_estimate`,
        #: so the scheduler can reason about tails, not just means.
        self._deviation: Dict[Tuple[str, str], float] = {}
        self._observations: Dict[Tuple[str, str], int] = {}
        #: identity -> strategies observed for it, so per-identity queries
        #: (:meth:`identity_estimate`, called on the cache's eviction hot
        #: path) scan a handful of strategies instead of every group.
        self._identity_strategies: Dict[str, set] = {}
        #: Planning-only priors for never-observed groups (e.g. the cascade's
        #: analyzer tiers advertising ``cost_prior_s``).  Never persisted and
        #: never blended into the EWMA: the first real observation simply
        #: shadows the prior.
        self._priors: Dict[Tuple[str, str], float] = {}
        #: One warning per instance when persistence degrades (see save()).
        self._io_warned = False
        if self.path is not None and self.path.exists():
            self.load(self.path)

    def __len__(self) -> int:
        """How many (identity, strategy) groups have an estimate."""
        with self._lock:
            return len(self._ewma)

    def __bool__(self) -> bool:
        # An empty model is still a usable model.
        return True

    # -- recording / querying -------------------------------------------------------

    def observe(self, identity: str, strategy: str, seconds_per_request: float) -> None:
        """Fold one chunk's measured per-request latency into the EWMA.

        Non-finite observations are rejected outright: ``nan`` compares
        false against every bound, so a single NaN would silently poison
        the EWMA, ``identity_estimate``'s ``max()``, ``snapshot()``'s sort
        and the LPT ordering — and then persist via ``costmodel.json``.
        """
        if not math.isfinite(seconds_per_request) or seconds_per_request < 0:
            return
        key = (identity, strategy)
        with self._lock:
            previous = self._ewma.get(key)
            if previous is None:
                self._ewma[key] = seconds_per_request
                self._deviation[key] = 0.0
            else:
                # Residual against the *pre-update* mean: measuring against
                # the already-blended mean would shrink every residual by
                # (1 - alpha) and systematically understate the spread.
                residual = abs(seconds_per_request - previous)
                self._ewma[key] = (
                    self.alpha * seconds_per_request + (1.0 - self.alpha) * previous
                )
                self._deviation[key] = (
                    self.alpha * residual
                    + (1.0 - self.alpha) * self._deviation.get(key, 0.0)
                )
            self._observations[key] = self._observations.get(key, 0) + 1
            self._identity_strategies.setdefault(identity, set()).add(strategy)

    def estimate(
        self, identity: str, strategy: str, default: Optional[float] = None
    ) -> Optional[float]:
        """Estimated seconds per request, or ``default`` when never observed."""
        with self._lock:
            return self._ewma.get((identity, strategy), default)

    def set_prior(self, identity: str, strategy: str, seconds_per_request: float) -> None:
        """Register a planning-only default cost for a never-observed group.

        This is the cold-start fix for non-LLM cascade tiers: an analyzer
        tier with no observations must price as *cheap-but-unknown* rather
        than returning ``None`` and blocking LPT ordering for the whole
        plan.  Priors only affect :meth:`planning_estimate` — they never
        feed :meth:`quantile_estimate` (no speculation on groups whose
        spread was never measured), :meth:`identity_estimate`,
        :meth:`snapshot` or the persisted store.
        """
        if not math.isfinite(seconds_per_request) or seconds_per_request < 0:
            return
        with self._lock:
            self._priors[(identity, strategy)] = float(seconds_per_request)

    def planning_estimate(
        self, identity: str, strategy: str, default: Optional[float] = None
    ) -> Optional[float]:
        """Like :meth:`estimate`, but falling back to a registered prior.

        Observations always win; the prior only fills the cold-start gap.
        For groups with neither an observation nor a prior this behaves
        exactly like :meth:`estimate`.
        """
        with self._lock:
            value = self._ewma.get((identity, strategy))
            if value is not None:
                return value
            return self._priors.get((identity, strategy), default)

    def quantile_estimate(
        self,
        identity: str,
        strategy: str,
        quantile: float = 0.95,
        default: Optional[float] = None,
    ) -> Optional[float]:
        """Estimated per-request seconds at ``quantile``, or ``default``.

        Approximates the observation distribution as normal around the
        EWMA mean, with sigma recovered from the EWMA of absolute
        residuals.  This is what tail-latency decisions (speculative
        re-execution) key on: a chunk is only a straggler relative to the
        *spread* of its group, not its mean — a noisy group should need a
        larger overshoot before a duplicate is launched.  With a single
        observation (deviation 0) this degrades to the mean, exactly like
        :meth:`estimate`.
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        with self._lock:
            key = (identity, strategy)
            mean = self._ewma.get(key)
            if mean is None:
                return default
            sigma = self._deviation.get(key, 0.0) * _MAD_TO_SIGMA
        if sigma <= 0.0:
            return mean
        z = statistics.NormalDist().inv_cdf(quantile)
        return max(mean, mean + z * sigma)

    def identity_estimate(
        self, identity: str, default: Optional[float] = None
    ) -> Optional[float]:
        """The *worst-case* seconds-per-request estimate for one model identity.

        The maximum over every strategy observed for ``identity`` — the
        right number for decisions made per model rather than per group,
        like the response cache's cost-aware eviction (a cached response
        is worth at most what regenerating it would cost).  ``default``
        when the identity was never observed under any strategy.
        """
        with self._lock:
            strategies = self._identity_strategies.get(identity)
            if not strategies:
                return default
            return max(self._ewma[(identity, strategy)] for strategy in strategies)

    def snapshot(self) -> List[Dict[str, object]]:
        """Every group's estimate as plain dicts (slowest first)."""
        with self._lock:
            groups = [
                {
                    "model": identity,
                    "strategy": strategy,
                    "seconds_per_request": value,
                    "seconds_dev": self._deviation.get((identity, strategy), 0.0),
                    "observations": self._observations.get((identity, strategy), 0),
                }
                for (identity, strategy), value in self._ewma.items()
            ]
        groups.sort(key=lambda g: -g["seconds_per_request"])  # type: ignore[operator]
        return groups

    def clear(self) -> None:
        with self._lock:
            self._ewma.clear()
            self._deviation.clear()
            self._observations.clear()
            self._identity_strategies.clear()
            self._priors.clear()

    # -- persistence ----------------------------------------------------------------

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Write the model as one small JSON file (temp file + atomic rename).

        Like the response cache's save, I/O failure (full disk, read-only
        directory) is warned once per instance instead of raised — the
        store is an optimisation, and losing it must not abort the run
        whose results it would have primed.  The estimates stay in memory.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no cost-model path configured")
        payload = {
            "format": _FORMAT,
            "version": _FORMAT_VERSION,
            "alpha": self.alpha,
            "groups": self.snapshot(),
        }
        tmp_name = None
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{target.name}-", suffix=".tmp", dir=target.parent
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            os.replace(tmp_name, target)
        except OSError as exc:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            if not self._io_warned:
                self._io_warned = True
                warnings.warn(
                    f"[costmodel] save to {target} failed ({exc}); "
                    "estimates kept in memory",
                    RuntimeWarning,
                    stacklevel=2,
                )
        except BaseException:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            raise
        return target

    def load(self, path: Union[str, Path]) -> int:
        """Merge estimates from ``path``; damaged stores load as empty.

        Returns how many groups were applied.  Loaded estimates overwrite
        in-memory ones for the same group (the store is assumed newer than
        nothing), but never raise: the cost model degrades to plan-order
        scheduling, exactly like a cold start.
        """
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return 0
        if (
            not isinstance(payload, dict)
            or payload.get("format") != _FORMAT
            or payload.get("version") != _FORMAT_VERSION
            or not isinstance(payload.get("groups"), list)
        ):
            return 0
        applied = 0
        with self._lock:
            for group in payload["groups"]:
                if not isinstance(group, dict):
                    continue
                identity = group.get("model")
                strategy = group.get("strategy")
                seconds = group.get("seconds_per_request")
                if (
                    not isinstance(identity, str)
                    or not isinstance(strategy, str)
                    or not isinstance(seconds, (int, float))
                    # json.loads happily parses the NaN/Infinity literals
                    # json.dump emits, so a poisoned store would round-trip
                    # forever without this guard.
                    or not math.isfinite(seconds)
                    or seconds < 0
                ):
                    continue
                key = (identity, strategy)
                self._ewma[key] = float(seconds)
                deviation = group.get("seconds_dev")
                self._deviation[key] = (
                    float(deviation)
                    if isinstance(deviation, (int, float))
                    and math.isfinite(deviation)
                    and deviation >= 0
                    else 0.0
                )
                self._identity_strategies.setdefault(identity, set()).add(strategy)
                observations = group.get("observations")
                self._observations[key] = (
                    int(observations) if isinstance(observations, int) and observations > 0 else 1
                )
                applied += 1
        return applied

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CostModel groups={len(self)} alpha={self.alpha}>"
