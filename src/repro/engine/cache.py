"""Content-addressed response cache with segmented JSONL persistence.

The cache maps ``(model identity, prompt)`` to the model's response.  Keys
are content-addressed: the identity string and the full prompt text are
hashed together, so two models that would answer differently (for example
two fine-tuned variants trained on different folds) never share entries as
long as their :attr:`~repro.llm.base.LanguageModel.cache_identity` differs.

Two storage layers compose:

* an in-memory LRU bounded by ``max_entries`` — and optionally by a byte
  budget (``max_bytes``) and an age limit (``ttl_s``).  Victim selection
  is tiered: expired entries go first, then — depending on which knobs
  are on — the entry with the most bytes-reclaimed per cost-model
  second-to-regenerate, the largest, the cheapest to regenerate
  (``cost_aware_eviction``), or plainly the oldest;
* an optional on-disk store — a *directory* of append-only JSONL segments
  (``segment-000001.jsonl``, …), loaded on construction and grown by
  :meth:`ResponseCache.save`.  With ``shared_read=True`` the segments are
  *not* loaded into memory at all: misses are served through the
  host-wide mmap-backed :class:`~repro.engine.sharedstore.SharedSegmentStore`,
  so any number of concurrent runs share one physical copy of the store.

The segmented format exists so long runs persist **incrementally**: each
``save`` writes only the entries added since the previous one, as one or
more new size-bounded segments (``segment_max_entries`` per shard), instead
of rewriting the whole store.  Segments are written to a temp file and
atomically renamed into place, so an interrupted run can never corrupt
earlier segments — at worst the newest segment is truncated, and truncated
or otherwise damaged lines simply don't load.  :meth:`compact` folds all
live entries back into a minimal set of segments when shard count grows —
and runs **automatically**: the cache tracks the on-disk dead/duplicate
entry ratio (appended lines superseded by later re-inserts of the same
key), and when a save pushes it past ``auto_compact_ratio`` with at least
``auto_compact_min_segments`` shards on disk, the store is folded in the
same save, so long-lived caches never accumulate unbounded dead weight.

Old-format caches (the single-JSON-file layout of format version 1) still
load; the first ``save`` migrates them to a segment directory at the same
path.

All operations are thread-safe; the thread-pool executor hits the cache
concurrently, and the engine's distributed (process) path uses
:meth:`snapshot_entries` / :meth:`put_key` to ship a read-only view to
workers and merge their results back.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["CacheStats", "ResponseCache", "cache_key"]

#: Bump when the key derivation or on-disk layout changes.
_CACHE_FORMAT_VERSION = 2
#: Format version of the legacy whole-file JSON layout (still loadable).
_LEGACY_FORMAT_VERSION = 1
#: First line of every segment file; segments with a different header are
#: ignored wholesale (future-format or foreign files).
_SEGMENT_FORMAT = "repro-response-cache"
_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"
#: Writer-side attestation of the committed segment set.  Rewritten (atomic
#: replace) after every save/compact/migration commit point, it lets the
#: shared read tier answer "did anything change?" with one stat of this file
#: instead of a stat sweep over every segment.  Purely advisory: a missing,
#: stale or corrupt manifest only disables that fast-path, never correctness
#: — readers fall back to the sweep, and foreign writers that don't update
#: it are detected because the manifest then disagrees with the directory.
_MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "repro-response-cache-manifest"
_MANIFEST_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compactions: int = 0
    #: Entries dropped because they outlived ``ttl_s`` (counted separately
    #: from capacity evictions; an expired lookup also counts as a miss).
    expirations: int = 0
    #: Hot shared-store disk hits promoted into the in-memory tier (see
    #: :attr:`ResponseCache.shared_promote_after`).
    promotions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "compactions": self.compactions,
            "expirations": self.expirations,
            "promotions": self.promotions,
            "hit_rate": round(self.hit_rate, 4),
        }


def cache_key(identity: str, prompt: str) -> str:
    """Content-addressed key for one ``(model identity, prompt)`` request."""
    digest = hashlib.sha256()
    digest.update(identity.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(prompt.encode("utf-8"))
    return digest.hexdigest()


class ResponseCache:
    """Thread-safe LRU response cache with segmented JSONL persistence."""

    def __init__(
        self,
        max_entries: int = 65536,
        *,
        path: Optional[Union[str, Path]] = None,
        segment_max_entries: int = 1024,
        auto_compact_ratio: Optional[float] = 0.5,
        auto_compact_min_segments: int = 4,
        cost_aware_eviction: bool = False,
        cost_model=None,
        eviction_sample: int = 8,
        max_bytes: Optional[int] = None,
        ttl_s: Optional[float] = None,
        shared_read: bool = False,
        shared_promote_after: int = 2,
        clock=None,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if segment_max_entries <= 0:
            raise ValueError("segment_max_entries must be positive")
        if auto_compact_ratio is not None and not 0.0 < auto_compact_ratio <= 1.0:
            raise ValueError("auto_compact_ratio must be in (0, 1] or None")
        if eviction_sample < 1:
            raise ValueError("eviction_sample must be >= 1")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive or None")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive or None")
        if shared_read and path is None:
            raise ValueError("shared_read requires a cache path")
        if shared_promote_after < 1:
            raise ValueError("shared_promote_after must be >= 1")
        self.max_entries = max_entries
        self.segment_max_entries = segment_max_entries
        #: Fold the on-disk store when its dead-entry ratio exceeds this
        #: (``None`` disables auto-compaction; :meth:`compact` stays manual).
        self.auto_compact_ratio = auto_compact_ratio
        #: Never auto-compact below this many segments — folding two tiny
        #: shards saves nothing and costs a rewrite on every save.
        self.auto_compact_min_segments = auto_compact_min_segments
        #: Weight LRU eviction by the cost model's seconds-per-request
        #: estimate for each entry's model identity: among the oldest
        #: ``eviction_sample`` entries, the *cheapest to regenerate* goes
        #: first, so slow models' responses survive longest.  Requires a
        #: ``cost_model`` (anything with ``identity_estimate(identity)``,
        #: i.e. :class:`~repro.engine.costmodel.CostModel`); without one
        #: the policy degrades to plain LRU.
        self.cost_aware_eviction = cost_aware_eviction
        self.cost_model = cost_model
        self.eviction_sample = eviction_sample
        #: Byte budget for the in-memory tier (``None`` = unbounded).  When
        #: set, eviction runs until the total entry bytes fit, and victim
        #: selection weighs bytes-reclaimed against each entry's
        #: seconds-to-regenerate (see :meth:`_select_victim_locked`).
        self.max_bytes = max_bytes
        #: Maximum in-memory age in seconds (``None`` = immortal).  Expiry
        #: is lazy — checked on lookup and during eviction scans — and
        #: governs only the in-memory tier; the on-disk store stays the
        #: durable source of truth.
        self.ttl_s = ttl_s
        #: Serve disk entries through the host-wide mmap-backed
        #: :class:`~repro.engine.sharedstore.SharedSegmentStore` instead of
        #: loading a private in-memory copy of the segments.
        self.shared_read = shared_read
        #: Promote a shared-store disk hit into the in-memory tier once the
        #: same key has hit the store this many times — a hot entry then
        #: serves at dict-lookup speed under the usual ``max_entries``/
        #: ``max_bytes`` budget, while one-shot keys stay on the mapped
        #: pages and never build a private copy.
        self.shared_promote_after = shared_promote_after
        self._clock = clock if clock is not None else time.monotonic
        self.path = Path(path) if path is not None else None
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        #: key -> approximate entry bytes (key length + utf-8 response
        #: length); the sum is ``_total_bytes``, compared to ``max_bytes``.
        self._sizes: Dict[str, int] = {}
        self._total_bytes = 0
        #: key -> insertion epoch (``clock()`` at insert/replace time).
        self._epochs: Dict[str, float] = {}
        #: key -> model identity, recorded on insert when known and
        #: persisted alongside each segment entry, so reloaded caches keep
        #: their cost weights.  Entries from stores written before the
        #: identity field existed (or merged via ``put_key`` without one)
        #: have no identity and therefore no cost weight — those evict
        #: first under cost-aware eviction.
        self._identities: Dict[str, str] = {}
        #: Keys known to be on disk at ``self.path`` already.
        self._persisted: set = set()
        #: Insertion-ordered keys added since the last save (dict-as-set).
        self._pending: "OrderedDict[str, None]" = OrderedDict()
        #: key -> shared-store hit count, feeding ``shared_promote_after``.
        #: Bounded by the distinct disk keys this instance actually read —
        #: the same order as ``_persisted`` — and dropped on promotion.
        self._store_hits: Dict[str, int] = {}
        #: Entry *lines* on disk at ``self.path``, counting duplicates a
        #: re-insert appended — the denominator of the dead-entry ratio.
        self._disk_entry_lines = 0
        self._store = None
        #: One warning per instance for degraded persistence I/O — the
        #: condition (full disk, read-only dir, racing foreign writer) is
        #: usually persistent, and repeating it per save is just noise.
        self._io_warned = False
        if self.shared_read:
            if self.path is not None and self.path.is_file():
                raise ValueError(
                    "shared_read requires a segment directory; "
                    "legacy single-file caches must be migrated first"
                )
            from repro.engine.sharedstore import SharedSegmentStore

            try:
                self._store = SharedSegmentStore.open(self.path)
            except OSError as exc:
                # A foreign writer racing the open (segments or the
                # directory itself vanishing mid-scan) must not take the
                # run down: degrade to a private load of whatever is there.
                self.shared_read = False
                self._warn_io(f"shared cache store unavailable ({exc}); using a private load")
                if self.path is not None and self.path.exists():
                    self.load(self.path)
        elif self.path is not None and self.path.exists():
            self.load(self.path)

    def _warn_io(self, message: str) -> None:
        """Warn once per instance that persistence is degraded, never raise."""
        if self._io_warned:
            return
        self._io_warned = True
        warnings.warn(f"[cache] {message}", RuntimeWarning, stacklevel=3)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- lookup / insert ------------------------------------------------------------

    def get(self, identity: str, prompt: str) -> Optional[str]:
        """The cached response, or ``None`` on a miss (recorded in stats).

        Lookups consult the in-memory tier first (expired entries are
        dropped lazily here), then — in ``shared_read`` mode — the
        host-wide mmap-backed segment store.  A shared-store hit is served
        straight off the mapped pages; only once a key proves *hot*
        (``shared_promote_after`` store hits) is it promoted into the
        in-memory tier under the usual entry/byte budget, so N readers of
        one store still never build N private copies of the cold majority.
        """
        key = cache_key(identity, prompt)
        with self._lock:
            if key in self._entries:
                if self._expired_locked(key):
                    self._drop_entry_locked(key)
                    self.stats.expirations += 1
                else:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return self._entries[key]
            if self._store is not None:
                response = self._store.get(key)
                if response is not None:
                    self.stats.hits += 1
                    hits = self._store_hits.get(key, 0) + 1
                    if hits >= self.shared_promote_after:
                        self._store_hits.pop(key, None)
                        self._promote_from_store_locked(key, response)
                    else:
                        self._store_hits[key] = hits
                    return response
            self.stats.misses += 1
            return None

    def put(self, identity: str, prompt: str, response: str) -> None:
        """Insert one response, evicting the least recently used on overflow."""
        self.put_key(cache_key(identity, prompt), response, identity=identity)

    def put_key(self, key: str, response: str, identity: Optional[str] = None) -> None:
        """Insert by precomputed key (the engine's distributed merge path).

        ``identity`` attaches the model identity for cost-aware eviction;
        the key itself is a one-way hash, so the identity must ride along
        explicitly where the caller still knows it.
        """
        with self._lock:
            existing = self._entries.get(key)
            self._entries[key] = response
            self._entries.move_to_end(key)
            self._note_entry_locked(key, response)
            if identity is not None:
                self._identities[key] = identity
            store_holds_it = False
            if self._store is not None and existing is None:
                # Shared-read mode never loaded the segments into memory,
                # so `_persisted` starts empty; a merge of a warm result
                # the store already holds must not re-append a dead line.
                # Checked even for keys already in `_persisted` — a
                # promoted-then-evicted entry re-inserted with the same
                # value is still durable on disk.
                if self._store.get(key) == response:
                    self._persisted.add(key)
                    store_holds_it = True
            # New keys are pending by definition; a persisted key whose
            # value changed — including one evicted from memory since, where
            # ``existing`` is ``None`` — must be re-appended or the disk
            # copy goes stale (later segments win at load time).
            if not store_holds_it and (key not in self._persisted or existing != response):
                self._pending[key] = None
            self._evict_overflow_locked()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._identities.clear()
            self._pending.clear()
            self._sizes.clear()
            self._epochs.clear()
            self._store_hits.clear()
            self._total_bytes = 0

    def _promote_from_store_locked(self, key: str, response: str) -> None:
        """Lift one hot shared-store entry into the in-memory tier.

        The entry becomes an ordinary LRU citizen — budgeted by
        ``max_entries``/``max_bytes``, evictable, TTL-tracked from
        promotion time — but is *not* marked pending: the store already
        holds it durably, so a later save must not re-append a dead line.
        The model identity rides along from the store's entry metadata so
        cost-aware eviction keeps its weight.
        """
        self._entries[key] = response
        self._entries.move_to_end(key)
        self._note_entry_locked(key, response)
        identity = self._store.identity(key)
        if identity is not None:
            self._identities[key] = identity
        self._persisted.add(key)
        self.stats.promotions += 1
        self._store.note_promotion()
        self._evict_overflow_locked()

    def snapshot_entries(self) -> Dict[str, str]:
        """A plain key→response copy (read-only view for worker processes)."""
        with self._lock:
            return dict(self._entries)

    def snapshot_records(self) -> List[Tuple[str, str, Optional[str]]]:
        """``(key, response, identity)`` triples for the broadcast encoder."""
        with self._lock:
            return [
                (key, response, self._identities.get(key))
                for key, response in self._entries.items()
            ]

    @property
    def total_bytes(self) -> int:
        """Approximate bytes held by the in-memory tier."""
        with self._lock:
            return self._total_bytes

    @property
    def shared_store(self):
        """The :class:`SharedSegmentStore` backing ``shared_read`` (or ``None``)."""
        return self._store

    @property
    def pending_count(self) -> int:
        """Entries waiting to be persisted by the next :meth:`save`."""
        with self._lock:
            return len(self._pending)

    @property
    def dead_entry_ratio(self) -> float:
        """Fraction of on-disk entry lines superseded by later re-inserts.

        ``0.0`` for a store where every line is live (or no store at all);
        approaches ``1.0`` as appends keep rewriting the same keys.  This
        is the signal :meth:`save` uses to trigger automatic compaction.
        """
        with self._lock:
            return self._dead_ratio_locked()

    def _dead_ratio_locked(self) -> float:
        if self._store is not None:
            # Shared-read caches never load the segments, so the private
            # persisted/line bookkeeping is blind; the store's scan knows.
            return self._store.dead_ratio()
        if self._disk_entry_lines <= 0:
            return 0.0
        return max(0.0, 1.0 - len(self._persisted) / self._disk_entry_lines)

    def _note_entry_locked(self, key: str, response: str) -> None:
        """Record size and insertion epoch for one inserted/replaced entry."""
        size = len(key) + len(response.encode("utf-8"))
        self._total_bytes += size - self._sizes.get(key, 0)
        self._sizes[key] = size
        self._epochs[key] = self._clock()

    def _drop_entry_locked(self, key: str) -> None:
        del self._entries[key]
        self._identities.pop(key, None)
        self._pending.pop(key, None)
        self._total_bytes -= self._sizes.pop(key, 0)
        self._epochs.pop(key, None)

    def _expired_locked(self, key: str, now: Optional[float] = None) -> bool:
        if self.ttl_s is None:
            return False
        if now is None:
            now = self._clock()
        return now - self._epochs.get(key, now) > self.ttl_s

    def _over_budget_locked(self) -> bool:
        if len(self._entries) > self.max_entries:
            return True
        return self.max_bytes is not None and self._total_bytes > self.max_bytes

    def _evict_overflow_locked(self) -> None:
        while self._entries and self._over_budget_locked():
            evicted = self._select_victim_locked()
            self._drop_entry_locked(evicted)
            self.stats.evictions += 1

    def _select_victim_locked(self) -> str:
        """The key to evict next — a tiered policy over an LRU sample.

        Tier 0 (free): an already-expired entry in the sample goes first —
        dropping it loses nothing.  Then, among the ``eviction_sample``
        least recently used entries:

        * with a byte budget *and* cost-aware eviction, the entry with the
          highest bytes-reclaimed per second-to-regenerate goes — a huge
          cheap response no longer outlives a hundred tiny expensive ones;
        * with only a byte budget, the largest entry goes;
        * with only cost-aware eviction, the cheapest-to-regenerate goes
          (the pre-existing policy, unchanged);
        * with neither, plain LRU: the oldest goes.

        Ties and unknown identities fall back to oldest-first (``min``/
        ``max`` are stable over the LRU-ordered sample), so every tier
        degrades to LRU when its signal is missing.  The bounded sample
        keeps eviction O(sample), not O(entries).
        """
        iterator = iter(self._entries)
        size_tiered = self.max_bytes is not None
        cost_aware = self.cost_aware_eviction and self.cost_model is not None
        if not size_tiered and not cost_aware and self.ttl_s is None:
            return next(iterator)
        sample = [key for key, _ in zip(iterator, range(self.eviction_sample))]
        if self.ttl_s is not None:
            now = self._clock()
            for key in sample:
                if self._expired_locked(key, now):
                    return key
        if not size_tiered and not cost_aware:
            return sample[0]

        def recompute_cost(key: str) -> float:
            identity = self._identities.get(key)
            if identity is None or self.cost_model is None:
                return 0.0
            estimate = self.cost_model.identity_estimate(identity)
            return estimate if estimate is not None else 0.0

        if size_tiered and cost_aware:
            return max(
                sample,
                key=lambda key: self._sizes.get(key, 0) / (recompute_cost(key) + 1e-9),
            )
        if size_tiered:
            return max(sample, key=lambda key: self._sizes.get(key, 0))
        # min() is stable: among equal costs the least recently used wins.
        return min(sample, key=recompute_cost)

    # -- persistence ----------------------------------------------------------------

    def segment_files(self, path: Optional[Union[str, Path]] = None) -> List[Path]:
        """Segment files at ``path`` (default: the constructor path), sorted."""
        target = Path(path) if path is not None else self.path
        if target is None or not target.is_dir():
            return []
        return sorted(target.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Persist to ``path`` (or the constructor path); returns the path.

        Saving to the constructor path is **incremental**: only entries
        added since the last save are appended, as new atomic segments.  A
        legacy single-file cache at that path is migrated to a segment
        directory carrying the union of the file's entries and memory —
        migration, like compaction, never shrinks the persistent store,
        even when the file held more entries than ``max_entries``.  Saving
        to any *other* path writes a deduplicated full snapshot (existing
        segments there are folded in and replaced, compact-style; the
        incremental bookkeeping only applies to the cache's own path).

        Persistence is an optimisation, never a requirement: I/O failure
        (full disk, read-only directory) is caught here — warned once per
        instance, never raised — and the unsaved entries stay in memory
        *and* pending, so a later save retries them.  A completed run's
        results must not be lost to a failing ``save`` at the finish line.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no cache file path configured")
        try:
            return self._save(target)
        except OSError as exc:
            self._warn_io(f"save to {target} failed ({exc}); results kept in memory")
            return target

    def _save(self, target: Path) -> Path:
        """The fallible save body; :meth:`save` owns the I/O-error policy."""
        incremental = self.path is not None and target == self.path
        with self._lock:
            if target.is_file():
                # Legacy v1 file: replace it with a segment directory.  Its
                # full entry set is re-read and merged under memory (the
                # in-memory LRU may hold fewer entries than the file), and
                # the directory is built fully beside the file before the
                # swap, so a crash mid-migration never destroys the cache.
                merged = self._parse_legacy_file(target)
                merged.update(self._entries)
                self._migrate_legacy_locked(target, self._as_records_locked(merged))
                if incremental:
                    self._persisted.update(merged)
                    self._pending.clear()
                    self._disk_entry_lines = len(merged)
                return target
            if incremental:
                items = [
                    (key, self._entries[key], self._identities.get(key))
                    for key in self._pending
                    if key in self._entries
                ]
                target.mkdir(parents=True, exist_ok=True)
                self._write_segments_locked(target, items)
                if items:
                    self._write_manifest_locked(target)
                self._persisted.update(key for key, _, _ in items)
                self._pending.clear()
                self._disk_entry_lines += len(items)
                self._refresh_store_locked()
                self._maybe_auto_compact_locked(target)
            else:
                # Full snapshot to a foreign path: fold any segments
                # already there together with memory (memory wins) and
                # replace them, so repeated snapshots never accumulate
                # duplicate entry lines.
                target.mkdir(parents=True, exist_ok=True)
                self._rewrite_dir_locked(target)
        return target

    def _maybe_auto_compact_locked(self, target: Path) -> bool:
        """Fold the store if the dead-entry ratio crossed the threshold."""
        if self.auto_compact_ratio is None:
            return False
        if self._dead_ratio_locked() <= self.auto_compact_ratio:
            return False
        segments = list(target.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))
        if len(segments) < self.auto_compact_min_segments:
            return False
        self._compact_locked(target)
        return True

    def _compact_locked(self, target: Path) -> None:
        """Shared implementation of manual :meth:`compact` and auto-compact."""
        merged = self._rewrite_dir_locked(target)
        if self.path is not None and target == self.path:
            self._persisted = set(merged)
            self._pending.clear()
            self._disk_entry_lines = len(merged)
            self._refresh_store_locked()
        self.stats.compactions += 1

    def _refresh_store_locked(self) -> None:
        """Let the shared read tier pick up segments this cache just wrote.

        The store's own refresh already tolerates segments vanishing
        between the manifest stat and the mmap (a foreign compaction); a
        surprise failure here still only costs the fast path — the store
        keeps serving its previous view.
        """
        if self._store is not None:
            try:
                self._store.refresh()
            except OSError as exc:
                self._warn_io(f"shared store refresh failed ({exc}); keeping previous view")

    def _as_records_locked(
        self, entries: Dict[str, str]
    ) -> List[Tuple[str, str, Optional[str]]]:
        """Attach the known identity (or ``None``) to each entry for writing."""
        return [
            (key, response, self._identities.get(key))
            for key, response in entries.items()
        ]

    def _rewrite_dir_locked(self, target: Path) -> Dict[str, str]:
        """Fold ``target``'s segments together with memory into fresh ones.

        Parses every existing segment, overlays the in-memory entries
        (memory wins on conflicts; on-disk identities are kept for entries
        memory has no identity for), writes the merged set as new segments
        and removes the old files.  Returns the merged key→response map.
        """
        old_segments = sorted(target.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))
        merged: Dict[str, str] = {}
        identities: Dict[str, str] = {}
        for segment in old_segments:
            for key, (response, identity) in self._parse_segment(segment).items():
                merged[key] = response
                if identity is not None:
                    identities[key] = identity
        merged.update(self._entries)
        identities.update(self._identities)
        records = [
            (key, response, identities.get(key)) for key, response in merged.items()
        ]
        self._write_segments_locked(target, records)
        for segment in old_segments:
            try:
                segment.unlink()
            except OSError:
                pass
        if old_segments:
            self._fsync_dir(target)
        self._write_manifest_locked(target)
        return merged

    def _migrate_legacy_locked(
        self, target: Path, items: List[Tuple[str, str, Optional[str]]]
    ) -> None:
        """Swap a legacy v1 file for a segment directory, crash-safely.

        Segments are written into a temp directory first; only once they
        are all on disk is the old file unlinked and the directory renamed
        into place.  A crash before the unlink leaves the legacy file
        untouched (plus an orphan temp dir); between unlink and rename the
        data survives in the temp dir.
        """
        tmp_dir = Path(
            tempfile.mkdtemp(prefix=f".{target.name}-migrate-", dir=target.parent)
        )
        try:
            self._write_segments_locked(tmp_dir, items)
            self._write_manifest_locked(tmp_dir)
            target.unlink()
            os.rename(str(tmp_dir), str(target))
        except BaseException:
            shutil.rmtree(tmp_dir, ignore_errors=True)
            raise

    @staticmethod
    def _entry_line(key: str, response: str, identity: Optional[str]) -> str:
        entry: Dict[str, str] = {"k": key, "r": response}
        if identity is not None:
            # Optional field: readers that predate it simply ignore it, so
            # the format version stays unchanged.
            entry["i"] = identity
        return json.dumps(entry, ensure_ascii=False)

    def _write_segments_locked(
        self, target: Path, items: List[Tuple[str, str, Optional[str]]]
    ) -> None:
        """Append ``items`` as size-bounded segments, each written atomically."""
        if not items:
            return
        next_index = self._next_segment_index(target)
        for start in range(0, len(items), self.segment_max_entries):
            shard = items[start : start + self.segment_max_entries]
            lines = [json.dumps({"format": _SEGMENT_FORMAT, "version": _CACHE_FORMAT_VERSION})]
            lines.extend(
                self._entry_line(key, response, identity)
                for key, response, identity in shard
            )
            payload = "\n".join(lines) + "\n"
            final = target / f"{_SEGMENT_PREFIX}{next_index:06d}{_SEGMENT_SUFFIX}"
            next_index += 1
            fd, tmp_name = tempfile.mkstemp(
                prefix=".tmp-segment-", suffix=_SEGMENT_SUFFIX, dir=target
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, final)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        # The renames above live in the directory's own metadata: without
        # syncing it too, a power loss can forget a fully-fsynced segment
        # ever existed — a committed save() must not silently vanish.
        self._fsync_dir(target)

    def _write_manifest_locked(self, target: Path) -> None:
        """Attest the current segment set in ``manifest.json``, atomically.

        Records each segment's ``(size, mtime_ns)`` plus a monotonically
        increasing generation counter.  Best-effort by design: the segments
        are already durable when this runs, so a failure here (or a crash
        between segment commit and manifest replace) merely leaves a stale
        manifest that readers detect and ignore.
        """
        segments: Dict[str, Dict[str, int]] = {}
        for segment in sorted(target.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")):
            try:
                stat = segment.stat()
            except OSError:
                continue
            segments[segment.name] = {
                "size": stat.st_size,
                "mtime_ns": stat.st_mtime_ns,
            }
        manifest_path = target / _MANIFEST_NAME
        generation = 0
        try:
            previous = json.loads(manifest_path.read_text(encoding="utf-8"))
            if isinstance(previous, dict) and isinstance(previous.get("generation"), int):
                generation = previous["generation"]
        except (OSError, ValueError):
            pass
        payload = json.dumps(
            {
                "format": _MANIFEST_FORMAT,
                "version": _MANIFEST_VERSION,
                "generation": generation + 1,
                "segments": segments,
            },
            sort_keys=True,
        )
        try:
            fd, tmp_name = tempfile.mkstemp(
                prefix=".tmp-manifest-", suffix=".json", dir=target
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, manifest_path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except (OSError, UnboundLocalError):
                pass

    @staticmethod
    def _fsync_dir(target: Path) -> None:
        try:
            fd = os.open(str(target), os.O_RDONLY)
        except OSError:  # platforms/filesystems without directory fds
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - defensive
            pass
        finally:
            os.close(fd)

    @staticmethod
    def _next_segment_index(target: Path) -> int:
        highest = 0
        for segment in target.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"):
            stem = segment.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            if stem.isdigit():
                highest = max(highest, int(stem))
        return highest + 1

    def load(self, path: Union[str, Path]) -> int:
        """Merge entries from a segment directory or legacy JSON file.

        Returns how many entries were applied.  A cache store is an
        optimisation, never a requirement: unreadable, corrupt, truncated
        or version-mismatched files (or individual segment lines) load
        zero/fewer entries instead of raising, so a damaged cache can at
        worst slow a run down.
        """
        source = Path(path)
        if source.is_dir():
            loaded = self._load_segments(source)
        else:
            loaded = self._load_legacy_file(source)
        return loaded

    def _load_segments(self, source: Path) -> int:
        loaded = 0
        mark_persisted = self.path is not None and source == self.path
        for segment in sorted(source.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")):
            loaded += self._load_one_segment(segment, mark_persisted)
        with self._lock:
            self._evict_overflow_locked()
        return loaded

    @staticmethod
    def _parse_segment(segment: Path) -> Dict[str, Tuple[str, Optional[str]]]:
        """``key -> (response, identity)`` of one segment file.

        Damaged headers/lines parse to less: a truncated tail line
        (interrupted write) or damaged line is skipped; everything that
        parses is kept.  A missing or version-mismatched header skips the
        whole segment.  The identity field is optional (stores written
        before it existed load with ``None``).
        """
        try:
            text = segment.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return {}
        lines = text.splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return {}
        if (
            not isinstance(header, dict)
            or header.get("format") != _SEGMENT_FORMAT
            or header.get("version") != _CACHE_FORMAT_VERSION
        ):
            return {}
        entries: Dict[str, Tuple[str, Optional[str]]] = {}
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict) or "k" not in entry or "r" not in entry:
                continue
            key, response = entry["k"], entry["r"]
            identity = entry.get("i")
            if isinstance(key, str) and isinstance(response, str):
                entries[key] = (response, identity if isinstance(identity, str) else None)
        return entries

    def _load_one_segment(self, segment: Path, mark_persisted: bool) -> int:
        entries = self._parse_segment(segment)
        with self._lock:
            for key, (response, identity) in entries.items():
                self._entries[key] = response
                self._note_entry_locked(key, response)
                if identity is not None:
                    self._identities[key] = identity
                if mark_persisted:
                    self._persisted.add(key)
                    self._pending.pop(key, None)
            if mark_persisted:
                # Cross-segment duplicates (re-inserted keys) count once per
                # segment they appear in, which is what makes them *dead*.
                self._disk_entry_lines += len(entries)
        return len(entries)

    @staticmethod
    def _parse_legacy_file(source: Path) -> Dict[str, str]:
        """Full entry set of a format-1 whole-file JSON cache (or empty)."""
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return {}
        if not isinstance(payload, dict) or payload.get("version") != _LEGACY_FORMAT_VERSION:
            return {}
        entries = payload.get("entries", {})
        if not isinstance(entries, dict):
            return {}
        return {
            key: response
            for key, response in entries.items()
            if isinstance(key, str) and isinstance(response, str)
        }

    def _load_legacy_file(self, source: Path) -> int:
        """Load the format-1 whole-file JSON layout (``{"version": 1, ...}``)."""
        entries = self._parse_legacy_file(source)
        with self._lock:
            for key, response in entries.items():
                self._entries[key] = response
                self._note_entry_locked(key, response)
                # A legacy file is rewritten as segments on the next
                # save, so its entries count as pending, not persisted.
                if key not in self._persisted:
                    self._pending[key] = None
            self._evict_overflow_locked()
        return len(entries)

    def compact(self, path: Optional[Union[str, Path]] = None) -> Optional[Path]:
        """Fold the on-disk store into a minimal set of fresh segments.

        Incremental saves only ever append, so a long-lived cache directory
        accumulates shards (and dead duplicates when entries were
        re-inserted).  Compaction merges every on-disk entry with the
        in-memory ones (memory wins on conflicts; disk entries evicted from
        the bounded LRU are preserved — compaction must never shrink the
        persistent store), writes the merged set as new segments, then
        removes every older one.  Returns the directory, or ``None`` when
        there is nothing on disk to compact.
        """
        target = Path(path) if path is not None else self.path
        if target is None or not target.is_dir():
            return None
        with self._lock:
            self._compact_locked(target)
        return target
