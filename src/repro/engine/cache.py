"""Content-addressed response cache for model calls.

The cache maps ``(model identity, prompt)`` to the model's response.  Keys
are content-addressed: the identity string and the full prompt text are
hashed together, so two models that would answer differently (for example
two fine-tuned variants trained on different folds) never share entries as
long as their :attr:`~repro.llm.base.LanguageModel.cache_identity` differs.

Two storage layers compose:

* an in-memory LRU bounded by ``max_entries`` (oldest entries evicted);
* an optional JSON file, loaded on construction and written by
  :meth:`ResponseCache.save`, so repeated CLI runs can reuse responses.

All operations are thread-safe; the thread-pool executor hits the cache
concurrently.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["CacheStats", "ResponseCache"]

#: Bump when the key derivation changes; persisted files carry the version.
_CACHE_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


def cache_key(identity: str, prompt: str) -> str:
    """Content-addressed key for one ``(model identity, prompt)`` request."""
    digest = hashlib.sha256()
    digest.update(identity.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(prompt.encode("utf-8"))
    return digest.hexdigest()


class ResponseCache:
    """Thread-safe LRU response cache with optional JSON persistence."""

    def __init__(
        self,
        max_entries: int = 65536,
        *,
        path: Optional[Union[str, Path]] = None,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.path = Path(path) if path is not None else None
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        if self.path is not None and self.path.exists():
            self.load(self.path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- lookup / insert ------------------------------------------------------------

    def get(self, identity: str, prompt: str) -> Optional[str]:
        """The cached response, or ``None`` on a miss (recorded in stats)."""
        key = cache_key(identity, prompt)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, identity: str, prompt: str, response: str) -> None:
        """Insert one response, evicting the least recently used on overflow."""
        key = cache_key(identity, prompt)
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- persistence ----------------------------------------------------------------

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Write every entry to ``path`` (or the constructor path) as JSON."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no cache file path configured")
        with self._lock:
            payload = {
                "version": _CACHE_FORMAT_VERSION,
                "entries": dict(self._entries),
            }
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload, indent=0), encoding="utf-8")
        return target

    def load(self, path: Union[str, Path]) -> int:
        """Merge entries from a JSON file; returns how many were loaded.

        A cache file is an optimisation, never a requirement: unreadable,
        corrupt or version-mismatched files load zero entries instead of
        raising, so a damaged cache can at worst slow a run down.
        """
        source = Path(path)
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return 0
        if not isinstance(payload, dict) or payload.get("version") != _CACHE_FORMAT_VERSION:
            return 0
        entries = payload.get("entries", {})
        if not isinstance(entries, dict):
            return 0
        with self._lock:
            for key, response in entries.items():
                self._entries[key] = response
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return len(entries)
