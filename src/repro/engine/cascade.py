"""Tiered detection cascade: confidence-routed cheap-tier-first scoring.

Every record today can be answered by four very differently priced
detectors: the static race analyzer (microseconds), the dynamic inspector
(milliseconds), a fast zoo model, and the expensive LLM the experiment
actually asks for.  The cascade routes each record through an ordered
ladder of *cheap* tiers first and escalates only the records whose tier
verdict is low-confidence or where tiers disagree; everything still
unresolved lands on the request's own model — the implicit final tier —
so a full escalation is behaviourally identical to an LLM-only run.

Composition, not reimplementation: the router re-emits each tier's
requests through the engine's existing ``_execute_plain`` seam, so LPT
ordering, adaptive chunk sizing, dynamic/speculative dispatch, the
coalescer, the response cache and streaming windows all apply per tier
unchanged.  Tier adapters are ordinary :class:`~repro.llm.base.LanguageModel`
objects (``repro.llm.adapters``) with their own ``cache_identity`` keys,
so the :class:`~repro.engine.costmodel.CostModel` prices them like any
model, and their ``cost_prior_s`` attribute feeds the cold-start prior
(:meth:`CostModel.set_prior`) so an unobserved tier never blocks LPT.

Escalation rules (per record, per tier)
---------------------------------------
* resolve at a cheap tier only when the tier actually answered
  (not shed, not failed), its confidence clears ``escalate_below``, and its verdict
  does not disagree with a confident verdict from an earlier tier;
* otherwise escalate, remembering the verdict (when non-degenerate) for
  the disagreement check at the next tier;
* the final tier always resolves.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.requests import DetectionRequest, RunResult
from repro.llm.base import LanguageModel

__all__ = [
    "DEFAULT_CASCADE_TIERS",
    "DEFAULT_ESCALATE_BELOW",
    "CascadePolicy",
    "CascadeRouter",
    "CascadeTier",
    "build_tier_model",
]

#: Default tier ladder: the static analyzer in front of a fast zoo model.
DEFAULT_CASCADE_TIERS = "static,gpt-3.5-turbo"

#: Default confidence threshold below which a tier verdict escalates.
#: Calibrated against the static tier's diagnostic engine: per-rule race
#: confidences (0.78-0.90) and proof-backed clean confidences (>= 0.80)
#: clear it, while parse failures (0.0) and degenerate no-access reports
#: (0.5) escalate.
DEFAULT_ESCALATE_BELOW = 0.75

#: Telemetry label for the implicit final tier (the request's own model).
FINAL_TIER = "final"


def build_tier_model(name: str) -> LanguageModel:
    """Resolve one tier-spec token to a model.

    ``static`` and ``inspector``/``dynamic`` name the detector tier
    adapters; anything else resolves through the zoo's ``create_model``
    (which raises ``KeyError`` with the available names on a typo).
    """
    # Imported lazily: the adapters pull in numpy and the full detector
    # stack, which engine modules must not pay for at import time.
    if name == "static":
        from repro.llm.adapters import StaticAnalyzerModel

        return StaticAnalyzerModel()
    if name in ("inspector", "dynamic"):
        from repro.llm.adapters import InspectorTierModel

        return InspectorTierModel()
    from repro.llm.zoo import create_model

    return create_model(name)


@dataclass(frozen=True)
class CascadeTier:
    """One rung of the ladder: a display name plus the model that answers."""

    name: str
    model: LanguageModel


@dataclass(frozen=True)
class CascadePolicy:
    """The cheap-tier ladder plus the escalation threshold.

    ``tiers`` holds only the *cheap* tiers, cheapest first; the request's
    own model is always the implicit final tier.  ``escalate_below`` is
    the confidence a cheap-tier verdict must reach to resolve a record.
    """

    tiers: Tuple[CascadeTier, ...]
    escalate_below: float = DEFAULT_ESCALATE_BELOW

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("a cascade needs at least one cheap tier")
        if not 0.0 <= self.escalate_below <= 1.0:
            raise ValueError("escalate_below must be in [0, 1]")
        names = [tier.name for tier in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cascade tiers: {names}")

    @classmethod
    def from_spec(
        cls,
        spec: str = DEFAULT_CASCADE_TIERS,
        *,
        escalate_below: float = DEFAULT_ESCALATE_BELOW,
    ) -> "CascadePolicy":
        """Parse a comma-separated tier spec like ``"static,gpt-3.5-turbo"``."""
        names = [part.strip() for part in spec.split(",") if part.strip()]
        if not names:
            raise ValueError(f"empty cascade tier spec: {spec!r}")
        tiers = tuple(CascadeTier(name=name, model=build_tier_model(name)) for name in names)
        return cls(tiers=tiers, escalate_below=escalate_below)

    def fallback_model(self, model: LanguageModel) -> Optional[LanguageModel]:
        """The next cheaper tier below ``model``, for cross-backend speculation.

        A straggling chunk of tier *k* races against tier *k-1*; a chunk of
        the implicit final tier (any model not on the ladder) races against
        the most capable cheap tier.  Tier 0 has nothing cheaper — ``None``
        keeps speculation same-backend there.
        """
        identity = getattr(model, "cache_identity", None) or getattr(model, "name", None)
        for position, tier in enumerate(self.tiers):
            tier_identity = getattr(tier.model, "cache_identity", tier.model.name)
            if tier_identity == identity:
                return self.tiers[position - 1].model if position > 0 else None
        return self.tiers[-1].model


class CascadeRouter:
    """Routes one materialised batch of requests down the tier ladder.

    The router owns *which* requests each tier sees; *how* a tier's batch
    executes stays entirely with the engine — the ``execute_batch``
    callable is the engine's plain indexed executor, so every scheduling
    feature composes per tier.
    """

    def __init__(self, policy: CascadePolicy, telemetry=None) -> None:
        self.policy = policy
        self.telemetry = telemetry

    def execute(
        self,
        indexed: Sequence[Tuple[int, DetectionRequest]],
        execute_batch: Callable,
    ) -> Tuple[List[Optional[RunResult]], int]:
        """Run ``indexed`` through the ladder; same contract as the executor.

        ``indexed`` positions must be ``0..len-1`` (the engine's result-slot
        convention).  Returns ``(results, shed)`` where ``shed`` counts only
        final-tier sheds — a shed at a cheap tier simply escalates.
        """
        results: List[Optional[RunResult]] = [None] * len(indexed)
        active: List[Tuple[int, DetectionRequest]] = list(indexed)
        previous_verdict: Dict[int, bool] = {}
        threshold = self.policy.escalate_below

        for tier in self.policy.tiers:
            if not active:
                break
            sub_batch = [
                (position, dataclasses.replace(request, model=tier.model))
                for position, (_slot, request) in enumerate(active)
            ]
            tier_results, _tier_shed = execute_batch(sub_batch)
            escalated: List[Tuple[int, DetectionRequest]] = []
            resolved = labeled = correct = 0
            for position, (slot, request) in enumerate(active):
                result = tier_results[position]
                if self._resolves(result, previous_verdict.get(slot), threshold):
                    results[slot] = result
                    resolved += 1
                    labeled += 1
                    if result.prediction == bool(request.record.has_race):
                        correct += 1
                else:
                    if (
                        result is not None
                        and not result.skipped
                        and (result.confidence or 0.0) > 0.0
                    ):
                        previous_verdict[slot] = result.prediction
                    escalated.append((slot, request))
            if self.telemetry is not None:
                self.telemetry.record_cascade(
                    tier.name,
                    requests=len(active),
                    resolved=resolved,
                    escalated=len(escalated),
                    labeled=labeled,
                    correct=correct,
                )
            active = escalated

        shed = 0
        if active:
            sub_batch = [
                (position, request) for position, (_slot, request) in enumerate(active)
            ]
            final_results, shed = execute_batch(sub_batch)
            labeled = correct = 0
            for position, (slot, request) in enumerate(active):
                result = final_results[position]
                results[slot] = result
                if result is not None and not result.skipped and not result.failed:
                    labeled += 1
                    if result.prediction == bool(request.record.has_race):
                        correct += 1
            if self.telemetry is not None:
                self.telemetry.record_cascade(
                    FINAL_TIER,
                    requests=len(active),
                    resolved=len(active),
                    escalated=0,
                    labeled=labeled,
                    correct=correct,
                )
        return results, shed

    @staticmethod
    def _resolves(
        result: Optional[RunResult], previous: Optional[bool], threshold: float
    ) -> bool:
        if result is None or result.skipped or result.failed:
            return False
        confidence = result.confidence if result.confidence is not None else 0.0
        if confidence < threshold:
            return False
        if previous is not None and result.prediction != previous:
            return False
        return True
