"""Lock-free multi-reader view over a segmented cache directory.

Every :class:`~repro.engine.cache.ResponseCache` used to load its own
private dict of the on-disk JSONL segments — N concurrent runs on one
host meant N redundant copies of the same store in RAM.
:class:`SharedSegmentStore` replaces those private loads with one
**mmap-backed read tier per host**: the segment files are mapped once,
an index of ``key -> (segment, line offset, line length)`` is built from
a single scan, and any number of cache instances (engine runs, future
``repro serve`` tenants) serve ``get`` misses straight off the shared
pages.  Responses are decoded per lookup from the mapped line — the
store never materialises a key→response dict.

Readers are lock-free: lookups touch an immutable view object
(``index`` + ``mmap`` list) resolved once per call, and :meth:`refresh`
swaps in a freshly built view atomically instead of mutating the old
one.  That makes the store safe against the cache's own writers —
incremental saves only add segments, and
:meth:`~repro.engine.cache.ResponseCache.compact` writes the merged
replacement segments *before* unlinking the old ones, so any scan
observes a complete entry set, and a reader still holding a
pre-compaction view keeps serving correct values because POSIX keeps an
unlinked file's pages alive for as long as something has them mapped.
Writes do not go through the store at all; the segment directory stays
the durable source of truth and grows through the existing
append/compact path.

Refreshes are **incremental**: each view keeps its per-segment mmaps and
sub-indexes, and a rebuild re-maps and re-scans only segments whose
``(size, mtime_ns)`` changed — an appended segment costs one scan of the
new file, never a rescan of the folded ones (``segments_reused`` vs
``segments_rescanned`` in :meth:`stats` make the skip observable).  On
top of that, the cache writer attests every committed write in a
``manifest.json`` beside the segments; when the manifest is present and
matches the current view, the miss-path staleness check collapses to a
single stat of the manifest instead of a stat sweep of every segment.
Both are pure fast-paths: a store without a manifest (foreign or
pre-manifest writer) behaves exactly as before.

``SharedSegmentStore.open(path)`` is the sharing entry point: it
memoises instances per real path, so every cache on the host that opens
the same directory gets the same mappings.
"""

from __future__ import annotations

import json
import mmap
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["SharedSegmentStore"]

_SEGMENT_FORMAT = "repro-response-cache"
_CACHE_FORMAT_VERSION = 2
_SEGMENT_GLOB = "segment-*.jsonl"
#: Writer-side attestation of the segment set (see repro.engine.cache).
_MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "repro-response-cache-manifest"
#: ``_entry_line`` writes the key first — ``{"k": "<64 hex chars>", ...`` —
#: so the scan can slice keys out without a full JSON decode per line.
_KEY_PREFIX = b'{"k": "'
_HEX_KEY_LEN = 64


class _SegmentView:
    """One mapped-and-indexed segment, reusable across directory rebuilds."""

    __slots__ = ("name", "size", "mtime_ns", "mapped", "subindex", "lines")

    def __init__(
        self,
        name: str,
        size: int,
        mtime_ns: int,
        mapped: Optional[mmap.mmap],
        subindex: Dict[str, Tuple[int, int]],
        lines: int,
    ) -> None:
        self.name = name
        self.size = size
        self.mtime_ns = mtime_ns
        #: ``None`` for a segment with an invalid/foreign header — it stays
        #: in the signature (so its changes are noticed) but serves nothing.
        self.mapped = mapped
        #: key -> (line offset, line length) within ``mapped``; holds each
        #: key's *last* occurrence in the segment.
        self.subindex = subindex
        self.lines = lines


class _StoreView:
    """One immutable snapshot of the directory: swapped, never mutated."""

    __slots__ = (
        "signature",
        "index",
        "maps",
        "entry_lines",
        "total_bytes",
        "segments",
        "manifest_sig",
    )

    def __init__(
        self,
        signature: Tuple,
        index: Dict[str, Tuple[int, int, int]],
        maps: List[mmap.mmap],
        entry_lines: int,
        total_bytes: int,
        segments: Dict[str, _SegmentView],
        manifest_sig: Optional[Tuple[int, int]],
    ) -> None:
        self.signature = signature
        self.index = index
        self.maps = maps
        self.entry_lines = entry_lines
        self.total_bytes = total_bytes
        #: name -> per-segment view, carried forward so the next rebuild
        #: reuses unchanged segments' mmaps and sub-indexes.
        self.segments = segments
        #: ``(size, mtime_ns)`` of the writer manifest *iff* it matched the
        #: directory when this view was built; ``None`` disables the
        #: manifest fast-path (absent, unparsable or stale manifest).
        self.manifest_sig = manifest_sig


def _fast_key(line: bytes) -> Optional[str]:
    """Slice the key out of a standard entry line without decoding it."""
    end = len(_KEY_PREFIX) + _HEX_KEY_LEN
    if line.startswith(_KEY_PREFIX) and line[end : end + 1] == b'"':
        key = line[len(_KEY_PREFIX) : end]
        if key.isalnum():
            return key.decode("ascii")
    return None


class SharedSegmentStore:
    """mmap the JSONL segments at ``path`` once; serve ``get`` to many readers."""

    _registry: Dict[str, "SharedSegmentStore"] = {}
    _registry_lock = threading.Lock()

    @classmethod
    def open(cls, path: Union[str, Path]) -> "SharedSegmentStore":
        """The host-wide store for ``path`` — one instance per real path."""
        key = os.path.realpath(str(path))
        with cls._registry_lock:
            store = cls._registry.get(key)
            if store is None:
                store = cls(key)
                cls._registry[key] = store
            return store

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._refresh_lock = threading.Lock()
        #: Cumulative rebuild counters: segments whose mmap + sub-index were
        #: carried over unchanged vs segments that were (re)mapped and
        #: line-scanned.  Pinned by the manifest/refresh tests.
        self.segments_reused = 0
        self.segments_rescanned = 0
        #: Hot disk hits promoted into callers' in-memory tiers (fed by
        #: :meth:`note_promotion`; host-wide because the store instance is
        #: shared by every cache opened on this path in-process).
        self.promotions = 0
        self._view = self._build_view(None)

    def note_promotion(self) -> None:
        """Count one hot entry a reader promoted into its in-memory tier.

        Advisory telemetry (a plain increment under the caller's cache
        lock); it never affects lookups or the mapped segments.
        """
        self.promotions += 1

    @property
    def path(self) -> Path:
        return self._path

    def __len__(self) -> int:
        return len(self._view.index)

    # -- lookups --------------------------------------------------------------------

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """The response stored under ``key``, or ``default``.

        A miss re-checks the directory before giving up, so entries
        another process just saved become visible without an explicit
        :meth:`refresh` — one stat of the writer manifest when it is
        current, a stat sweep of the segments otherwise.
        """
        view = self._view
        location = view.index.get(key)
        if location is None:
            view = self._refreshed_view(view)
            location = view.index.get(key)
            if location is None:
                return default
        map_index, offset, length = location
        try:
            entry = json.loads(view.maps[map_index][offset : offset + length])
        except (ValueError, IndexError):  # pragma: no cover - defensive
            return default
        response = entry.get("r") if isinstance(entry, dict) else None
        return response if isinstance(response, str) else default

    def identity(self, key: str) -> Optional[str]:
        """The model identity recorded for ``key``, if any."""
        view = self._view
        location = view.index.get(key)
        if location is None:
            return None
        map_index, offset, length = location
        try:
            entry = json.loads(view.maps[map_index][offset : offset + length])
        except (ValueError, IndexError):  # pragma: no cover - defensive
            return None
        identity = entry.get("i") if isinstance(entry, dict) else None
        return identity if isinstance(identity, str) else None

    # -- view management ------------------------------------------------------------

    def refresh(self) -> None:
        """Re-scan the directory if it changed since the current view.

        Always performs the full stat sweep (never the manifest shortcut):
        a cache that just wrote segments calls this to make its own write
        visible, and that must work even mid-crash with a stale manifest.
        Unchanged segments are still *reused*, not rescanned.
        """
        with self._refresh_lock:
            if self._dir_signature() != self._view.signature:
                self._view = self._build_view(self._view)

    def _refreshed_view(self, seen: _StoreView) -> _StoreView:
        with self._refresh_lock:
            if self._view is seen:
                if (
                    seen.manifest_sig is not None
                    and self._manifest_stat() == seen.manifest_sig
                ):
                    # The writer updates the manifest on every committed
                    # write; an unchanged, previously-validated manifest
                    # attests an unchanged segment set — skip the sweep.
                    return self._view
                if self._dir_signature() != seen.signature:
                    self._view = self._build_view(seen)
            return self._view

    def _segment_paths(self) -> List[Path]:
        try:
            return sorted(self._path.glob(_SEGMENT_GLOB))
        except OSError:  # pragma: no cover - defensive
            return []

    def _dir_signature(self) -> Tuple:
        parts = []
        for segment in self._segment_paths():
            try:
                stat = segment.stat()
            except OSError:
                continue
            parts.append((segment.name, stat.st_size, stat.st_mtime_ns))
        return tuple(parts)

    def _manifest_stat(self) -> Optional[Tuple[int, int]]:
        try:
            stat = (self._path / _MANIFEST_NAME).stat()
        except OSError:
            return None
        return (stat.st_size, stat.st_mtime_ns)

    def _read_manifest(self) -> Optional[Dict[str, Tuple[int, int]]]:
        """The manifest's ``name -> (size, mtime_ns)`` map, or ``None``."""
        try:
            payload = json.loads(
                (self._path / _MANIFEST_NAME).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("format") != _MANIFEST_FORMAT:
            return None
        segments = payload.get("segments")
        if not isinstance(segments, dict):
            return None
        out: Dict[str, Tuple[int, int]] = {}
        for name, record in segments.items():
            if not isinstance(record, dict):
                return None
            size = record.get("size")
            mtime_ns = record.get("mtime_ns")
            if not isinstance(size, int) or not isinstance(mtime_ns, int):
                return None
            out[name] = (size, mtime_ns)
        return out

    def _build_view(self, previous: Optional[_StoreView]) -> _StoreView:
        """Scan the directory, reusing unchanged segments from ``previous``.

        A segment whose ``(size, mtime_ns)`` matches the previous view is
        carried over — mmap, sub-index and line count — without touching
        its pages; only new or changed segments are mapped and scanned.
        Reuse keys on exactly the stats the store's change detection
        already trusts, so it is as safe as not rebuilding at all.
        """
        index: Dict[str, Tuple[int, int, int]] = {}
        maps: List[mmap.mmap] = []
        signature = []
        segments: Dict[str, _SegmentView] = {}
        entry_lines = 0
        total_bytes = 0
        manifest_before = self._manifest_stat()
        for segment in self._segment_paths():
            name = segment.name
            prior = previous.segments.get(name) if previous is not None else None
            if prior is not None:
                try:
                    stat = segment.stat()
                except OSError:
                    continue
                if stat.st_size == 0:
                    continue
                if prior.size == stat.st_size and prior.mtime_ns == stat.st_mtime_ns:
                    self.segments_reused += 1
                    segview = prior
                else:
                    segview = self._scan_segment(segment)
            else:
                segview = self._scan_segment(segment)
            if segview is None:
                continue
            signature.append((segview.name, segview.size, segview.mtime_ns))
            segments[name] = segview
            if segview.mapped is None:
                continue
            map_index = len(maps)
            maps.append(segview.mapped)
            total_bytes += len(segview.mapped)
            entry_lines += segview.lines
            for key, (offset, length) in segview.subindex.items():
                index[key] = (map_index, offset, length)
        manifest = self._read_manifest()
        manifest_sig: Optional[Tuple[int, int]] = None
        if manifest is not None and manifest_before is not None:
            observed = {name: (view.size, view.mtime_ns) for name, view in segments.items()}
            # Only a manifest that exactly matches what we just scanned can
            # vouch for future "nothing changed" checks; and it must not
            # have been replaced mid-scan.
            if manifest == observed and self._manifest_stat() == manifest_before:
                manifest_sig = manifest_before
        return _StoreView(
            tuple(signature), index, maps, entry_lines, total_bytes, segments, manifest_sig
        )

    def _scan_segment(self, segment: Path) -> Optional[_SegmentView]:
        """Map one segment and index its entry lines (the expensive path)."""
        mapped, stat = self._map_segment(segment)
        if mapped is None:
            return None
        self.segments_rescanned += 1
        if not self._valid_header(mapped):
            mapped.close()
            return _SegmentView(segment.name, stat.st_size, stat.st_mtime_ns, None, {}, 0)
        subindex: Dict[str, Tuple[int, int]] = {}
        lines = self._index_segment(mapped, subindex)
        return _SegmentView(
            segment.name, stat.st_size, stat.st_mtime_ns, mapped, subindex, lines
        )

    @staticmethod
    def _map_segment(segment: Path):
        try:
            with open(segment, "rb") as handle:
                stat = os.fstat(handle.fileno())
                if stat.st_size == 0:
                    return None, None
                return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ), stat
        except (OSError, ValueError):
            return None, None

    @staticmethod
    def _valid_header(mapped: mmap.mmap) -> bool:
        end = mapped.find(b"\n")
        if end < 0:
            return False
        try:
            header = json.loads(mapped[:end])
        except ValueError:
            return False
        return (
            isinstance(header, dict)
            and header.get("format") == _SEGMENT_FORMAT
            and header.get("version") == _CACHE_FORMAT_VERSION
        )

    @staticmethod
    def _index_segment(
        mapped: mmap.mmap, subindex: Dict[str, Tuple[int, int]]
    ) -> int:
        """Add one segment's entry lines to ``subindex``; returns lines seen.

        Within a segment later lines win, so a re-inserted key resolves to
        its newest line — the same precedence the in-memory loader applies.
        (Across segments, the view merge applies later-segment-wins.)  A
        truncated tail line (interrupted write) fails the key slice/decode
        and is skipped, like everywhere else.
        """
        lines = 0
        offset = mapped.find(b"\n") + 1  # skip the header line
        size = len(mapped)
        while offset < size:
            newline = mapped.find(b"\n", offset)
            end = newline if newline >= 0 else size
            length = end - offset
            if length > 0:
                line = mapped[offset:end]
                key = _fast_key(line)
                if key is None:
                    key = SharedSegmentStore._slow_key(line)
                if key is not None:
                    subindex[key] = (offset, length)
                    lines += 1
            if newline < 0:
                break
            offset = newline + 1
        return lines

    @staticmethod
    def _slow_key(line: bytes) -> Optional[str]:
        """Full-decode fallback for entry lines with non-standard keys."""
        try:
            entry = json.loads(line)
        except ValueError:
            return None
        if not isinstance(entry, dict):
            return None
        key = entry.get("k")
        return key if isinstance(key, str) and "r" in entry else None

    # -- introspection --------------------------------------------------------------

    def dead_ratio(self) -> float:
        """Fraction of on-disk entry lines superseded by later re-inserts."""
        view = self._view
        if view.entry_lines <= 0:
            return 0.0
        return max(0.0, 1.0 - len(view.index) / view.entry_lines)

    def stats(self) -> Dict[str, float]:
        """Segment count, live/total entry lines, bytes, dead ratio."""
        view = self._view
        return {
            "segments": len(view.maps),
            "live_entries": len(view.index),
            "entry_lines": view.entry_lines,
            "dead_entries": max(0, view.entry_lines - len(view.index)),
            "dead_ratio": round(self.dead_ratio(), 4),
            "total_bytes": view.total_bytes,
            "segments_reused": self.segments_reused,
            "segments_rescanned": self.segments_rescanned,
            "promotions": self.promotions,
        }
