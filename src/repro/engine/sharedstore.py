"""Lock-free multi-reader view over a segmented cache directory.

Every :class:`~repro.engine.cache.ResponseCache` used to load its own
private dict of the on-disk JSONL segments — N concurrent runs on one
host meant N redundant copies of the same store in RAM.
:class:`SharedSegmentStore` replaces those private loads with one
**mmap-backed read tier per host**: the segment files are mapped once,
an index of ``key -> (segment, line offset, line length)`` is built from
a single scan, and any number of cache instances (engine runs, future
``repro serve`` tenants) serve ``get`` misses straight off the shared
pages.  Responses are decoded per lookup from the mapped line — the
store never materialises a key→response dict.

Readers are lock-free: lookups touch an immutable view object
(``index`` + ``mmap`` list) resolved once per call, and :meth:`refresh`
swaps in a freshly built view atomically instead of mutating the old
one.  That makes the store safe against the cache's own writers —
incremental saves only add segments, and
:meth:`~repro.engine.cache.ResponseCache.compact` writes the merged
replacement segments *before* unlinking the old ones, so any scan
observes a complete entry set, and a reader still holding a
pre-compaction view keeps serving correct values because POSIX keeps an
unlinked file's pages alive for as long as something has them mapped.
Writes do not go through the store at all; the segment directory stays
the durable source of truth and grows through the existing
append/compact path.

``SharedSegmentStore.open(path)`` is the sharing entry point: it
memoises instances per real path, so every cache on the host that opens
the same directory gets the same mappings.
"""

from __future__ import annotations

import json
import mmap
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["SharedSegmentStore"]

_SEGMENT_FORMAT = "repro-response-cache"
_CACHE_FORMAT_VERSION = 2
_SEGMENT_GLOB = "segment-*.jsonl"
#: ``_entry_line`` writes the key first — ``{"k": "<64 hex chars>", ...`` —
#: so the scan can slice keys out without a full JSON decode per line.
_KEY_PREFIX = b'{"k": "'
_HEX_KEY_LEN = 64


class _StoreView:
    """One immutable snapshot of the directory: swapped, never mutated."""

    __slots__ = ("signature", "index", "maps", "entry_lines", "total_bytes")

    def __init__(
        self,
        signature: Tuple,
        index: Dict[str, Tuple[int, int, int]],
        maps: List[mmap.mmap],
        entry_lines: int,
        total_bytes: int,
    ) -> None:
        self.signature = signature
        self.index = index
        self.maps = maps
        self.entry_lines = entry_lines
        self.total_bytes = total_bytes


def _fast_key(line: bytes) -> Optional[str]:
    """Slice the key out of a standard entry line without decoding it."""
    end = len(_KEY_PREFIX) + _HEX_KEY_LEN
    if line.startswith(_KEY_PREFIX) and line[end : end + 1] == b'"':
        key = line[len(_KEY_PREFIX) : end]
        if key.isalnum():
            return key.decode("ascii")
    return None


class SharedSegmentStore:
    """mmap the JSONL segments at ``path`` once; serve ``get`` to many readers."""

    _registry: Dict[str, "SharedSegmentStore"] = {}
    _registry_lock = threading.Lock()

    @classmethod
    def open(cls, path: Union[str, Path]) -> "SharedSegmentStore":
        """The host-wide store for ``path`` — one instance per real path."""
        key = os.path.realpath(str(path))
        with cls._registry_lock:
            store = cls._registry.get(key)
            if store is None:
                store = cls(key)
                cls._registry[key] = store
            return store

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._refresh_lock = threading.Lock()
        self._view = self._build_view()

    @property
    def path(self) -> Path:
        return self._path

    def __len__(self) -> int:
        return len(self._view.index)

    # -- lookups --------------------------------------------------------------------

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """The response stored under ``key``, or ``default``.

        A miss re-checks the directory (cheap stat sweep) before giving
        up, so entries another process just saved become visible without
        an explicit :meth:`refresh`.
        """
        view = self._view
        location = view.index.get(key)
        if location is None:
            view = self._refreshed_view(view)
            location = view.index.get(key)
            if location is None:
                return default
        map_index, offset, length = location
        try:
            entry = json.loads(view.maps[map_index][offset : offset + length])
        except (ValueError, IndexError):  # pragma: no cover - defensive
            return default
        response = entry.get("r") if isinstance(entry, dict) else None
        return response if isinstance(response, str) else default

    def identity(self, key: str) -> Optional[str]:
        """The model identity recorded for ``key``, if any."""
        view = self._view
        location = view.index.get(key)
        if location is None:
            return None
        map_index, offset, length = location
        try:
            entry = json.loads(view.maps[map_index][offset : offset + length])
        except (ValueError, IndexError):  # pragma: no cover - defensive
            return None
        identity = entry.get("i") if isinstance(entry, dict) else None
        return identity if isinstance(identity, str) else None

    # -- view management ------------------------------------------------------------

    def refresh(self) -> None:
        """Re-scan the directory if it changed since the current view."""
        with self._refresh_lock:
            if self._dir_signature() != self._view.signature:
                self._view = self._build_view()

    def _refreshed_view(self, seen: _StoreView) -> _StoreView:
        with self._refresh_lock:
            if self._view is seen and self._dir_signature() != seen.signature:
                self._view = self._build_view()
            return self._view

    def _segment_paths(self) -> List[Path]:
        try:
            return sorted(self._path.glob(_SEGMENT_GLOB))
        except OSError:  # pragma: no cover - defensive
            return []

    def _dir_signature(self) -> Tuple:
        parts = []
        for segment in self._segment_paths():
            try:
                stat = segment.stat()
            except OSError:
                continue
            parts.append((segment.name, stat.st_size, stat.st_mtime_ns))
        return tuple(parts)

    def _build_view(self) -> _StoreView:
        index: Dict[str, Tuple[int, int, int]] = {}
        maps: List[mmap.mmap] = []
        signature = []
        entry_lines = 0
        total_bytes = 0
        for segment in self._segment_paths():
            mapped, stat = self._map_segment(segment)
            if mapped is None:
                continue
            signature.append((segment.name, stat.st_size, stat.st_mtime_ns))
            if not self._valid_header(mapped):
                mapped.close()
                continue
            map_index = len(maps)
            maps.append(mapped)
            total_bytes += len(mapped)
            entry_lines += self._index_segment(mapped, map_index, index)
        return _StoreView(tuple(signature), index, maps, entry_lines, total_bytes)

    @staticmethod
    def _map_segment(segment: Path):
        try:
            with open(segment, "rb") as handle:
                stat = os.fstat(handle.fileno())
                if stat.st_size == 0:
                    return None, None
                return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ), stat
        except (OSError, ValueError):
            return None, None

    @staticmethod
    def _valid_header(mapped: mmap.mmap) -> bool:
        end = mapped.find(b"\n")
        if end < 0:
            return False
        try:
            header = json.loads(mapped[:end])
        except ValueError:
            return False
        return (
            isinstance(header, dict)
            and header.get("format") == _SEGMENT_FORMAT
            and header.get("version") == _CACHE_FORMAT_VERSION
        )

    @staticmethod
    def _index_segment(
        mapped: mmap.mmap, map_index: int, index: Dict[str, Tuple[int, int, int]]
    ) -> int:
        """Add one segment's entry lines to ``index``; returns lines seen.

        Later segments are indexed after earlier ones, so re-inserted keys
        resolve to their newest line — the same precedence the in-memory
        loader applies.  A truncated tail line (interrupted write) fails
        the key slice/decode and is skipped, like everywhere else.
        """
        lines = 0
        offset = mapped.find(b"\n") + 1  # skip the header line
        size = len(mapped)
        while offset < size:
            newline = mapped.find(b"\n", offset)
            end = newline if newline >= 0 else size
            length = end - offset
            if length > 0:
                line = mapped[offset:end]
                key = _fast_key(line)
                if key is None:
                    key = SharedSegmentStore._slow_key(line)
                if key is not None:
                    index[key] = (map_index, offset, length)
                    lines += 1
            if newline < 0:
                break
            offset = newline + 1
        return lines

    @staticmethod
    def _slow_key(line: bytes) -> Optional[str]:
        """Full-decode fallback for entry lines with non-standard keys."""
        try:
            entry = json.loads(line)
        except ValueError:
            return None
        if not isinstance(entry, dict):
            return None
        key = entry.get("k")
        return key if isinstance(key, str) and "r" in entry else None

    # -- introspection --------------------------------------------------------------

    def dead_ratio(self) -> float:
        """Fraction of on-disk entry lines superseded by later re-inserts."""
        view = self._view
        if view.entry_lines <= 0:
            return 0.0
        return max(0.0, 1.0 - len(view.index) / view.entry_lines)

    def stats(self) -> Dict[str, float]:
        """Segment count, live/total entry lines, bytes, dead ratio."""
        view = self._view
        return {
            "segments": len(view.maps),
            "live_entries": len(view.index),
            "entry_lines": view.entry_lines,
            "dead_entries": max(0, view.entry_lines - len(view.index)),
            "dead_ratio": round(self.dead_ratio(), 4),
            "total_bytes": view.total_bytes,
        }
